//! The static-analysis vocabulary: diagnostic codes, structured
//! diagnostics with source spans, program batches, and the
//! [`ProgramCheck`] seam through which an analyzer vets a batch before
//! [`crate::Peer::install`] applies it.
//!
//! The actual whole-program analyzer lives in the `wdl-analyze` crate
//! (it needs the parser and the datalog kernel); this module only
//! defines the shared types so `wdl-core` stays dependency-light and
//! `Peer::install` can be checked by *any* `ProgramCheck`
//! implementation — including [`NoCheck`] for embedders that opt out.

use crate::{RelationKind, WFact, WRule};
use std::fmt;
use wdl_datalog::Symbol;

/// A source position (1-based line and column) attached to a rule or
/// statement by the parser's spanned entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line of the statement's first token.
    pub line: usize,
    /// 1-based column of the statement's first token.
    pub col: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// How bad a diagnostic is. `Error` blocks [`crate::Peer::install`];
/// `Warning` is surfaced (through the return value and the trace
/// stream) but does not block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but admissible; installation proceeds.
    Warning,
    /// A program-level fault; installation is rejected.
    Error,
}

impl Severity {
    /// Lower-case label (`"warning"` / `"error"`), as rendered by CLI
    /// output.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The closed set of analyzer diagnostics. Codes are stable: tests,
/// CI gates and docs key on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// `WDL001` — a head variable is not bound by the body.
    UnboundHeadVar,
    /// `WDL002` — a variable read under negation, comparison or
    /// assignment is not bound positively to its left.
    UnboundNegatedVar,
    /// `WDL003` — a variable in a peer or relation position of a
    /// (potentially delegated) atom is not bound by earlier items, so
    /// the delegation target is undefined.
    UnboundNameVar,
    /// `WDL004` — negation through a recursive cycle, including cycles
    /// that cross peer boundaries (which local stratification cannot
    /// see).
    UnstratifiableNegation,
    /// `WDL005` — a rule-installation cycle between peers: delegation
    /// may keep installing rules around the cycle, risking unbounded
    /// rule growth.
    UnboundedDelegation,
    /// `WDL006` — an atom's arity disagrees with the relation's
    /// declaration.
    ArityMismatch,
    /// `WDL007` — a rule head writes an extensional relation of a
    /// foreign peer without a matching write grant.
    UngrantedWrite,
    /// `WDL008` — a rule reads an intensional relation that no rule
    /// derives: the body can never be satisfied.
    DeadRule,
    /// `WDL009` — a declared intensional relation is neither derived
    /// nor read by any rule.
    UnreachableRelation,
}

impl DiagCode {
    /// The stable `WDLnnn` code string.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::UnboundHeadVar => "WDL001",
            DiagCode::UnboundNegatedVar => "WDL002",
            DiagCode::UnboundNameVar => "WDL003",
            DiagCode::UnstratifiableNegation => "WDL004",
            DiagCode::UnboundedDelegation => "WDL005",
            DiagCode::ArityMismatch => "WDL006",
            DiagCode::UngrantedWrite => "WDL007",
            DiagCode::DeadRule => "WDL008",
            DiagCode::UnreachableRelation => "WDL009",
        }
    }

    /// The numeric part of the code (`1` for `WDL001`), used when the
    /// trace stream needs a `Copy` representation.
    pub fn number(&self) -> u16 {
        match self {
            DiagCode::UnboundHeadVar => 1,
            DiagCode::UnboundNegatedVar => 2,
            DiagCode::UnboundNameVar => 3,
            DiagCode::UnstratifiableNegation => 4,
            DiagCode::UnboundedDelegation => 5,
            DiagCode::ArityMismatch => 6,
            DiagCode::UngrantedWrite => 7,
            DiagCode::DeadRule => 8,
            DiagCode::UnreachableRelation => 9,
        }
    }

    /// The severity this code carries. Unbound variables,
    /// unstratifiable negation, arity mismatches and ungranted writes
    /// are faults the runtime would reject or mis-evaluate; delegation
    /// cycles and dead code are advisory.
    pub fn severity(&self) -> Severity {
        match self {
            DiagCode::UnboundHeadVar
            | DiagCode::UnboundNegatedVar
            | DiagCode::UnboundNameVar
            | DiagCode::UnstratifiableNegation
            | DiagCode::ArityMismatch
            | DiagCode::UngrantedWrite => Severity::Error,
            DiagCode::UnboundedDelegation | DiagCode::DeadRule | DiagCode::UnreachableRelation => {
                Severity::Warning
            }
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured finding from the static analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code (see [`DiagCode`]).
    pub code: DiagCode,
    /// Severity, normally [`DiagCode::severity`].
    pub severity: Severity,
    /// Source position of the offending rule, when the program came
    /// through a spanned parse.
    pub rule_span: Option<Span>,
    /// Human-readable description of the fault.
    pub message: String,
    /// Secondary observations (the cycle path, the grant that is
    /// missing, ...).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            rule_span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.rule_span = span;
        self
    }

    /// Appends a secondary note.
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// True iff this diagnostic blocks installation.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(span) = self.rule_span {
            write!(f, "{span}: ")?;
        }
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

/// A program to install atomically on a peer: declarations, then
/// rules, then facts — the unit [`crate::Peer::install`] validates and
/// applies all-or-nothing.
#[derive(Clone, Debug, Default)]
pub struct ProgramBatch {
    /// Relations to declare locally: `(relation, arity, kind)`.
    pub declarations: Vec<(Symbol, usize, RelationKind)>,
    /// Rules to add, each with the source span of its statement when
    /// known.
    pub rules: Vec<(WRule, Option<Span>)>,
    /// Facts to insert into local extensional relations.
    pub facts: Vec<WFact>,
}

impl ProgramBatch {
    /// An empty batch.
    pub fn new() -> ProgramBatch {
        ProgramBatch::default()
    }

    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.declarations.is_empty() && self.rules.is_empty() && self.facts.is_empty()
    }
}

/// What [`crate::Peer::install`] applied, plus the non-blocking
/// diagnostics the checker raised.
#[derive(Clone, Debug, Default)]
pub struct InstallReport {
    /// Relations declared.
    pub declarations: usize,
    /// Ids of the rules added, in batch order.
    pub rules: Vec<crate::RuleId>,
    /// Facts inserted (duplicates of existing facts count as applied).
    pub facts: usize,
    /// `Severity::Warning` diagnostics from the checker (errors abort
    /// the install and travel in [`crate::WdlError::Rejected`]).
    pub warnings: Vec<Diagnostic>,
}

/// The seam between the peer engine and the static analyzer: given the
/// installing peer and the batch, return diagnostics. `wdl-analyze`
/// provides the real implementation; [`NoCheck`] opts out.
pub trait ProgramCheck {
    /// Analyzes `batch` as if installed on `peer`, returning findings.
    fn check(&self, peer: &crate::Peer, batch: &ProgramBatch) -> Vec<Diagnostic>;
}

/// A checker that accepts everything — [`crate::Peer::install`] then
/// only applies the engine's intrinsic validation (schema + safety).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCheck;

impl ProgramCheck for NoCheck {
    fn check(&self, _peer: &crate::Peer, _batch: &ProgramBatch) -> Vec<Diagnostic> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_severities_partition() {
        let all = [
            DiagCode::UnboundHeadVar,
            DiagCode::UnboundNegatedVar,
            DiagCode::UnboundNameVar,
            DiagCode::UnstratifiableNegation,
            DiagCode::UnboundedDelegation,
            DiagCode::ArityMismatch,
            DiagCode::UngrantedWrite,
            DiagCode::DeadRule,
            DiagCode::UnreachableRelation,
        ];
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.number() as usize, i + 1);
            assert_eq!(c.as_str(), format!("WDL{:03}", i + 1));
        }
        assert!(DiagCode::UnboundHeadVar.severity() == Severity::Error);
        assert!(DiagCode::DeadRule.severity() == Severity::Warning);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn diagnostic_renders_span_code_and_notes() {
        let d = Diagnostic::new(DiagCode::UnboundHeadVar, "head variable $x is unbound")
            .with_span(Some(Span::new(3, 7)))
            .note("bind $x in the body");
        let s = d.to_string();
        assert!(s.starts_with("3:7: error[WDL001]:"), "{s}");
        assert!(s.contains("note: bind $x"), "{s}");
        assert!(d.is_error());
    }
}
