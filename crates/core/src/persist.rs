//! Durable peer state: export/import for persistence.
//!
//! The paper's vision is users who "launch their customized peers on their
//! machines with their own personal data" — which implies peers survive
//! restarts. [`PeerState`] captures everything durable about a peer:
//! schema, extensional facts, own rules, installed delegations, trust
//! settings and relation grants. Transient state (in-flight messages,
//! per-stage diffs, the intensional snapshot) is deliberately *not*
//! captured: a restarted peer re-derives its views at its first stage and
//! its correspondents' diff protocols resynchronize from their side.
//!
//! Serialization to bytes/files lives in `wdl-net::snapshot` (which owns
//! the wire codec); this module is the state model plus the in-memory
//! round trip.

use crate::acl::UntrustedPolicy;
use crate::grants::RelationGrants;
use crate::{qualify, Delegation, Peer, RelationDecl, RelationKind, Result, WFact, WRule};
use serde::{Deserialize, Serialize};
use wdl_datalog::Symbol;

/// A peer's durable state.
///
/// Runtime tuning knobs — worker count, fixpoint limit, and the
/// compiled-vs-interpreted stage engine selection
/// ([`Peer::set_compiled_stage`]) — are deliberately **not** part of this
/// state: snapshots are semantic (what the peer knows and runs, not how
/// fast or with which engine it computes it), and restores come back on
/// the defaults.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeerState {
    /// Peer name.
    pub name: Symbol,
    /// Relation declarations.
    pub decls: Vec<RelationDecl>,
    /// Extensional facts.
    pub facts: Vec<WFact>,
    /// The peer's own rules, in id order.
    pub rules: Vec<WRule>,
    /// Delegations installed here by other peers.
    pub delegated: Vec<Delegation>,
    /// Trusted peers (delegations from them install without approval).
    pub trusted: Vec<Symbol>,
    /// Policy for untrusted delegation origins.
    pub untrusted_policy: UntrustedPolicy,
    /// Relation-level grants.
    pub grants: RelationGrants,
    /// Session delivery watermarks: `((remote, direction), (incarnation,
    /// seq))`; direction 0 = delivered, 1 = acked (see
    /// [`Peer::session_watermarks`]).
    pub watermarks: Vec<((Symbol, u8), (u64, u64))>,
}

impl Peer {
    /// Exports the peer's durable state.
    pub fn export_state(&self) -> PeerState {
        let mut decls: Vec<RelationDecl> = self.schema.iter().copied().collect();
        decls.sort_by_key(|d| d.rel.as_str());
        let mut facts = Vec::new();
        for d in &decls {
            if d.kind == RelationKind::Extensional {
                if let Some(rel) = self.store.relation(qualify(d.rel, self.name)) {
                    for tuple in rel.iter() {
                        facts.push(WFact {
                            rel: d.rel,
                            peer: self.name,
                            tuple,
                        });
                    }
                }
            }
        }
        PeerState {
            name: self.name,
            decls,
            facts,
            rules: self.rules.iter().map(|e| e.rule.clone()).collect(),
            delegated: self.delegated.clone(),
            trusted: self.acl.trusted_peers(),
            untrusted_policy: self.acl.untrusted_policy(),
            grants: self.grants.clone(),
            watermarks: self
                .session_watermarks
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
        }
    }

    /// Reconstructs a peer from exported state. Rule ids are reassigned
    /// (fresh counter) but preserve order.
    pub fn import_state(state: PeerState) -> Result<Peer> {
        let mut p = Peer::new(state.name);
        for d in &state.decls {
            p.declare(d.rel, d.arity, d.kind)?;
        }
        for f in state.facts {
            if f.peer == state.name {
                p.insert_local(f.rel, f.tuple.to_vec())?;
            }
        }
        for r in state.rules {
            p.add_rule(r)?;
        }
        for d in state.delegated {
            p.install_delegation(d);
        }
        for t in state.trusted {
            p.acl_mut().trust(t);
        }
        p.acl_mut().set_untrusted_policy(state.untrusted_policy);
        *p.grants_mut() = state.grants;
        for ((remote, dir), (inc, seq)) in state.watermarks {
            p.restore_session_watermark(remote, dir, inc, seq);
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_datalog::Value;

    fn sample_peer() -> Peer {
        let mut p = Peer::new("persist-sample");
        p.declare("pictures", 4, RelationKind::Extensional).unwrap();
        p.declare("view", 2, RelationKind::Intensional).unwrap();
        p.declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        for id in [1, 2] {
            p.insert_local(
                "pictures",
                vec![
                    Value::from(id),
                    Value::from(format!("{id}.jpg")),
                    Value::from("persist-sample"),
                    Value::bytes(&[id as u8]),
                ],
            )
            .unwrap();
        }
        p.add_rule(WRule::example_attendee_pictures("persist-sample"))
            .unwrap();
        p.install_delegation(Delegation::new(
            Symbol::intern("origin-x"),
            Symbol::intern("persist-sample"),
            WRule::example_attendee_pictures("origin-x"),
        ));
        p.acl_mut().trust("sigmod");
        p.grants_mut().restrict_read("pictures");
        p.grants_mut().grant_read("pictures", "sigmod");
        p.grants_mut().declassify("view");
        p
    }

    #[test]
    fn export_import_round_trip() {
        let p = sample_peer();
        let state = p.export_state();
        let q = Peer::import_state(state.clone()).unwrap();

        assert_eq!(q.name(), p.name());
        assert_eq!(q.schema().len(), p.schema().len());
        assert_eq!(q.relation_facts("pictures").len(), 2);
        assert_eq!(q.rules().len(), 1);
        assert_eq!(q.installed_delegations().len(), 1);
        assert!(q.acl().is_trusted(Symbol::intern("sigmod")));
        assert!(q
            .grants()
            .can_read_direct(Symbol::intern("pictures"), Symbol::intern("sigmod")));
        assert!(!q
            .grants()
            .can_read_direct(Symbol::intern("pictures"), Symbol::intern("other")));
        assert!(q.grants().is_declassified(Symbol::intern("view")));

        // Exporting again yields equivalent state.
        let state2 = q.export_state();
        assert_eq!(state.decls, state2.decls);
        assert_eq!(state.rules, state2.rules);
        let mut f1 = state.facts.clone();
        let mut f2 = state2.facts;
        f1.sort_by_key(|f| format!("{f}"));
        f2.sort_by_key(|f| format!("{f}"));
        assert_eq!(f1, f2);
    }

    #[test]
    fn imported_peer_computes() {
        let p = sample_peer();
        let mut q = Peer::import_state(p.export_state()).unwrap();
        // The restored peer can run stages and derive.
        q.insert_local("selectedAttendee", vec![Value::from("persist-sample")])
            .unwrap();
        q.run_stage().unwrap();
        // Its own rule pulls its own pictures (self-selection).
        assert_eq!(q.relation_facts("view").len(), 0); // view unrelated
        assert_eq!(q.relation_facts("attendeePictures").len(), 2);
    }

    #[test]
    fn empty_peer_round_trips() {
        let p = Peer::new("persist-empty");
        let q = Peer::import_state(p.export_state()).unwrap();
        assert_eq!(q.name().as_str(), "persist-empty");
        assert_eq!(q.schema().len(), 0);
        assert!(q.rules().is_empty());
    }
}
