//! Relation-level access control with provenance-derived view policy.
//!
//! The demo shipped only the delegation-approval queue ([`crate::acl`]);
//! the paper sketches the full model it was building toward (§2, "Access
//! control"):
//!
//! > "Users directly specify the accessibility of stored relations that
//! > they own. For derived relations (i.e. views), a user may rely on a
//! > default access control policy that is derived automatically from the
//! > provenance of the base relations. Alternatively, a user may override
//! > this policy in order to grant access to views, effectively
//! > 'declassifying' some data."
//!
//! This module implements that model:
//!
//! * per-relation **read/write grants** (discretionary): a relation is
//!   either open to everyone (the default) or restricted to an explicit
//!   peer set;
//! * a **provenance-derived default for views**: a peer may read an
//!   intensional relation iff it may read *every base relation feeding it*
//!   (computed statically from the owner's rules — the relation-level
//!   analogue of [`wdl_datalog::provenance`]);
//! * **declassification**: marking a view exempts it from the provenance
//!   rule, leaving only its explicit grant.
//!
//! Enforcement happens in the stage loop: write grants gate incoming fact
//! updates; read grants gate what *delegated* rules (rules running here on
//! another peer's behalf) may consume.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use wdl_datalog::Symbol;

/// Who may perform an operation on a relation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AccessSet {
    /// Anyone (the open-world default of the demo system).
    #[default]
    Everyone,
    /// Only the listed peers (the owner is always implicitly allowed).
    Peers(HashSet<Symbol>),
}

impl AccessSet {
    fn allows(&self, peer: Symbol) -> bool {
        match self {
            AccessSet::Everyone => true,
            AccessSet::Peers(set) => set.contains(&peer),
        }
    }
}

/// Per-relation grants for one peer's relations.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RelationGrants {
    read: HashMap<Symbol, AccessSet>,
    write: HashMap<Symbol, AccessSet>,
    declassified: HashSet<Symbol>,
}

impl RelationGrants {
    /// Fully open grants (everything readable/writable by everyone).
    pub fn new() -> RelationGrants {
        RelationGrants::default()
    }

    /// Restricts reads of `rel` to an explicit (initially empty) peer set.
    pub fn restrict_read(&mut self, rel: impl Into<Symbol>) {
        self.read
            .insert(rel.into(), AccessSet::Peers(HashSet::new()));
    }

    /// Restricts writes of `rel` to an explicit (initially empty) peer set.
    pub fn restrict_write(&mut self, rel: impl Into<Symbol>) {
        self.write
            .insert(rel.into(), AccessSet::Peers(HashSet::new()));
    }

    /// Adds `peer` to `rel`'s read set (restricting first if it was open).
    pub fn grant_read(&mut self, rel: impl Into<Symbol>, peer: impl Into<Symbol>) {
        let rel = rel.into();
        match self.read.entry(rel).or_default() {
            AccessSet::Everyone => {
                self.read
                    .insert(rel, AccessSet::Peers([peer.into()].into_iter().collect()));
            }
            AccessSet::Peers(set) => {
                set.insert(peer.into());
            }
        }
    }

    /// Adds `peer` to `rel`'s write set (restricting first if it was open).
    pub fn grant_write(&mut self, rel: impl Into<Symbol>, peer: impl Into<Symbol>) {
        let rel = rel.into();
        match self.write.entry(rel).or_default() {
            AccessSet::Everyone => {
                self.write
                    .insert(rel, AccessSet::Peers([peer.into()].into_iter().collect()));
            }
            AccessSet::Peers(set) => {
                set.insert(peer.into());
            }
        }
    }

    /// Removes `peer` from `rel`'s read set (no-op while the relation is
    /// open to everyone).
    pub fn revoke_read(&mut self, rel: impl Into<Symbol>, peer: impl Into<Symbol>) {
        if let Some(AccessSet::Peers(set)) = self.read.get_mut(&rel.into()) {
            set.remove(&peer.into());
        }
    }

    /// Marks a view as declassified: its provenance-derived policy is
    /// bypassed, leaving only its explicit grant.
    pub fn declassify(&mut self, rel: impl Into<Symbol>) {
        self.declassified.insert(rel.into());
    }

    /// True iff `rel` is declassified.
    pub fn is_declassified(&self, rel: Symbol) -> bool {
        self.declassified.contains(&rel)
    }

    /// Direct (explicit) read permission, ignoring provenance.
    pub fn can_read_direct(&self, rel: Symbol, peer: Symbol) -> bool {
        self.read
            .get(&rel)
            .unwrap_or(&AccessSet::Everyone)
            .allows(peer)
    }

    /// Direct write permission.
    pub fn can_write(&self, rel: Symbol, peer: Symbol) -> bool {
        self.write
            .get(&rel)
            .unwrap_or(&AccessSet::Everyone)
            .allows(peer)
    }

    /// Effective read permission under the paper's model: the explicit
    /// grant on `rel`, AND — unless `rel` is declassified — read access to
    /// every base relation in `view_bases[rel]` (the provenance-derived
    /// default policy). Base relations (absent from `view_bases`) use the
    /// explicit grant alone.
    pub fn can_read(
        &self,
        rel: Symbol,
        peer: Symbol,
        view_bases: &HashMap<Symbol, HashSet<Symbol>>,
    ) -> bool {
        if !self.can_read_direct(rel, peer) {
            return false;
        }
        if self.is_declassified(rel) {
            return true;
        }
        match view_bases.get(&rel) {
            Some(bases) => bases.iter().all(|b| self.can_read_direct(*b, peer)),
            None => true,
        }
    }
}

/// Flattened grants for serialization (the snapshot codec is hand-rolled,
/// see `wdl-net::snapshot`). Only *restricted* relations appear; everything
/// absent is open to everyone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GrantExport {
    /// Restricted-read relations and their allowed peers (sorted).
    pub read: Vec<(Symbol, Vec<Symbol>)>,
    /// Restricted-write relations and their allowed peers (sorted).
    pub write: Vec<(Symbol, Vec<Symbol>)>,
    /// Declassified views (sorted).
    pub declassified: Vec<Symbol>,
}

impl RelationGrants {
    /// Exports the restricted entries in deterministic order.
    pub fn export(&self) -> GrantExport {
        let flatten = |m: &HashMap<Symbol, AccessSet>| {
            let mut out: Vec<(Symbol, Vec<Symbol>)> = m
                .iter()
                .filter_map(|(rel, set)| match set {
                    AccessSet::Everyone => None,
                    AccessSet::Peers(ps) => {
                        let mut v: Vec<Symbol> = ps.iter().copied().collect();
                        v.sort_by_key(|s| s.as_str());
                        Some((*rel, v))
                    }
                })
                .collect();
            out.sort_by_key(|(rel, _)| rel.as_str());
            out
        };
        let mut declassified: Vec<Symbol> = self.declassified.iter().copied().collect();
        declassified.sort_by_key(|s| s.as_str());
        GrantExport {
            read: flatten(&self.read),
            write: flatten(&self.write),
            declassified,
        }
    }

    /// Rebuilds grants from an export.
    pub fn import(export: GrantExport) -> RelationGrants {
        let expand = |entries: Vec<(Symbol, Vec<Symbol>)>| {
            entries
                .into_iter()
                .map(|(rel, ps)| (rel, AccessSet::Peers(ps.into_iter().collect())))
                .collect()
        };
        RelationGrants {
            read: expand(export.read),
            write: expand(export.write),
            declassified: export.declassified.into_iter().collect(),
        }
    }
}

/// Static relation-level provenance: for each locally defined view (head of
/// one of `rules`' local rules), the set of *base* local relations feeding
/// it, transitively. Only constant-named atoms at `owner` participate —
/// variable relations or remote atoms cannot be resolved statically and are
/// conservatively ignored (their data arrives through messages, which are
/// gated separately by write grants).
pub fn view_base_relations(
    owner: Symbol,
    rules: impl Iterator<Item = crate::WRule> + Clone,
) -> HashMap<Symbol, HashSet<Symbol>> {
    // Direct edges: head rel -> body rels (local, constant-named).
    let mut direct: HashMap<Symbol, HashSet<Symbol>> = HashMap::new();
    let mut heads: HashSet<Symbol> = HashSet::new();
    for rule in rules {
        let (Some(head_rel), Some(head_peer)) = (rule.head.rel.as_name(), rule.head.peer.as_name())
        else {
            continue;
        };
        if head_peer != owner {
            continue;
        }
        heads.insert(head_rel);
        let entry = direct.entry(head_rel).or_default();
        for item in &rule.body {
            if let crate::WBodyItem::Literal(l) = item {
                if let (Some(rel), Some(peer)) = (l.atom.rel.as_name(), l.atom.peer.as_name()) {
                    if peer == owner {
                        entry.insert(rel);
                    }
                }
            }
        }
    }
    // Transitive closure down to non-head (base) relations.
    let mut out: HashMap<Symbol, HashSet<Symbol>> = HashMap::new();
    for &view in &heads {
        let mut bases = HashSet::new();
        let mut stack: Vec<Symbol> = direct.get(&view).into_iter().flatten().copied().collect();
        let mut seen: HashSet<Symbol> = [view].into_iter().collect();
        while let Some(rel) = stack.pop() {
            if !seen.insert(rel) {
                continue;
            }
            if heads.contains(&rel) {
                stack.extend(direct.get(&rel).into_iter().flatten().copied());
            } else {
                bases.insert(rel);
            }
        }
        out.insert(view, bases);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WAtom, WRule};
    use wdl_datalog::Term;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn default_is_open() {
        let g = RelationGrants::new();
        assert!(g.can_read_direct(sym("pictures"), sym("anyone")));
        assert!(g.can_write(sym("pictures"), sym("anyone")));
    }

    #[test]
    fn restrict_then_grant() {
        let mut g = RelationGrants::new();
        g.restrict_read("private");
        assert!(!g.can_read_direct(sym("private"), sym("jules")));
        g.grant_read("private", "jules");
        assert!(g.can_read_direct(sym("private"), sym("jules")));
        assert!(!g.can_read_direct(sym("private"), sym("julia")));
        g.revoke_read("private", "jules");
        assert!(!g.can_read_direct(sym("private"), sym("jules")));
    }

    #[test]
    fn grant_on_open_relation_restricts_it() {
        let mut g = RelationGrants::new();
        g.grant_write("inbox", "sigmod");
        assert!(g.can_write(sym("inbox"), sym("sigmod")));
        assert!(!g.can_write(sym("inbox"), sym("randomer")));
    }

    #[test]
    fn provenance_derived_view_policy() {
        // view <- private (restricted); reader lacks private => no view.
        let mut g = RelationGrants::new();
        g.restrict_read("private");
        let bases: HashMap<Symbol, HashSet<Symbol>> =
            [(sym("view"), [sym("private")].into_iter().collect())]
                .into_iter()
                .collect();
        assert!(!g.can_read(sym("view"), sym("jules"), &bases));
        g.grant_read("private", "jules");
        assert!(g.can_read(sym("view"), sym("jules"), &bases));
    }

    #[test]
    fn declassification_overrides_provenance() {
        let mut g = RelationGrants::new();
        g.restrict_read("private");
        let bases: HashMap<Symbol, HashSet<Symbol>> =
            [(sym("summary"), [sym("private")].into_iter().collect())]
                .into_iter()
                .collect();
        assert!(!g.can_read(sym("summary"), sym("julia"), &bases));
        g.declassify("summary");
        assert!(g.can_read(sym("summary"), sym("julia"), &bases));
        // But an explicit restriction on the view itself still applies.
        g.restrict_read("summary");
        assert!(!g.can_read(sym("summary"), sym("julia"), &bases));
    }

    #[test]
    fn view_bases_transitive() {
        let owner = sym("me");
        let rules = vec![
            // v1 :- base1, base2
            WRule::new(
                WAtom::at("v1", "me", vec![Term::var("x")]),
                vec![
                    WAtom::at("base1", "me", vec![Term::var("x")]).into(),
                    WAtom::at("base2", "me", vec![Term::var("x")]).into(),
                ],
            ),
            // v2 :- v1, base3
            WRule::new(
                WAtom::at("v2", "me", vec![Term::var("x")]),
                vec![
                    WAtom::at("v1", "me", vec![Term::var("x")]).into(),
                    WAtom::at("base3", "me", vec![Term::var("x")]).into(),
                ],
            ),
        ];
        let bases = view_base_relations(owner, rules.into_iter());
        let v2 = &bases[&sym("v2")];
        assert_eq!(v2.len(), 3);
        assert!(v2.contains(&sym("base1")));
        assert!(v2.contains(&sym("base3")));
    }

    #[test]
    fn remote_and_variable_atoms_ignored_statically() {
        let owner = sym("me");
        let rules = vec![WRule::new(
            WAtom::at("v", "me", vec![Term::var("x"), Term::var("a")]),
            vec![
                WAtom::at("sel", "me", vec![Term::var("a")]).into(),
                WAtom::new(
                    crate::NameTerm::name("pictures"),
                    crate::NameTerm::var("a"),
                    vec![Term::var("x")],
                )
                .into(),
            ],
        )];
        let bases = view_base_relations(owner, rules.into_iter());
        assert_eq!(bases[&sym("v")], [sym("sel")].into_iter().collect());
    }

    #[test]
    fn recursive_views_terminate() {
        let owner = sym("me");
        let rules = vec![
            WRule::new(
                WAtom::at("p", "me", vec![Term::var("x")]),
                vec![WAtom::at("e", "me", vec![Term::var("x")]).into()],
            ),
            WRule::new(
                WAtom::at("p", "me", vec![Term::var("x")]),
                vec![WAtom::at("p", "me", vec![Term::var("x")]).into()],
            ),
        ];
        let bases = view_base_relations(owner, rules.into_iter());
        assert_eq!(bases[&sym("p")], [sym("e")].into_iter().collect());
    }
}
