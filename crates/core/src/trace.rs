//! Per-peer tracing glue: the sink handle a peer records through, plus
//! the label cache that names rule evaluations for aggregation.
//!
//! A peer holds `Option<Box<PeerTracer>>` — `None` (the default) keeps
//! the stage loop exactly as fast as before tracing existed: one
//! `is_some` branch per hook site, zero allocations, no clock reads
//! (pinned by the workspace `trace_alloc` test). Installing a sink is a
//! runtime tuning knob, **not** durable state: snapshots
//! ([`crate::PeerState`]) carry semantic state only, and a restored
//! peer comes up untraced.

use std::collections::HashMap;
use std::fmt;

use wdl_datalog::Symbol;
use wdl_obs::{TraceEvent, TraceSink};

use crate::stage_plan::PlanKey;
use crate::WRule;

/// The tracing state of one peer.
pub(crate) struct PeerTracer {
    /// Where events go. Boxed dyn so runtimes can install buffering,
    /// forwarding, or null sinks without the peer caring.
    pub(crate) sink: Box<dyn TraceSink>,
    /// Interned rule labels, keyed like the stage-plan cache.
    labels: HashMap<PlanKey, Symbol>,
}

impl PeerTracer {
    pub(crate) fn new(sink: Box<dyn TraceSink>) -> Box<PeerTracer> {
        Box::new(PeerTracer {
            sink,
            labels: HashMap::new(),
        })
    }

    /// Records one event.
    #[inline]
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        self.sink.record(&ev);
    }

    /// The aggregation label for a rule evaluation, interned once per
    /// key:
    ///
    /// * own rules are labelled by their [`crate::RuleId`]
    ///   (`"alice#0"`) — one profile entry per authored rule;
    /// * delegated rules are labelled `"deleg:<head>@<me>"` — the many
    ///   structurally identical copies a hub hosts (one per delegating
    ///   peer) aggregate into the single entry a profiler wants ranked.
    pub(crate) fn rule_label(&mut self, key: PlanKey, me: Symbol, rule: &WRule) -> Symbol {
        if let Some(&label) = self.labels.get(&key) {
            return label;
        }
        let label = match key {
            PlanKey::Own(id) => Symbol::intern(&id.to_string()),
            PlanKey::Delegated(_) => match rule.head.rel.as_name() {
                Some(rel) => Symbol::intern(&format!("deleg:{rel}@{me}")),
                None => Symbol::intern(&format!("deleg:?@{me}")),
            },
        };
        self.labels.insert(key, label);
        label
    }
}

impl fmt::Debug for PeerTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PeerTracer")
            .field("labels", &self.labels.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NameTerm, RuleId, WAtom};
    use wdl_obs::BufferSink;

    fn rule(rel: &str, me: &str) -> WRule {
        WRule::new(
            WAtom::new(NameTerm::name(rel), NameTerm::name(me), vec![]),
            vec![WAtom::new(NameTerm::name(rel), NameTerm::name(me), vec![]).into()],
        )
    }

    #[test]
    fn labels_are_cached_and_scheme_is_stable() {
        let mut tr = PeerTracer::new(Box::new(BufferSink::new()));
        let me = Symbol::intern("hub");
        let own = PlanKey::Own(RuleId { peer: me, idx: 3 });
        let r = rule("pictures", "hub");
        let l1 = tr.rule_label(own, me, &r);
        let l2 = tr.rule_label(own, me, &r);
        assert_eq!(l1, l2);
        assert_eq!(l1.to_string(), "hub#3");
        let deleg = PlanKey::Delegated(
            crate::Delegation::new(Symbol::intern("att"), me, rule("pictures", "hub")).id,
        );
        let dl = tr.rule_label(deleg, me, &r);
        assert_eq!(dl.to_string(), "deleg:pictures@hub");
    }
}
