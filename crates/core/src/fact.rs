//! WebdamLog facts: `m@p(a1, ..., an)`.

use serde::{Deserialize, Serialize};
use std::fmt;
use wdl_datalog::{Symbol, Tuple, Value};

/// A WebdamLog fact — a tuple qualified by relation name **and peer name**
/// (paper §2: "a fact is an expression of the form m@p(a1, ..., an)").
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WFact {
    /// Relation name `m`.
    pub rel: Symbol,
    /// Peer name `p` — where the relation lives.
    pub peer: Symbol,
    /// The data values.
    pub tuple: Tuple,
}

impl WFact {
    /// Builds a fact.
    pub fn new(
        rel: impl Into<Symbol>,
        peer: impl Into<Symbol>,
        values: impl IntoIterator<Item = Value>,
    ) -> WFact {
        WFact {
            rel: rel.into(),
            peer: peer.into(),
            tuple: values.into_iter().collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.tuple.len()
    }

    /// The flattened datalog predicate this fact is stored under locally.
    pub fn qualified(&self) -> Symbol {
        qualify(self.rel, self.peer)
    }
}

/// Interns the flattened predicate name `rel@peer` used to store a
/// peer-qualified relation inside the datalog kernel.
pub fn qualify(rel: Symbol, peer: Symbol) -> Symbol {
    // The '@' separator cannot occur in identifiers (enforced by the parser),
    // so flattening is injective.
    Symbol::intern(&format!("{rel}@{peer}"))
}

/// Inverts [`qualify`] for a known peer: `rel@peer` back to `rel`.
/// Returns `None` if `qualified` is not qualified with `peer` — injectivity
/// of [`qualify`] makes the answer unambiguous when it is.
pub fn unqualify(qualified: Symbol, peer: Symbol) -> Option<Symbol> {
    let suffix = format!("@{peer}");
    qualified.as_str().strip_suffix(&suffix).map(Symbol::intern)
}

impl fmt::Debug for WFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for WFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}(", self.rel, self.peer)?;
        for (i, v) in self.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        let f = WFact::new(
            "pictures",
            "sigmod",
            vec![
                Value::from(32),
                Value::from("sea.jpg"),
                Value::from("Emilien"),
            ],
        );
        assert_eq!(
            f.to_string(),
            "pictures@sigmod(32, \"sea.jpg\", \"Emilien\")"
        );
        assert_eq!(f.arity(), 3);
    }

    #[test]
    fn qualification_is_injective_across_rel_peer_split() {
        let a = qualify(Symbol::intern("a"), Symbol::intern("bc"));
        let b = qualify(Symbol::intern("ab"), Symbol::intern("c"));
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "a@bc");
    }

    #[test]
    fn qualified_uses_rel_and_peer() {
        let f = WFact::new("r", "p", vec![Value::from(1)]);
        assert_eq!(f.qualified().as_str(), "r@p");
    }
}
