//! # wdl-core — the WebdamLog language and peer engine
//!
//! This crate implements the primary contribution of *Rule-Based Application
//! Development using Webdamlog* (Abiteboul et al., SIGMOD 2013): a
//! datalog-style language for autonomous peers in which **both data and
//! rules move between peers**.
//!
//! The pieces, mapped to the paper:
//!
//! * **Facts** `m@p(a1, ..., an)` — [`WFact`]: a relation name *and a peer
//!   name* qualify every tuple.
//! * **Rules** `$R@$P($U) :- $R1@$P1($U1), ..., $Rn@$Pn($Un)` — [`WRule`]:
//!   relation and peer positions may hold *variables*, bound at runtime from
//!   ordinary data values. Bodies are evaluated **left to right**; the order
//!   matters (§2).
//! * **Distribution** — body atoms may live at remote peers.
//! * **Delegation** — the novel feature: when evaluation at peer `p` reaches
//!   the first non-local atom, the instantiated remainder of the rule is
//!   *installed as a rule at that atom's peer* ([`Delegation`]). Delegations
//!   are re-derived every stage and revoked when their supporting valuations
//!   disappear.
//! * **Stage loop** (§2) — [`Peer::run_stage`]: (1) ingest inputs received
//!   since the previous stage, (2) run a local fixpoint, (3) emit fact
//!   updates and delegations to other peers.
//! * **Control of delegation** (§3) — [`acl`]: delegations from untrusted
//!   peers are parked in a pending queue until the user approves them, the
//!   exact policy the demo shows ("each delegation sent by an untrusted peer
//!   will be pending in a queue until the user explicitly accepts it").
//!
//! ## A taste (the paper's `attendeePictures` rule)
//!
//! ```
//! use wdl_core::{Peer, WRule, WAtom, NameTerm, runtime::LocalRuntime};
//! use wdl_core::RelationKind::{Extensional, Intensional};
//! use wdl_datalog::{Term, Value};
//!
//! let mut rt = LocalRuntime::new();
//! rt.add_peer(Peer::new("Jules")).unwrap();
//! rt.add_peer(Peer::new("Emilien")).unwrap();
//! // Peers trust each other for this example.
//! rt.peer_mut("Jules").unwrap().acl_mut().trust("Emilien");
//! rt.peer_mut("Emilien").unwrap().acl_mut().trust("Jules");
//!
//! let jules = rt.peer_mut("Jules").unwrap();
//! jules.declare("selectedAttendee", 1, Extensional).unwrap();
//! jules.declare("attendeePictures", 4, Intensional).unwrap();
//! // attendeePictures@Jules($id,$name,$owner,$data) :-
//! //     selectedAttendee@Jules($att), pictures@$att($id,$name,$owner,$data)
//! let rule = WRule::new(
//!     WAtom::new(
//!         NameTerm::name("attendeePictures"),
//!         NameTerm::name("Jules"),
//!         vec![Term::var("id"), Term::var("name"), Term::var("owner"), Term::var("data")],
//!     ),
//!     vec![
//!         WAtom::new(NameTerm::name("selectedAttendee"), NameTerm::name("Jules"),
//!                    vec![Term::var("att")]).into(),
//!         WAtom::new(NameTerm::name("pictures"), NameTerm::var("att"),
//!                    vec![Term::var("id"), Term::var("name"), Term::var("owner"), Term::var("data")]).into(),
//!     ],
//! );
//! jules.add_rule(rule).unwrap();
//! jules.insert_local("selectedAttendee", vec![Value::from("Emilien")]).unwrap();
//!
//! let emilien = rt.peer_mut("Emilien").unwrap();
//! emilien.declare("pictures", 4, Extensional).unwrap();
//! emilien.insert_local("pictures", vec![
//!     Value::from(32), Value::from("sea.jpg"), Value::from("Emilien"),
//!     Value::bytes(&[1, 0, 0]),
//! ]).unwrap();
//!
//! let report = rt.run_to_quiescence(32).unwrap();
//! assert!(report.quiescent);
//! let jules = rt.peer("Jules").unwrap();
//! assert_eq!(jules.relation_facts("attendeePictures").len(), 1);
//! // Emilien is now running one delegated rule on Jules' behalf.
//! assert_eq!(rt.peer("Emilien").unwrap().installed_delegations().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
mod atom;
mod delegation;
pub mod diag;
mod durability;
mod error;
mod fact;
pub mod grants;
mod maintain;
mod message;
mod peer;
mod persist;
mod rule;
pub mod runtime;
mod schema;
pub mod shard;
mod stage;
mod stage_plan;
mod trace;

pub use acl::{AccessControl, DelegationDecision, PendingDelegation};
pub use atom::{NameTerm, WAtom, WBodyItem, WLiteral};
pub use delegation::{Delegation, DelegationId};
pub use diag::{
    DiagCode, Diagnostic, InstallReport, NoCheck, ProgramBatch, ProgramCheck, Severity, Span,
};
pub use durability::DurabilitySink;
pub use error::{Result, WdlError};
pub use fact::{qualify, unqualify, WFact};
pub use grants::{AccessSet, RelationGrants};
pub use message::{FactKind, Message, Payload};
pub use peer::{Peer, RuleEntry, RuleId};
pub use persist::PeerState;
pub use rule::WRule;
pub use schema::{RelationDecl, RelationKind, Schema};
pub use shard::{ShardReport, ShardedRuntime};
pub use stage::{StageOutput, StageStats};
// The observability layer's vocabulary, re-exported so embedders of the
// runtimes need not name `wdl-obs` themselves.
pub use wdl_obs::{Aggregator, BufferSink, CriticalPath, TraceEvent, TraceSink};
