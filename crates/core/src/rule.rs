//! WebdamLog rules and the distribution-aware safety check.

use crate::{NameTerm, Result, WAtom, WBodyItem, WdlError};
use serde::{Deserialize, Serialize};
use std::fmt;
use wdl_datalog::{Symbol, Term};

/// A WebdamLog rule `$R@$P($U) :- $R1@$P1($U1), ..., $Rn@$Pn($Un)` (paper §2).
///
/// Body items are evaluated **left to right**. Relation and peer positions
/// may hold variables bound (to string values) by earlier body atoms.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WRule {
    /// Head atom.
    pub head: WAtom,
    /// Body items, in evaluation order.
    pub body: Vec<WBodyItem>,
}

impl WRule {
    /// Builds a rule; validate with [`WRule::check_safety`] (done
    /// automatically by [`crate::Peer::add_rule`]).
    pub fn new(head: WAtom, body: Vec<WBodyItem>) -> WRule {
        WRule { head, body }
    }

    /// WebdamLog safety under left-to-right evaluation:
    ///
    /// 1. every *name* variable (relation or peer position) of a body atom
    ///    must be bound by items strictly to its left — in particular the
    ///    first atom's names must be constants;
    /// 2. data variables of negated atoms, comparisons and assignment inputs
    ///    must be bound to the left;
    /// 3. every head variable (name or data position) must be bound by the
    ///    body.
    ///
    /// Rule 1 is what makes delegation well-defined: when evaluation reaches
    /// the first non-local atom, its peer term is already a concrete peer —
    /// the delegation target.
    pub fn check_safety(&self) -> Result<()> {
        let mut bound: Vec<Symbol> = Vec::new();
        for (i, item) in self.body.iter().enumerate() {
            let mut reads = Vec::new();
            item.reads(&mut reads);
            if let Some(v) = reads.iter().find(|v| !bound.contains(v)) {
                return Err(WdlError::UnsafeDistribution(format!(
                    "variable ${v} read at body position {i} ({item}) is not bound by earlier items"
                )));
            }
            // Assignments must bind a fresh variable.
            if let WBodyItem::Assign { var, .. } = item {
                if bound.contains(var) {
                    return Err(WdlError::UnsafeDistribution(format!(
                        "assignment at position {i} rebinds already-bound variable ${var}"
                    )));
                }
            }
            item.binds(&mut bound);
        }
        let mut head_vars = Vec::new();
        self.head.all_variables(&mut head_vars);
        if let Some(v) = head_vars.iter().find(|v| !bound.contains(v)) {
            return Err(WdlError::UnsafeDistribution(format!(
                "head variable ${v} of {} is not bound by the body",
                self.head
            )));
        }
        Ok(())
    }

    /// Names of peers mentioned as constants anywhere in the rule.
    pub fn constant_peers(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut push = |nt: &NameTerm| {
            if let NameTerm::Name(s) = nt {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
        };
        push(&self.head.peer);
        for item in &self.body {
            if let WBodyItem::Literal(l) = item {
                push(&l.atom.peer);
            }
        }
        out
    }

    /// All variables of the rule, in first-occurrence order.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut all = Vec::new();
        for item in &self.body {
            let mut vs = Vec::new();
            item.reads(&mut vs);
            item.binds(&mut vs);
            for v in vs {
                if !all.contains(&v) {
                    all.push(v);
                }
            }
        }
        let mut hv = Vec::new();
        self.head.all_variables(&mut hv);
        for v in hv {
            if !all.contains(&v) {
                all.push(v);
            }
        }
        all
    }

    /// A canonical text form used for content-addressed delegation ids. Two
    /// structurally identical rules render identically, across processes.
    pub fn canonical_text(&self) -> String {
        self.to_string()
    }
}

impl fmt::Debug for WRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for WRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, item) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        Ok(())
    }
}

/// Builder-style helpers for tests, examples and applications.
impl WRule {
    /// The paper's `attendeePictures` rule, parameterized — used in tests
    /// and as the running example of the crate documentation.
    pub fn example_attendee_pictures(owner: &str) -> WRule {
        WRule::new(
            WAtom::at(
                "attendeePictures",
                owner,
                vec![
                    Term::var("id"),
                    Term::var("name"),
                    Term::var("owner"),
                    Term::var("data"),
                ],
            ),
            vec![
                WAtom::at("selectedAttendee", owner, vec![Term::var("attendee")]).into(),
                WAtom::new(
                    NameTerm::name("pictures"),
                    NameTerm::var("attendee"),
                    vec![
                        Term::var("id"),
                        Term::var("name"),
                        Term::var("owner"),
                        Term::var("data"),
                    ],
                )
                .into(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_datalog::CmpOp;

    #[test]
    fn paper_rule_is_safe_and_displays() {
        let r = WRule::example_attendee_pictures("Jules");
        r.check_safety().unwrap();
        assert_eq!(
            r.to_string(),
            "attendeePictures@Jules($id, $name, $owner, $data) :- \
             selectedAttendee@Jules($attendee), \
             pictures@$attendee($id, $name, $owner, $data)"
        );
    }

    #[test]
    fn first_atom_with_variable_peer_is_unsafe() {
        // pictures@$p($x) as the first atom: $p unbound.
        let r = WRule::new(
            WAtom::at("out", "me", vec![Term::var("x")]),
            vec![WAtom::new(
                NameTerm::name("pictures"),
                NameTerm::var("p"),
                vec![Term::var("x")],
            )
            .into()],
        );
        assert!(matches!(
            r.check_safety(),
            Err(WdlError::UnsafeDistribution(_))
        ));
    }

    #[test]
    fn relation_variable_must_be_bound_too() {
        let r = WRule::new(
            WAtom::at("out", "me", vec![Term::var("x")]),
            vec![WAtom::new(
                NameTerm::var("r"),
                NameTerm::name("me"),
                vec![Term::var("x")],
            )
            .into()],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn head_name_variable_needs_binding() {
        // $protocol@me(...) :- communicate@me($protocol) is safe;
        // $protocol@me(...) :- pics@me($x) is not.
        let safe = WRule::new(
            WAtom::new(NameTerm::var("protocol"), NameTerm::name("me"), vec![]),
            vec![WAtom::at("communicate", "me", vec![Term::var("protocol")]).into()],
        );
        safe.check_safety().unwrap();
        let unsafe_rule = WRule::new(
            WAtom::new(NameTerm::var("protocol"), NameTerm::name("me"), vec![]),
            vec![WAtom::at("pics", "me", vec![Term::var("x")]).into()],
        );
        assert!(unsafe_rule.check_safety().is_err());
    }

    #[test]
    fn comparison_before_binding_is_unsafe() {
        let r = WRule::new(
            WAtom::at("out", "me", vec![Term::var("x")]),
            vec![
                WBodyItem::cmp(CmpOp::Gt, Term::var("x"), Term::cst(1)),
                WAtom::at("n", "me", vec![Term::var("x")]).into(),
            ],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn negated_atom_variables_must_be_bound() {
        let r = WRule::new(
            WAtom::at("out", "me", vec![Term::var("x")]),
            vec![
                WAtom::at("n", "me", vec![Term::var("x")]).into(),
                WBodyItem::not_atom(WAtom::at("blocked", "me", vec![Term::var("y")])),
            ],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn constant_peers_collected() {
        let r = WRule::example_attendee_pictures("Jules");
        let peers = r.constant_peers();
        assert_eq!(peers, vec![Symbol::intern("Jules")]);
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let r = WRule::example_attendee_pictures("Jules");
        let names: Vec<&str> = r.variables().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["attendee", "id", "name", "owner", "data"]);
    }

    #[test]
    fn canonical_text_is_stable() {
        let a = WRule::example_attendee_pictures("Jules");
        let b = WRule::example_attendee_pictures("Jules");
        assert_eq!(a.canonical_text(), b.canonical_text());
        let c = WRule::example_attendee_pictures("Emilien");
        assert_ne!(a.canonical_text(), c.canonical_text());
    }
}
