//! WebdamLog atoms: relation/peer positions may hold variables.

use crate::{Result, WFact, WdlError};
use serde::{Deserialize, Serialize};
use std::fmt;
use wdl_datalog::{CmpOp, Expr, Subst, Symbol, Term, Value};

/// A term in *name position* (relation or peer): either a constant name or a
/// variable bound at runtime to a string value.
///
/// This is the paper's "main novelty ... the possibility for WebdamLog rules
/// to have variables as relation and peer names" (§2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NameTerm {
    /// A constant name, e.g. `pictures` or `Jules`.
    Name(Symbol),
    /// A variable, e.g. `$attendee` in `pictures@$attendee(...)`.
    Var(Symbol),
}

impl NameTerm {
    /// A constant name.
    pub fn name(s: impl Into<Symbol>) -> NameTerm {
        NameTerm::Name(s.into())
    }

    /// A variable.
    pub fn var(s: impl Into<Symbol>) -> NameTerm {
        NameTerm::Var(s.into())
    }

    /// Returns the constant name if this is one.
    pub fn as_name(&self) -> Option<Symbol> {
        match self {
            NameTerm::Name(s) => Some(*s),
            NameTerm::Var(_) => None,
        }
    }

    /// True iff this is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, NameTerm::Var(_))
    }

    /// Resolves under a substitution. A bound name variable must hold a
    /// string value (peer and relation names are strings in data position).
    pub fn resolve(&self, subst: &Subst) -> Result<Option<Symbol>> {
        match self {
            NameTerm::Name(s) => Ok(Some(*s)),
            NameTerm::Var(v) => match subst.get(*v) {
                None => Ok(None),
                Some(Value::Str(s)) => Ok(Some(Symbol::intern(s))),
                Some(other) => Err(WdlError::BadNameBinding(format!(
                    "variable ${v} used as a name is bound to {other} (a {}), expected a string",
                    other.type_name()
                ))),
            },
        }
    }

    /// Applies a substitution, turning a bound variable into a constant name.
    pub fn apply(&self, subst: &Subst) -> Result<NameTerm> {
        Ok(match self.resolve(subst)? {
            Some(name) => NameTerm::Name(name),
            None => *self,
        })
    }
}

impl fmt::Debug for NameTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for NameTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTerm::Name(s) => write!(f, "{s}"),
            NameTerm::Var(v) => write!(f, "${v}"),
        }
    }
}

/// A WebdamLog atom `$R@$P($U)`: relation term, peer term, argument terms.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WAtom {
    /// Relation position (name or variable).
    pub rel: NameTerm,
    /// Peer position (name or variable).
    pub peer: NameTerm,
    /// Data arguments.
    pub args: Vec<Term>,
}

impl WAtom {
    /// Builds an atom.
    pub fn new(rel: NameTerm, peer: NameTerm, args: Vec<Term>) -> WAtom {
        WAtom { rel, peer, args }
    }

    /// Convenience: both names constant.
    pub fn at(rel: impl Into<Symbol>, peer: impl Into<Symbol>, args: Vec<Term>) -> WAtom {
        WAtom::new(
            NameTerm::Name(rel.into()),
            NameTerm::Name(peer.into()),
            args,
        )
    }

    /// Applies a substitution to names and arguments.
    pub fn apply(&self, subst: &Subst) -> Result<WAtom> {
        Ok(WAtom {
            rel: self.rel.apply(subst)?,
            peer: self.peer.apply(subst)?,
            args: self.args.iter().map(|t| t.apply(subst)).collect(),
        })
    }

    /// Grounds into a fact; `None` if any name or argument stays unbound.
    pub fn ground(&self, subst: &Subst) -> Result<Option<WFact>> {
        let Some(rel) = self.rel.resolve(subst)? else {
            return Ok(None);
        };
        let Some(peer) = self.peer.resolve(subst)? else {
            return Ok(None);
        };
        let mut values = Vec::with_capacity(self.args.len());
        for t in &self.args {
            match t.resolve(subst) {
                Some(v) => values.push(v),
                None => return Ok(None),
            }
        }
        Ok(Some(WFact {
            rel,
            peer,
            tuple: values.into(),
        }))
    }

    /// Data variables of the atom (not name variables), appended to `out`.
    pub fn data_variables(&self, out: &mut Vec<Symbol>) {
        for t in &self.args {
            if let Term::Var(v) = t {
                out.push(*v);
            }
        }
    }

    /// All variables including name-position ones, appended to `out`.
    pub fn all_variables(&self, out: &mut Vec<Symbol>) {
        if let NameTerm::Var(v) = self.rel {
            out.push(v);
        }
        if let NameTerm::Var(v) = self.peer {
            out.push(v);
        }
        self.data_variables(out);
    }
}

impl fmt::Debug for WAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for WAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}(", self.rel, self.peer)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A possibly negated WebdamLog atom.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WLiteral {
    /// The atom.
    pub atom: WAtom,
    /// True for `not m@p(...)`.
    pub negated: bool,
}

impl WLiteral {
    /// Positive literal.
    pub fn pos(atom: WAtom) -> WLiteral {
        WLiteral {
            atom,
            negated: false,
        }
    }

    /// Negated literal.
    pub fn neg(atom: WAtom) -> WLiteral {
        WLiteral {
            atom,
            negated: true,
        }
    }
}

impl fmt::Debug for WLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for WLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "not ")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A body item of a WebdamLog rule: a literal, comparison or assignment.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WBodyItem {
    /// A (possibly negated) peer-qualified atom.
    Literal(WLiteral),
    /// A comparison over bound terms.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// Binds a fresh variable: `$x := expr`.
    Assign {
        /// Variable bound.
        var: Symbol,
        /// Right-hand side.
        expr: Expr,
    },
}

impl WBodyItem {
    /// Convenience for a positive atom.
    pub fn atom(atom: WAtom) -> WBodyItem {
        WBodyItem::Literal(WLiteral::pos(atom))
    }

    /// Convenience for a negated atom.
    pub fn not_atom(atom: WAtom) -> WBodyItem {
        WBodyItem::Literal(WLiteral::neg(atom))
    }

    /// Convenience for a comparison.
    pub fn cmp(op: CmpOp, lhs: Term, rhs: Term) -> WBodyItem {
        WBodyItem::Cmp { op, lhs, rhs }
    }

    /// Convenience for an assignment.
    pub fn assign(var: impl Into<Symbol>, expr: Expr) -> WBodyItem {
        WBodyItem::Assign {
            var: var.into(),
            expr,
        }
    }

    /// Applies a substitution.
    pub fn apply(&self, subst: &Subst) -> Result<WBodyItem> {
        Ok(match self {
            WBodyItem::Literal(l) => WBodyItem::Literal(WLiteral {
                atom: l.atom.apply(subst)?,
                negated: l.negated,
            }),
            WBodyItem::Cmp { op, lhs, rhs } => WBodyItem::Cmp {
                op: *op,
                lhs: lhs.apply(subst),
                rhs: rhs.apply(subst),
            },
            WBodyItem::Assign { var, expr } => WBodyItem::Assign {
                var: *var,
                expr: apply_expr(expr, subst),
            },
        })
    }

    /// Variables that this item can *bind* when evaluated (data variables of
    /// positive atoms, assignment targets), appended to `out`.
    pub fn binds(&self, out: &mut Vec<Symbol>) {
        match self {
            WBodyItem::Literal(l) if !l.negated => l.atom.data_variables(out),
            WBodyItem::Assign { var, .. } => out.push(*var),
            _ => {}
        }
    }

    /// Variables this item *reads* (name variables, negated-atom variables,
    /// comparison/assignment inputs), appended to `out`.
    pub fn reads(&self, out: &mut Vec<Symbol>) {
        match self {
            WBodyItem::Literal(l) => {
                if let NameTerm::Var(v) = l.atom.rel {
                    out.push(v);
                }
                if let NameTerm::Var(v) = l.atom.peer {
                    out.push(v);
                }
                if l.negated {
                    l.atom.data_variables(out);
                }
            }
            WBodyItem::Cmp { lhs, rhs, .. } => {
                for t in [lhs, rhs] {
                    if let Term::Var(v) = t {
                        out.push(*v);
                    }
                }
            }
            WBodyItem::Assign { expr, .. } => expr.variables(out),
        }
    }
}

fn apply_expr(expr: &Expr, subst: &Subst) -> Expr {
    match expr {
        Expr::Term(t) => Expr::Term(t.apply(subst)),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(apply_expr(l, subst)),
            Box::new(apply_expr(r, subst)),
        ),
    }
}

impl From<WAtom> for WBodyItem {
    fn from(atom: WAtom) -> Self {
        WBodyItem::atom(atom)
    }
}

impl fmt::Debug for WBodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for WBodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WBodyItem::Literal(l) => write!(f, "{l}"),
            WBodyItem::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            WBodyItem::Assign { var, expr } => write!(f, "${var} := {expr}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn name_term_resolution() {
        let mut s = Subst::new();
        s.bind(sym("att"), Value::from("Emilien"));
        assert_eq!(
            NameTerm::var("att").resolve(&s).unwrap(),
            Some(sym("Emilien"))
        );
        assert_eq!(
            NameTerm::name("Jules").resolve(&s).unwrap(),
            Some(sym("Jules"))
        );
        assert_eq!(NameTerm::var("unbound-nm").resolve(&s).unwrap(), None);
    }

    #[test]
    fn name_term_rejects_non_string_binding() {
        let mut s = Subst::new();
        s.bind(sym("n"), Value::from(7));
        assert!(matches!(
            NameTerm::var("n").resolve(&s),
            Err(WdlError::BadNameBinding(_))
        ));
    }

    #[test]
    fn atom_display_matches_paper() {
        let a = WAtom::new(
            NameTerm::name("pictures"),
            NameTerm::var("attendee"),
            vec![Term::var("id"), Term::var("name")],
        );
        assert_eq!(a.to_string(), "pictures@$attendee($id, $name)");
    }

    #[test]
    fn ground_requires_all_positions() {
        let a = WAtom::new(
            NameTerm::name("r"),
            NameTerm::var("p"),
            vec![Term::var("x")],
        );
        let mut s = Subst::new();
        assert_eq!(a.ground(&s).unwrap(), None);
        s.bind(sym("p"), Value::from("peerA"));
        assert_eq!(a.ground(&s).unwrap(), None);
        s.bind(sym("x"), Value::from(1));
        let f = a.ground(&s).unwrap().unwrap();
        assert_eq!(f.to_string(), "r@peerA(1)");
    }

    #[test]
    fn apply_instantiates_names() {
        let a = WAtom::new(NameTerm::var("r"), NameTerm::var("p"), vec![]);
        let s: Subst = [
            (sym("r"), Value::from("email")),
            (sym("p"), Value::from("Emilien")),
        ]
        .into_iter()
        .collect();
        let applied = a.apply(&s).unwrap();
        assert_eq!(applied.rel, NameTerm::name("email"));
        assert_eq!(applied.peer, NameTerm::name("Emilien"));
    }

    #[test]
    fn binds_and_reads_classification() {
        let item = WBodyItem::atom(WAtom::new(
            NameTerm::name("r"),
            NameTerm::var("p"),
            vec![Term::var("x")],
        ));
        let mut binds = Vec::new();
        let mut reads = Vec::new();
        item.binds(&mut binds);
        item.reads(&mut reads);
        assert_eq!(binds, vec![sym("x")]);
        assert_eq!(reads, vec![sym("p")]);

        let neg = WBodyItem::not_atom(WAtom::at("r", "q", vec![Term::var("y")]));
        binds.clear();
        reads.clear();
        neg.binds(&mut binds);
        neg.reads(&mut reads);
        assert!(binds.is_empty());
        assert_eq!(reads, vec![sym("y")]);
    }
}
