//! The analyzer's check battery: each function walks the peer models
//! and/or the dependency graph and emits [`Diagnostic`]s.

use crate::graph::{DepGraph, EdgeKind, Node};
use crate::{PeerModel, RuleInfo};
use std::collections::{HashMap, HashSet};
use wdl_core::{DiagCode, Diagnostic, NameTerm, RelationKind, WBodyItem};
use wdl_datalog::{negative_cycle, Symbol};

/// WDL001/WDL002/WDL003: range restriction under left-to-right
/// evaluation, split by *why* a variable is unbound — the head
/// (WDL001), a negated/compared/assigned read (WDL002), or a name
/// position whose delegation target would be undefined (WDL003).
///
/// Delegated rules are skipped: their origin vetted them before
/// sending, and re-blaming the hosting peer would point at the wrong
/// program.
pub fn safety(models: &[PeerModel]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for model in models {
        for info in model.rules.iter().filter(|i| i.delegated_from.is_none()) {
            safety_rule(model.name, info, &mut out);
        }
    }
    out
}

fn safety_rule(owner: Symbol, info: &RuleInfo, out: &mut Vec<Diagnostic>) {
    let rule = &info.rule;
    let mut bound: Vec<Symbol> = Vec::new();
    let mut reported: HashSet<Symbol> = HashSet::new();
    for (i, item) in rule.body.iter().enumerate() {
        match item {
            WBodyItem::Literal(lit) => {
                for (what, nt) in [("relation", &lit.atom.rel), ("peer", &lit.atom.peer)] {
                    if let NameTerm::Var(v) = nt {
                        if !bound.contains(v) && reported.insert(*v) {
                            out.push(
                                Diagnostic::new(
                                    DiagCode::UnboundNameVar,
                                    format!(
                                        "variable ${v} in the {what} position of `{}` (body \
                                         position {i}) is not bound by earlier items",
                                        lit.atom
                                    ),
                                )
                                .with_span(info.span)
                                .note(format!(
                                    "rule at {owner}: the target of a remote atom must be \
                                     concrete when left-to-right evaluation reaches it, or the \
                                     delegation target is undefined"
                                )),
                            );
                        }
                    }
                }
                if lit.negated {
                    let mut vars = Vec::new();
                    lit.atom.data_variables(&mut vars);
                    for v in vars {
                        if !bound.contains(&v) && reported.insert(v) {
                            out.push(
                                Diagnostic::new(
                                    DiagCode::UnboundNegatedVar,
                                    format!(
                                        "variable ${v} of negated atom `{}` (body position {i}) \
                                         is not bound positively to its left",
                                        lit.atom
                                    ),
                                )
                                .with_span(info.span)
                                .note(format!("rule at {owner}")),
                            );
                        }
                    }
                }
            }
            WBodyItem::Cmp { .. } => {
                let mut vars = Vec::new();
                item.reads(&mut vars);
                for v in vars {
                    if !bound.contains(&v) && reported.insert(v) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnboundNegatedVar,
                                format!(
                                    "variable ${v} read by comparison `{item}` (body position \
                                     {i}) is not bound by earlier items"
                                ),
                            )
                            .with_span(info.span)
                            .note(format!("rule at {owner}")),
                        );
                    }
                }
            }
            WBodyItem::Assign { var, .. } => {
                let mut vars = Vec::new();
                item.reads(&mut vars);
                for v in vars {
                    if !bound.contains(&v) && reported.insert(v) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnboundNegatedVar,
                                format!(
                                    "variable ${v} read by assignment `{item}` (body position \
                                     {i}) is not bound by earlier items"
                                ),
                            )
                            .with_span(info.span)
                            .note(format!("rule at {owner}")),
                        );
                    }
                }
                if bound.contains(var) && reported.insert(*var) {
                    out.push(
                        Diagnostic::new(
                            DiagCode::UnboundNegatedVar,
                            format!(
                                "assignment `{item}` (body position {i}) rebinds already-bound \
                                 variable ${var}"
                            ),
                        )
                        .with_span(info.span)
                        .note(format!("rule at {owner}")),
                    );
                }
            }
        }
        item.binds(&mut bound);
    }
    let mut head_vars = Vec::new();
    rule.head.all_variables(&mut head_vars);
    for v in head_vars {
        if !bound.contains(&v) && reported.insert(v) {
            out.push(
                Diagnostic::new(
                    DiagCode::UnboundHeadVar,
                    format!(
                        "head variable ${v} of `{}` is not bound by the body",
                        rule.head
                    ),
                )
                .with_span(info.span)
                .note(format!("rule at {owner}")),
            );
        }
    }
}

/// WDL004: negation through a recursive cycle on the *quotiented*
/// cross-peer dependency graph — symbolic nodes collapse into every
/// concrete node they may denote, so cycles that only close through a
/// variable peer (invisible to each peer's local `stratify`) are
/// caught conservatively.
pub fn stratification(graph: &DepGraph) -> Vec<Diagnostic> {
    if !graph.edges.iter().any(|e| e.negative) {
        return Vec::new();
    }
    let (classes, n) = graph.quotient();
    let signed: Vec<(usize, usize, bool)> = graph
        .edges
        .iter()
        .map(|e| (classes[e.src], classes[e.dst], e.negative))
        .collect();
    let Some(cycle) = negative_cycle(n, &signed) else {
        return Vec::new();
    };
    // Name each class by a representative node, preferring concrete ones.
    let mut repr: HashMap<usize, Node> = HashMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let entry = repr.entry(classes[i]).or_insert(*node);
        if matches!(
            entry,
            Node::AnyPeer { .. } | Node::AnyRel { .. } | Node::Any
        ) && matches!(node, Node::Rel { .. })
        {
            *entry = *node;
        }
    }
    let rendered = cycle.render(|c| repr[&c].to_string());
    let cycle_set: HashSet<usize> = cycle.nodes.iter().copied().collect();
    let in_cycle = |e: &&crate::graph::Edge| {
        cycle_set.contains(&classes[e.src]) && cycle_set.contains(&classes[e.dst])
    };
    let span = graph
        .edges
        .iter()
        .filter(|e| e.negative)
        .find(in_cycle)
        .and_then(|e| e.span);
    let crosses = graph
        .edges
        .iter()
        .filter(in_cycle)
        .any(|e| e.kind != EdgeKind::Local);
    let mut d = Diagnostic::new(
        DiagCode::UnstratifiableNegation,
        format!("negation through recursive cycle {rendered}"),
    )
    .with_span(span);
    if crosses {
        d = d.note(
            "the cycle crosses peer boundaries; per-peer stratification cannot detect it \
             and evaluation may never quiesce",
        );
    }
    vec![d]
}

/// WDL005 plus the bounded-depth witness: rule-installation cycles
/// between peers. An install edge `p -> q` means a rule evaluated at
/// `p` delegates its remainder to `q`; a cycle fed by two or more
/// distinct rules can keep growing the installed rule set (a single
/// rule's own chain always shrinks its remainder, so it is bounded).
/// When the install graph is acyclic, the longest chain is returned as
/// the conservative delegation-depth witness.
pub fn delegation(graph: &DepGraph) -> (Vec<Diagnostic>, Option<usize>) {
    let mut peers: Vec<Symbol> = Vec::new();
    let mut index: HashMap<Symbol, usize> = HashMap::new();
    let idx = |s: Symbol, peers: &mut Vec<Symbol>, index: &mut HashMap<Symbol, usize>| {
        *index.entry(s).or_insert_with(|| {
            peers.push(s);
            peers.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for e in &graph.installs {
        let f = idx(e.from, &mut peers, &mut index);
        let t = idx(e.to, &mut peers, &mut index);
        edges.push((f, t));
    }
    let n = peers.len();
    if n == 0 {
        return (Vec::new(), Some(0));
    }

    // SCCs over the peer-level install graph (reuse the signed-cycle
    // helper shape: an all-positive graph has a cycle iff some SCC has
    // an internal edge).
    let comp = components(n, &edges);
    let mut diags = Vec::new();
    let mut cyclic = false;
    let mut seen_comp: HashSet<usize> = HashSet::new();
    for (ei, &(f, t)) in edges.iter().enumerate() {
        if comp[f] != comp[t] || !seen_comp.insert(comp[f]) {
            continue;
        }
        cyclic = true;
        let members: Vec<String> = (0..n)
            .filter(|&i| comp[i] == comp[f])
            .map(|i| peers[i].to_string())
            .collect();
        // Distinct rules feeding the cycle: the growth argument needs
        // at least two (one rule's remainder chain is bounded).
        let rules: HashSet<_> = graph
            .installs
            .iter()
            .enumerate()
            .filter(|&(j, _)| comp[edges[j].0] == comp[f] && comp[edges[j].1] == comp[f])
            .map(|(_, e)| e.rule)
            .collect();
        if rules.len() < 2 {
            continue;
        }
        let span = graph.installs[ei].span;
        diags.push(
            Diagnostic::new(
                DiagCode::UnboundedDelegation,
                format!(
                    "rule installation may cycle between peers {{{}}}: delegation can keep \
                     re-installing rules around the cycle",
                    members.join(", ")
                ),
            )
            .with_span(span)
            .note(format!(
                "{} distinct rules contribute installs inside the cycle; no bounded \
                 delegation-depth witness exists",
                rules.len()
            )),
        );
    }
    if cyclic {
        return (diags, None);
    }

    // Acyclic: longest chain of installs (edge count) via memoized DFS.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(f, t) in &edges {
        adj[f].push(t);
    }
    let mut memo = vec![usize::MAX; n];
    fn depth(u: usize, adj: &[Vec<usize>], memo: &mut [usize]) -> usize {
        if memo[u] != usize::MAX {
            return memo[u];
        }
        let d = adj[u]
            .iter()
            .map(|&v| 1 + depth(v, adj, memo))
            .max()
            .unwrap_or(0);
        memo[u] = d;
        d
    }
    let witness = (0..n).map(|u| depth(u, &adj, &mut memo)).max().unwrap_or(0);
    (diags, Some(witness))
}

/// Plain (unsigned) SCC labelling over `0..n`.
fn components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let signed: Vec<(usize, usize, bool)> = edges.iter().map(|&(f, t)| (f, t, false)).collect();
    // negative_cycle's SCC pass is not exported; redo Kosaraju here.
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(s, d, _) in &signed {
        fwd[s].push(d);
        rev[d].push(s);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < fwd[u].len() {
                let v = fwd[u][*i];
                *i += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next;
        while let Some(u) = stack.pop() {
            for &v in &rev[u] {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// WDL006/WDL007: arity conformance against every modelled peer's
/// schema, and writes into a foreign peer's extensional relation
/// without a matching write grant.
pub fn schema_conformance(models: &[PeerModel]) -> Vec<Diagnostic> {
    let by_name: HashMap<Symbol, &PeerModel> = models.iter().map(|m| (m.name, m)).collect();
    let mut out = Vec::new();
    for model in models {
        for info in &model.rules {
            let rule = &info.rule;
            let writer = info.delegated_from.unwrap_or(model.name);
            let atoms =
                std::iter::once((&rule.head, true)).chain(rule.body.iter().filter_map(|item| {
                    match item {
                        WBodyItem::Literal(l) => Some((&l.atom, false)),
                        _ => None,
                    }
                }));
            for (atom, is_head) in atoms {
                let (Some(rel), Some(peer)) = (atom.rel.as_name(), atom.peer.as_name()) else {
                    continue;
                };
                let Some(target) = by_name.get(&peer) else {
                    continue;
                };
                if let Some(decl) = target.schema.get(rel) {
                    if decl.arity != atom.args.len() {
                        out.push(
                            Diagnostic::new(
                                DiagCode::ArityMismatch,
                                format!(
                                    "`{atom}` has arity {}, but {rel}@{peer} is declared with \
                                     arity {}",
                                    atom.args.len(),
                                    decl.arity
                                ),
                            )
                            .with_span(info.span)
                            .note(format!("rule at {}", model.name)),
                        );
                    }
                    if is_head
                        && peer != writer
                        && decl.kind == RelationKind::Extensional
                        && !target.grants.can_write(rel, writer)
                    {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UngrantedWrite,
                                format!(
                                    "rule at {writer} writes extensional relation {rel}@{peer}, \
                                     but {peer} has not granted {writer} write access"
                                ),
                            )
                            .with_span(info.span)
                            .note(format!(
                                "the update would be dropped at {peer}'s write gate; grant with \
                                 `grants_mut().grant_write(\"{rel}\", \"{writer}\")`"
                            )),
                        );
                    }
                }
            }
        }
    }
    out
}

/// WDL008/WDL009: dead rules (a positive body atom over an intensional
/// relation nothing derives) and orphan intensional declarations
/// (neither derived nor read). Symbolic heads suppress conservatively:
/// a `$r@peer` head may derive *any* relation at `peer`, a `$r@$p` head
/// any relation anywhere.
pub fn reachability(models: &[PeerModel]) -> Vec<Diagnostic> {
    let by_name: HashMap<Symbol, &PeerModel> = models.iter().map(|m| (m.name, m)).collect();
    let mut derived: HashSet<(Symbol, Symbol)> = HashSet::new();
    let mut derived_rel_anywhere: HashSet<Symbol> = HashSet::new();
    let mut wildcard_writers: HashSet<Symbol> = HashSet::new();
    let mut global_wildcard = false;
    let mut read: HashSet<(Symbol, Symbol)> = HashSet::new();
    let mut read_rel_anywhere: HashSet<Symbol> = HashSet::new();
    let mut read_all_at: HashSet<Symbol> = HashSet::new();
    let mut read_everything = false;
    for model in models {
        for info in &model.rules {
            match (info.rule.head.rel.as_name(), info.rule.head.peer.as_name()) {
                (Some(rel), Some(peer)) => {
                    derived.insert((peer, rel));
                }
                (Some(rel), None) => {
                    derived_rel_anywhere.insert(rel);
                }
                (None, Some(peer)) => {
                    wildcard_writers.insert(peer);
                }
                (None, None) => global_wildcard = true,
            }
            for item in &info.rule.body {
                let WBodyItem::Literal(l) = item else {
                    continue;
                };
                match (l.atom.rel.as_name(), l.atom.peer.as_name()) {
                    (Some(rel), Some(peer)) => {
                        read.insert((peer, rel));
                    }
                    (Some(rel), None) => {
                        read_rel_anywhere.insert(rel);
                    }
                    (None, Some(peer)) => {
                        read_all_at.insert(peer);
                    }
                    (None, None) => read_everything = true,
                }
            }
        }
    }
    let derives = |peer: Symbol, rel: Symbol| {
        global_wildcard
            || wildcard_writers.contains(&peer)
            || derived_rel_anywhere.contains(&rel)
            || derived.contains(&(peer, rel))
    };
    let reads = |peer: Symbol, rel: Symbol| {
        read_everything
            || read_all_at.contains(&peer)
            || read_rel_anywhere.contains(&rel)
            || read.contains(&(peer, rel))
    };

    let mut out = Vec::new();
    for model in models {
        for info in model.rules.iter().filter(|i| i.delegated_from.is_none()) {
            for item in &info.rule.body {
                let WBodyItem::Literal(l) = item else {
                    continue;
                };
                if l.negated {
                    continue;
                }
                let (Some(rel), Some(peer)) = (l.atom.rel.as_name(), l.atom.peer.as_name()) else {
                    continue;
                };
                let Some(target) = by_name.get(&peer) else {
                    continue;
                };
                if target.schema.kind_of(rel) == Some(RelationKind::Intensional)
                    && !derives(peer, rel)
                {
                    out.push(
                        Diagnostic::new(
                            DiagCode::DeadRule,
                            format!(
                                "rule reads intensional relation {rel}@{peer}, which no rule \
                                 derives — the body can never be satisfied"
                            ),
                        )
                        .with_span(info.span)
                        .note(format!("rule at {}", model.name)),
                    );
                }
            }
        }
        let mut decls: Vec<_> = model
            .schema
            .iter()
            .filter(|d| d.kind == RelationKind::Intensional)
            .collect();
        decls.sort_by_key(|d| d.rel.as_str());
        for decl in decls {
            if !derives(model.name, decl.rel) && !reads(model.name, decl.rel) {
                out.push(Diagnostic::new(
                    DiagCode::UnreachableRelation,
                    format!(
                        "intensional relation {}@{} is declared but neither derived nor read \
                         by any rule",
                        decl.rel, model.name
                    ),
                ));
            }
        }
    }
    out
}
