//! The cross-peer predicate dependency graph.
//!
//! Nodes are `(peer, relation)` pairs, with *symbolic* nodes standing
//! in for variable peer or relation positions — `pictures@$attendee`
//! depends on `pictures` at *some* peer, so it gets an [`Node::AnyPeer`]
//! node that conservatively overlaps every concrete `pictures@p`.
//! Edges run body-atom → head-atom, carry polarity (negative under
//! `not`) and a kind: [`EdgeKind::Local`] when the atom is evaluated at
//! the site already running the rule, [`EdgeKind::Delegation`] when
//! reaching the atom moves evaluation to another peer (the remainder of
//! the rule is installed there), and [`EdgeKind::Provenance`] when the
//! atom is local but the derived head is delivered to a different peer.

use crate::{PeerModel, RuleRef};
use std::collections::HashMap;
use wdl_core::{Span, WAtom, WBodyItem};
use wdl_datalog::Symbol;

/// A node of the dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// A concrete `(relation, peer)` pair.
    Rel {
        /// Hosting peer.
        peer: Symbol,
        /// Relation name.
        rel: Symbol,
    },
    /// Relation `rel` at a variable peer (`rel@$p`).
    AnyPeer {
        /// Relation name.
        rel: Symbol,
    },
    /// A variable relation at a concrete peer (`$r@peer`).
    AnyRel {
        /// Hosting peer.
        peer: Symbol,
    },
    /// Both positions variable (`$r@$p`).
    Any,
}

impl Node {
    /// Classifies an atom's name terms.
    pub fn of(atom: &WAtom) -> Node {
        match (atom.rel.as_name(), atom.peer.as_name()) {
            (Some(rel), Some(peer)) => Node::Rel { peer, rel },
            (Some(rel), None) => Node::AnyPeer { rel },
            (None, Some(peer)) => Node::AnyRel { peer },
            (None, None) => Node::Any,
        }
    }

    /// True when the two nodes may denote overlapping `(peer, relation)`
    /// sets — the conservative unification the distributed
    /// stratification check quotients by.
    pub fn overlaps(&self, other: &Node) -> bool {
        match (*self, *other) {
            (Node::Any, _) | (_, Node::Any) => true,
            (Node::Rel { peer: p1, rel: r1 }, Node::Rel { peer: p2, rel: r2 }) => {
                p1 == p2 && r1 == r2
            }
            (Node::Rel { rel, .. }, Node::AnyPeer { rel: r2 })
            | (Node::AnyPeer { rel }, Node::Rel { rel: r2, .. })
            | (Node::AnyPeer { rel }, Node::AnyPeer { rel: r2 }) => rel == r2,
            (Node::Rel { peer, .. }, Node::AnyRel { peer: p2 })
            | (Node::AnyRel { peer }, Node::Rel { peer: p2, .. })
            | (Node::AnyRel { peer }, Node::AnyRel { peer: p2 }) => peer == p2,
            // `rel@$p` and `$r@q` can both denote `rel@q`.
            (Node::AnyPeer { .. }, Node::AnyRel { .. })
            | (Node::AnyRel { .. }, Node::AnyPeer { .. }) => true,
        }
    }
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Rel { peer, rel } => write!(f, "{rel}@{peer}"),
            Node::AnyPeer { rel } => write!(f, "{rel}@$?"),
            Node::AnyRel { peer } => write!(f, "$?@{peer}"),
            Node::Any => write!(f, "$?@$?"),
        }
    }
}

/// How a body atom's data reaches the rule's head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Evaluated at the site already running the rule; head delivered
    /// locally too.
    Local,
    /// Reaching this atom installs the rule's remainder at the atom's
    /// peer (WebdamLog delegation).
    Delegation,
    /// The atom is local to the final evaluation site but the head is
    /// delivered to another peer — a cross-peer provenance edge.
    Provenance,
}

/// One dependency edge, body atom → head.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Source node index (the body atom).
    pub src: usize,
    /// Destination node index (the head).
    pub dst: usize,
    /// True when the body atom occurs under `not`.
    pub negative: bool,
    /// How the dependency crosses (or does not cross) peers.
    pub kind: EdgeKind,
    /// The rule that contributed the edge.
    pub rule: RuleRef,
    /// Source span of that rule, when known.
    pub span: Option<Span>,
}

/// A concrete site transition: evaluating `rule` at `from` installs its
/// remainder at `to`. The delegation-boundedness check runs over these.
#[derive(Clone, Copy, Debug)]
pub struct InstallEdge {
    /// The delegating site.
    pub from: Symbol,
    /// The site receiving the remainder.
    pub to: Symbol,
    /// The rule that delegates.
    pub rule: RuleRef,
    /// Its span, when known.
    pub span: Option<Span>,
}

/// The cross-peer predicate dependency graph over a set of peer models.
#[derive(Debug, Default)]
pub struct DepGraph {
    /// Interned nodes; indices are stable identifiers.
    pub nodes: Vec<Node>,
    /// Dependency edges (body → head).
    pub edges: Vec<Edge>,
    /// Concrete rule-installation transitions between peers.
    pub installs: Vec<InstallEdge>,
    index: HashMap<Node, usize>,
}

impl DepGraph {
    /// Builds the graph for `peers`.
    pub fn build(peers: &[PeerModel]) -> DepGraph {
        let mut g = DepGraph::default();
        for (pi, model) in peers.iter().enumerate() {
            for (ri, info) in model.rules.iter().enumerate() {
                g.add_rule(model.name, RuleRef { peer: pi, rule: ri }, info);
            }
        }
        g
    }

    fn intern(&mut self, node: Node) -> usize {
        if let Some(&i) = self.index.get(&node) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(node);
        self.index.insert(node, i);
        i
    }

    fn add_rule(&mut self, owner: Symbol, rref: RuleRef, info: &crate::RuleInfo) {
        let rule = &info.rule;
        let span = info.span;
        let head = Node::of(&rule.head);
        let head_idx = self.intern(head);

        // Walk the body left to right tracking the evaluation site: it
        // starts at the owner and moves to an atom's peer whenever the
        // atom is not local to the current site (WebdamLog installs the
        // remainder there). A variable peer moves the site to "unknown".
        let mut site: Option<Symbol> = Some(owner);
        let mut crossings: Vec<bool> = Vec::new();
        for item in &rule.body {
            let WBodyItem::Literal(lit) = item else {
                crossings.push(false);
                continue;
            };
            let atom_peer = lit.atom.peer.as_name();
            let crossed = match (site, atom_peer) {
                (Some(s), Some(p)) => p != s,
                (Some(_), None) => true,
                // Already at an unknown site: conservatively treat every
                // further atom as reachable without a new delegation.
                (None, _) => false,
            };
            if crossed {
                // A delegated rule is a remainder the origin rule's own walk
                // already accounts for; re-emitting its installs would make a
                // single bounded chain look like a multi-rule cycle.
                if info.delegated_from.is_none() {
                    if let (Some(from), Some(to)) = (site, atom_peer) {
                        self.installs.push(InstallEdge {
                            from,
                            to,
                            rule: rref,
                            span,
                        });
                    }
                }
                site = atom_peer;
            }
            crossings.push(crossed);
        }
        let head_crosses = match (rule.head.peer.as_name(), site) {
            (Some(hp), Some(s)) => hp != s,
            _ => true,
        };

        for (item, &crossed) in rule.body.iter().zip(&crossings) {
            let WBodyItem::Literal(lit) = item else {
                continue;
            };
            let src = self.intern(Node::of(&lit.atom));
            let kind = if crossed {
                EdgeKind::Delegation
            } else if head_crosses {
                EdgeKind::Provenance
            } else {
                EdgeKind::Local
            };
            self.edges.push(Edge {
                src,
                dst: head_idx,
                negative: lit.negated,
                kind,
                rule: rref,
                span,
            });
        }
    }

    /// Quotients the node set by conservative overlap (symbolic nodes
    /// unify with every concrete node they may denote), returning one
    /// class id per node and the class count. The distributed
    /// stratification check runs cycle detection on the quotient.
    pub fn quotient(&self) -> (Vec<usize>, usize) {
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.nodes[i].overlaps(&self.nodes[j]) {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        let mut class_of = vec![0usize; n];
        let mut next = 0;
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for (i, class) in class_of.iter_mut().enumerate() {
            let root = find(&mut parent, i);
            let id = *seen.entry(root).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *class = id;
        }
        (class_of, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeerModel, RuleInfo};
    use wdl_core::{NameTerm, WRule};
    use wdl_datalog::Term;

    fn model(name: &str, rules: Vec<WRule>) -> PeerModel {
        let mut m = PeerModel::new(name);
        for r in rules {
            m.rules.push(RuleInfo {
                rule: r,
                span: None,
                delegated_from: None,
            });
        }
        m
    }

    #[test]
    fn local_rule_edges_are_local() {
        let r = WRule::new(
            WAtom::at("v", "p", vec![Term::var("x")]),
            vec![WAtom::at("w", "p", vec![Term::var("x")]).into()],
        );
        let g = DepGraph::build(&[model("p", vec![r])]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].kind, EdgeKind::Local);
        assert!(g.installs.is_empty());
    }

    #[test]
    fn remote_atom_is_a_delegation_edge_and_install() {
        // v@p :- w@p, u@q — reaching u@q installs the remainder at q.
        let r = WRule::new(
            WAtom::at("v", "p", vec![Term::var("x")]),
            vec![
                WAtom::at("w", "p", vec![Term::var("x")]).into(),
                WAtom::at("u", "q", vec![Term::var("x")]).into(),
            ],
        );
        let g = DepGraph::build(&[model("p", vec![r])]);
        let kinds: Vec<EdgeKind> = g.edges.iter().map(|e| e.kind).collect();
        // w@p is local to the starting site, but the head is delivered
        // from the final site q back to p: provenance.
        assert_eq!(kinds, vec![EdgeKind::Provenance, EdgeKind::Delegation]);
        assert_eq!(g.installs.len(), 1);
        assert_eq!(g.installs[0].from.as_str(), "p");
        assert_eq!(g.installs[0].to.as_str(), "q");
    }

    #[test]
    fn symbolic_nodes_overlap_concrete() {
        let a = Node::AnyPeer {
            rel: Symbol::intern("pictures"),
        };
        let b = Node::Rel {
            peer: Symbol::intern("emilien"),
            rel: Symbol::intern("pictures"),
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&Node::Rel {
            peer: Symbol::intern("emilien"),
            rel: Symbol::intern("rate"),
        }));
        assert!(Node::Any.overlaps(&b));
    }

    #[test]
    fn quotient_merges_symbolic_with_concrete() {
        // pictures@$a (in a rule body) and pictures@emilien collapse.
        let r1 = WRule::new(
            WAtom::at("all", "p", vec![Term::var("x"), Term::var("a")]),
            vec![
                WAtom::at("sel", "p", vec![Term::var("a")]).into(),
                WAtom::new(
                    NameTerm::name("pictures"),
                    NameTerm::var("a"),
                    vec![Term::var("x")],
                )
                .into(),
            ],
        );
        let r2 = WRule::new(
            WAtom::at("pictures", "emilien", vec![Term::var("x")]),
            vec![WAtom::at("cam", "emilien", vec![Term::var("x")]).into()],
        );
        let g = DepGraph::build(&[model("p", vec![r1]), model("emilien", vec![r2])]);
        let (classes, _) = g.quotient();
        let any_peer = g
            .nodes
            .iter()
            .position(|n| matches!(n, Node::AnyPeer { .. }))
            .unwrap();
        let concrete = g
            .nodes
            .iter()
            .position(|n| {
                matches!(n, Node::Rel { peer, rel } if peer.as_str() == "emilien" && rel.as_str() == "pictures")
            })
            .unwrap();
        assert_eq!(classes[any_peer], classes[concrete]);
    }
}
