//! `wdl-check` — offline static analysis for `.wdl` programs.
//!
//! ```text
//! wdl-check [--json] <file.wdl>...
//! ```
//!
//! Exit status: 0 when no program has error-severity diagnostics
//! (warnings are allowed), 1 when at least one error was reported,
//! 2 on parse or I/O failure.

use std::process::ExitCode;
use wdl_analyze::{model_from_program, Analyzer};
use wdl_core::Diagnostic;
use wdl_parser::parse_program_spanned;

fn main() -> ExitCode {
    let mut json = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: wdl-check [--json] <file.wdl>...");
                return ExitCode::SUCCESS;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: wdl-check [--json] <file.wdl>...");
        return ExitCode::from(2);
    }

    let mut results = Vec::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        let statements = match parse_program_spanned(&src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}:{}:{}: parse error: {}", e.line, e.col, e.message);
                return ExitCode::from(2);
            }
        };
        let (models, mut diagnostics) = model_from_program(&statements);
        let report = Analyzer::new(models).analyze();
        diagnostics.extend(report.diagnostics);
        errors += diagnostics.iter().filter(|d| d.is_error()).count();
        warnings += diagnostics.iter().filter(|d| !d.is_error()).count();
        results.push((file.clone(), diagnostics, report.delegation_depth));
    }

    if json {
        print_json(&results);
    } else {
        print_human(&results);
        eprintln!(
            "{} file{} checked: {errors} error{}, {warnings} warning{}",
            results.len(),
            if results.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_human(results: &[(String, Vec<Diagnostic>, Option<usize>)]) {
    for (file, diagnostics, depth) in results {
        for d in diagnostics {
            match d.rule_span {
                Some(s) => println!(
                    "{file}:{}:{}: {}[{}]: {}",
                    s.line,
                    s.col,
                    d.severity.as_str(),
                    d.code.as_str(),
                    d.message
                ),
                None => println!(
                    "{file}: {}[{}]: {}",
                    d.severity.as_str(),
                    d.code.as_str(),
                    d.message
                ),
            }
            for note in &d.notes {
                println!("  note: {note}");
            }
        }
        match depth {
            Some(depth) => eprintln!("{file}: delegation depth bounded by {depth}"),
            None => eprintln!("{file}: delegation depth unbounded (installation may cycle)"),
        }
    }
}

fn print_json(results: &[(String, Vec<Diagnostic>, Option<usize>)]) {
    let mut out = String::from("[");
    let mut first = true;
    for (file, diagnostics, depth) in results {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  {\"file\": ");
        json_string(&mut out, file);
        out.push_str(", \"delegation_depth\": ");
        match depth {
            Some(d) => out.push_str(&d.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(", \"diagnostics\": [");
        let mut first_d = true;
        for d in diagnostics {
            if !first_d {
                out.push(',');
            }
            first_d = false;
            out.push_str("\n    {\"code\": \"");
            out.push_str(d.code.as_str());
            out.push_str("\", \"severity\": \"");
            out.push_str(d.severity.as_str());
            out.push_str("\", ");
            if let Some(s) = d.rule_span {
                out.push_str(&format!("\"line\": {}, \"col\": {}, ", s.line, s.col));
            }
            out.push_str("\"message\": ");
            json_string(&mut out, &d.message);
            out.push_str(", \"notes\": [");
            for (i, note) in d.notes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json_string(&mut out, note);
            }
            out.push_str("]}");
        }
        if !first_d {
            out.push_str("\n  ");
        }
        out.push_str("]}");
    }
    out.push_str("\n]");
    println!("{out}");
}

/// Minimal JSON string encoder (the workspace deliberately has no
/// serde_json; see Cargo.toml's shim note).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
