//! # wdl-analyze — whole-program static analysis for WebdamLog
//!
//! The runtime checks each rule in isolation (`WRule::check_safety`) and
//! each peer's stratification locally (`wdl_datalog::eval`). Neither can
//! see problems that only exist *between* peers: negation through a cycle
//! that closes over a delegation, rule installation that ping-pongs
//! between two peers forever, or a rule that writes into a foreign
//! extensional relation its owner was never granted. This crate builds a
//! **cross-peer predicate dependency graph** over a set of peer models —
//! nodes are `(peer, relation)` pairs, with symbolic nodes standing in for
//! variable peer/relation positions — and runs a battery of checks over
//! it, emitting structured [`Diagnostic`]s (codes `WDL001..WDL009`).
//!
//! Three front doors:
//!
//! * [`StaticChecker`] implements [`wdl_core::ProgramCheck`], so
//!   `Peer::install` and `wdl_parser::load_program_checked` reject
//!   error-bearing programs before any fact or delegation is emitted;
//! * [`Analyzer::from_peers`] analyses a *running* system (the REPL's
//!   `check` command);
//! * [`model_from_program`] lifts a parsed `.wdl` file into peer models
//!   for offline checking (the `wdl-check` binary).
//!
//! | code   | severity | meaning                                            |
//! |--------|----------|----------------------------------------------------|
//! | WDL001 | error    | head variable not bound by the body                |
//! | WDL002 | error    | negated/compared/assigned variable unbound          |
//! | WDL003 | error    | relation/peer *name* variable unbound at use       |
//! | WDL004 | error    | negation through a (cross-peer) recursive cycle    |
//! | WDL005 | warning  | rule installation may cycle between peers          |
//! | WDL006 | error    | arity mismatch against a declared relation         |
//! | WDL007 | error    | write to a foreign extensional relation w/o grant  |
//! | WDL008 | warning  | rule body reads an intensional nothing derives     |
//! | WDL009 | warning  | intensional relation neither derived nor read      |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;
pub mod graph;

pub use graph::{DepGraph, Edge, EdgeKind, InstallEdge, Node};

use std::collections::HashMap;
use wdl_core::{
    Diagnostic, Peer, ProgramBatch, ProgramCheck, RelationGrants, RelationKind, Schema, Span, WRule,
};
use wdl_datalog::Symbol;
use wdl_parser::{SpannedStatement, Statement};

/// Index of a rule within the analyzer's model set: `peer` indexes the
/// model list, `rule` that peer's rule list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RuleRef {
    /// Index into the analyzer's peer-model list.
    pub peer: usize,
    /// Index into that peer's rule list.
    pub rule: usize,
}

/// A rule as the analyzer sees it: the rule itself, where it came from in
/// the source (if loaded from text), and — for rules installed here by
/// another peer — who delegated it.
#[derive(Clone, Debug)]
pub struct RuleInfo {
    /// The rule.
    pub rule: WRule,
    /// Source position of the rule's first token, when known.
    pub span: Option<Span>,
    /// `Some(origin)` for delegated rules hosted on this peer's behalf.
    pub delegated_from: Option<Symbol>,
}

/// The analyzer's view of one peer: its name, declared schema, grants and
/// rule set (own rules plus installed delegations).
#[derive(Clone, Debug)]
pub struct PeerModel {
    /// Peer name.
    pub name: Symbol,
    /// Declared relations.
    pub schema: Schema,
    /// Relation-level access grants.
    pub grants: RelationGrants,
    /// Rules, in installation order.
    pub rules: Vec<RuleInfo>,
}

impl PeerModel {
    /// An empty model for `name` (open grants, no declarations, no rules).
    pub fn new(name: impl Into<Symbol>) -> PeerModel {
        PeerModel {
            name: name.into(),
            schema: Schema::new(),
            grants: RelationGrants::new(),
            rules: Vec::new(),
        }
    }

    /// Snapshots a live peer: schema, grants, own rules (no source spans)
    /// and installed delegations (tagged with their origin).
    pub fn from_peer(peer: &Peer) -> PeerModel {
        let mut model = PeerModel::new(peer.name());
        model.schema = peer.schema().clone();
        model.grants = peer.grants().clone();
        for entry in peer.rules() {
            model.rules.push(RuleInfo {
                rule: entry.rule.clone(),
                span: None,
                delegated_from: None,
            });
        }
        for d in peer.installed_delegations() {
            model.rules.push(RuleInfo {
                rule: d.rule.clone(),
                span: None,
                delegated_from: Some(d.origin),
            });
        }
        model
    }

    /// Builder convenience: appends an own rule with no span.
    pub fn with_rule(mut self, rule: WRule) -> PeerModel {
        self.rules.push(RuleInfo {
            rule,
            span: None,
            delegated_from: None,
        });
        self
    }
}

/// The result of a whole-program analysis.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// All diagnostics, errors first, then by source position and code.
    pub diagnostics: Vec<Diagnostic>,
    /// Conservative bound on delegation-chain length (number of
    /// installation hops), when the install graph is acyclic; `None` when
    /// installation may cycle.
    pub delegation_depth: Option<usize>,
}

impl AnalysisReport {
    /// Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// True iff no diagnostic at all was emitted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True iff at least one error-severity diagnostic was emitted.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.is_error())
    }
}

/// The whole-program analyzer: holds a set of [`PeerModel`]s and runs the
/// check battery over their joint dependency graph.
pub struct Analyzer {
    peers: Vec<PeerModel>,
}

impl Analyzer {
    /// Analyzer over an explicit model set.
    pub fn new(peers: Vec<PeerModel>) -> Analyzer {
        Analyzer { peers }
    }

    /// Analyzer over snapshots of live peers.
    pub fn from_peers<'a>(peers: impl IntoIterator<Item = &'a Peer>) -> Analyzer {
        Analyzer::new(peers.into_iter().map(PeerModel::from_peer).collect())
    }

    /// The models under analysis.
    pub fn peers(&self) -> &[PeerModel] {
        &self.peers
    }

    /// Builds the cross-peer predicate dependency graph.
    pub fn graph(&self) -> DepGraph {
        DepGraph::build(&self.peers)
    }

    /// Runs every check and returns the combined report.
    pub fn analyze(&self) -> AnalysisReport {
        let graph = self.graph();
        let mut diagnostics = checks::safety(&self.peers);
        diagnostics.extend(checks::schema_conformance(&self.peers));
        diagnostics.extend(checks::stratification(&graph));
        let (deleg, delegation_depth) = checks::delegation(&graph);
        diagnostics.extend(deleg);
        diagnostics.extend(checks::reachability(&self.peers));
        diagnostics.sort_by_key(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.rule_span
                    .map_or((usize::MAX, usize::MAX), |s| (s.line, s.col)),
                d.code.number(),
            )
        });
        AnalysisReport {
            diagnostics,
            delegation_depth,
        }
    }
}

/// [`ProgramCheck`] implementation backed by the whole-program analyzer,
/// applied to the installing peer's model extended with the batch.
///
/// Checking is single-peer here — cross-peer checks that need the *other*
/// peer's schema or grants simply see no model for it and stay silent, so
/// installation never rejects a program for facts it cannot know.
pub struct StaticChecker;

impl ProgramCheck for StaticChecker {
    fn check(&self, peer: &Peer, batch: &ProgramBatch) -> Vec<Diagnostic> {
        let mut model = PeerModel::from_peer(peer);
        for &(rel, arity, kind) in &batch.declarations {
            // Conflicting redeclarations are the installer's job to refuse;
            // analysis proceeds with the first shape it saw.
            let _ = model.schema.declare(rel, arity, kind);
        }
        for fact in &batch.facts {
            if !model.schema.is_declared(fact.rel) {
                let _ = model
                    .schema
                    .declare(fact.rel, fact.tuple.len(), RelationKind::Extensional);
            }
        }
        for (rule, span) in &batch.rules {
            model.rules.push(RuleInfo {
                rule: rule.clone(),
                span: *span,
                delegated_from: None,
            });
        }
        Analyzer::new(vec![model]).analyze().diagnostics
    }
}

/// Lifts a parsed program into peer models for offline analysis.
///
/// Declarations and facts carry their hosting peer explicitly. A rule's
/// owner is inferred the way the runtime would evaluate it: the peer of
/// its first concrete body literal; failing that, its concrete head peer;
/// failing that, the first constant peer appearing anywhere in the rule.
/// Returns the models plus any diagnostics raised while building them
/// (conflicting declarations, fact arity mismatches — both WDL006).
pub fn model_from_program(statements: &[SpannedStatement]) -> (Vec<PeerModel>, Vec<Diagnostic>) {
    let mut models: Vec<PeerModel> = Vec::new();
    let mut index: HashMap<Symbol, usize> = HashMap::new();
    let mut diagnostics = Vec::new();
    let mut model_of = |name: Symbol, models: &mut Vec<PeerModel>| -> usize {
        *index.entry(name).or_insert_with(|| {
            models.push(PeerModel::new(name));
            models.len() - 1
        })
    };
    for st in statements {
        let span = Some(Span::new(st.line, st.col));
        match &st.statement {
            Statement::Declaration {
                rel,
                peer,
                arity,
                kind,
            } => {
                let mi = model_of(*peer, &mut models);
                if let Err(e) = models[mi].schema.declare(*rel, *arity, *kind) {
                    diagnostics.push(
                        Diagnostic::new(wdl_core::DiagCode::ArityMismatch, e.to_string())
                            .with_span(span),
                    );
                }
            }
            Statement::Fact(fact) => {
                let mi = model_of(fact.peer, &mut models);
                match models[mi].schema.get(fact.rel) {
                    Some(decl) if decl.arity != fact.tuple.len() => {
                        diagnostics.push(
                            Diagnostic::new(
                                wdl_core::DiagCode::ArityMismatch,
                                format!(
                                    "fact `{fact}` has arity {}, but {}@{} is declared with \
                                     arity {}",
                                    fact.tuple.len(),
                                    fact.rel,
                                    fact.peer,
                                    decl.arity
                                ),
                            )
                            .with_span(span),
                        );
                    }
                    Some(_) => {}
                    None => {
                        let arity = fact.tuple.len();
                        let _ =
                            models[mi]
                                .schema
                                .declare(fact.rel, arity, RelationKind::Extensional);
                    }
                }
            }
            Statement::Rule(rule) => {
                let owner = infer_owner(rule);
                let mi = model_of(owner, &mut models);
                models[mi].rules.push(RuleInfo {
                    rule: rule.clone(),
                    span,
                    delegated_from: None,
                });
            }
        }
    }
    (models, diagnostics)
}

/// Where would the runtime start evaluating this rule? See
/// [`model_from_program`] for the inference order.
fn infer_owner(rule: &WRule) -> Symbol {
    for item in &rule.body {
        if let wdl_core::WBodyItem::Literal(l) = item {
            if let Some(p) = l.atom.peer.as_name() {
                return p;
            }
        }
    }
    if let Some(p) = rule.head.peer.as_name() {
        return p;
    }
    rule.constant_peers()
        .first()
        .copied()
        .unwrap_or_else(|| Symbol::intern("?"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::DiagCode;
    use wdl_parser::parse_program_spanned;

    fn analyze(src: &str) -> AnalysisReport {
        let stmts = parse_program_spanned(src).unwrap();
        let (models, mut diags) = model_from_program(&stmts);
        let mut report = Analyzer::new(models).analyze();
        diags.append(&mut report.diagnostics);
        report.diagnostics = diags;
        report
    }

    #[test]
    fn clean_local_program_is_clean() {
        let report = analyze(
            "extensional w@p/1;\n\
             intensional v@p/1;\n\
             v@p($x) :- w@p($x);\n\
             w@p(1);",
        );
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.delegation_depth, Some(0));
    }

    #[test]
    fn delegation_chain_has_bounded_depth() {
        let report = analyze(
            "extensional w@p/1;\n\
             extensional u@q/1;\n\
             intensional v@p/1;\n\
             v@p($x) :- w@p($x), u@q($x);",
        );
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(report.delegation_depth, Some(1));
    }

    #[test]
    fn owner_inference_prefers_first_concrete_body_peer() {
        let rule = wdl_parser::parse_rule("v@q($x) :- w@p($x), u@$y($x);").unwrap();
        assert_eq!(infer_owner(&rule), Symbol::intern("p"));
        let head_only = wdl_parser::parse_rule("v@q($x) :- $x == 1;").unwrap();
        assert_eq!(infer_owner(&head_only), Symbol::intern("q"));
    }

    #[test]
    fn conflicting_declaration_is_reported() {
        let report = analyze("extensional w@p/1;\nextensional w@p/2;");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ArityMismatch));
    }
}
