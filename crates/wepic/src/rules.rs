//! The Wepic rule set — the rules the paper prints, as surface syntax.
//!
//! Each function renders a rule template for a concrete peer and parses it
//! through `wdl-parser`, exactly as the demo's rule-editing pane would
//! (Figure 3). Applications install them with [`wdl_core::Peer::add_rule`].

use wdl_core::{Result, WRule, WdlError};
use wdl_parser::parse_rule;

fn parse(text: &str) -> Result<WRule> {
    parse_rule(text).map_err(|e| WdlError::UnsafeDistribution(format!("bad rule template: {e}")))
}

/// §3, the delegation-powered view:
///
/// ```text
/// attendeePictures@Jules($id, $name, $owner, $data) :-
///     selectedAttendee@Jules($attendee),
///     pictures@$attendee($id, $name, $owner, $data)
/// ```
pub fn attendee_pictures(me: &str) -> Result<WRule> {
    parse(&format!(
        "attendeePictures@{me}($id, $name, $owner, $data) :- \
         selectedAttendee@{me}($attendee), \
         pictures@$attendee($id, $name, $owner, $data);"
    ))
}

/// §3, the protocol-dispatch transfer rule:
///
/// ```text
/// $protocol@$attendee($attendee, $name, $id, $owner) :-
///     selectedAttendee@Jules($attendee),
///     communicate@$attendee($protocol),
///     selectedPictures@Jules($name, $id, $owner)
/// ```
pub fn transfer(me: &str) -> Result<WRule> {
    parse(&format!(
        "$protocol@$attendee($attendee, $name, $id, $owner) :- \
         selectedAttendee@{me}($attendee), \
         communicate@$attendee($protocol), \
         selectedPictures@{me}($name, $id, $owner);"
    ))
}

/// §4 "Interaction via Facebook" setup: every upload at an attendee is
/// instantly published to the sigmod peer.
pub fn publish_to_sigmod(me: &str, sigmod: &str) -> Result<WRule> {
    parse(&format!(
        "pictures@{sigmod}($id, $name, $owner, $data) :- \
         pictures@{me}($id, $name, $owner, $data);"
    ))
}

/// §4, the paper's Facebook publication rule (verbatim — note the
/// delegation to `$owner` for the authorization check):
///
/// ```text
/// pictures@SigmodFB($id, $name, $owner, $data) :-
///     pictures@sigmod($id, $name, $owner, $data),
///     authorized@$owner("Facebook", $id, $owner)
/// ```
pub fn publish_to_facebook(sigmod: &str, fb_group: &str) -> Result<WRule> {
    parse(&format!(
        "pictures@{fb_group}($id, $name, $owner, $data) :- \
         pictures@{sigmod}($id, $name, $owner, $data), \
         authorized@$owner(\"Facebook\", $id, $owner);"
    ))
}

/// §4, the converse flow: the sigmod peer retrieves group pictures from
/// Facebook and publishes them locally.
pub fn import_from_facebook(sigmod: &str, fb_group: &str) -> Result<WRule> {
    parse(&format!(
        "pictures@{sigmod}($id, $name, $owner, $data) :- \
         pictures@{fb_group}($id, $name, $owner, $data);"
    ))
}

/// §4: "the sigmod peer will automatically retrieve the pictures *with
/// their comments and tags* from the Facebook group" — the comments half.
pub fn import_comments_from_facebook(sigmod: &str, fb_group: &str) -> Result<WRule> {
    parse(&format!(
        "comments@{sigmod}($picId, $author, $text) :- \
         comments@{fb_group}($picId, $author, $text);"
    ))
}

/// The tags half of the same retrieval.
pub fn import_tags_from_facebook(sigmod: &str, fb_group: &str) -> Result<WRule> {
    parse(&format!(
        "tags@{sigmod}($picId, $person) :- tags@{fb_group}($picId, $person);"
    ))
}

/// §4 "Customizing rules": the rating-5 filter the paper demonstrates —
/// replaces [`attendee_pictures`] so the view keeps only pictures the owner
/// rated `min_rating` or higher.
pub fn rating_filter(me: &str, min_rating: i64) -> Result<WRule> {
    parse(&format!(
        "attendeePictures@{me}($id, $name, $owner, $data) :- \
         selectedAttendee@{me}($attendee), \
         pictures@$attendee($id, $name, $owner, $data), \
         rate@$owner($id, $r), $r >= {min_rating};"
    ))
}

/// Customization from §4's narration: only pictures in which a given
/// attendee appears (joins the owner's `tag` relation).
pub fn tagged_person_filter(me: &str, person: &str) -> Result<WRule> {
    parse(&format!(
        "attendeePictures@{me}($id, $name, $owner, $data) :- \
         selectedAttendee@{me}($attendee), \
         pictures@$attendee($id, $name, $owner, $data), \
         tag@$owner($id, \"{person}\");"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_parse_and_are_safe() {
        for rule in [
            attendee_pictures("jules").unwrap(),
            transfer("jules").unwrap(),
            publish_to_sigmod("jules", "sigmod").unwrap(),
            publish_to_facebook("sigmod", "SigmodFB").unwrap(),
            import_from_facebook("sigmod", "SigmodFB").unwrap(),
            rating_filter("jules", 5).unwrap(),
            tagged_person_filter("jules", "Serge").unwrap(),
        ] {
            rule.check_safety().unwrap();
        }
    }

    #[test]
    fn attendee_pictures_matches_builtin_example() {
        assert_eq!(
            attendee_pictures("Jules").unwrap(),
            WRule::example_attendee_pictures("Jules")
        );
    }

    #[test]
    fn rating_filter_embeds_threshold() {
        let r = rating_filter("me", 5).unwrap();
        assert!(r.to_string().contains(">= 5"));
        assert_eq!(r.body.len(), 4);
    }

    #[test]
    fn facebook_rule_delegates_authorization_to_owner() {
        let r = publish_to_facebook("sigmod", "SigmodFB").unwrap();
        // Second body atom's peer is the $owner variable.
        let wdl_core::WBodyItem::Literal(l) = &r.body[1] else {
            panic!("expected literal");
        };
        assert!(l.atom.peer.is_var());
    }
}
