//! The Wepic relation schema.
//!
//! | relation            | arity | kind | columns                              |
//! |---------------------|-------|------|--------------------------------------|
//! | `pictures`          | 4     | ext  | id, name, owner, data                |
//! | `selectedAttendee`  | 1     | ext  | attendee                             |
//! | `selectedPictures`  | 3     | ext  | name, id, owner                      |
//! | `attendeePictures`  | 4     | int  | id, name, owner, data (the view)     |
//! | `communicate`       | 1     | ext  | protocol                             |
//! | `authorized`        | 3     | ext  | protocol, picId, owner               |
//! | `rate`              | 2     | ext  | picId, rating                        |
//! | `comment`           | 3     | ext  | picId, author, text                  |
//! | `tag`               | 2     | ext  | picId, person                        |
//! | `email`             | 4     | ext  | attendee, name, id, owner (dispatch) |
//! | `wepicInbox`        | 4     | ext  | attendee, name, id, owner (dispatch) |
//! | `attendees`         | 1     | ext  | attendee (sigmod registry)           |

use wdl_core::RelationKind::{Extensional, Intensional};
use wdl_core::{Peer, Result};

/// Declares the attendee-side relations on `peer`.
pub fn declare_attendee(peer: &mut Peer) -> Result<()> {
    peer.declare("pictures", 4, Extensional)?;
    peer.declare("selectedAttendee", 1, Extensional)?;
    peer.declare("selectedPictures", 3, Extensional)?;
    peer.declare("attendeePictures", 4, Intensional)?;
    peer.declare("communicate", 1, Extensional)?;
    peer.declare("authorized", 3, Extensional)?;
    peer.declare("rate", 2, Extensional)?;
    peer.declare("comment", 3, Extensional)?;
    peer.declare("tag", 2, Extensional)?;
    peer.declare("email", 4, Extensional)?;
    peer.declare("wepicInbox", 4, Extensional)?;
    Ok(())
}

/// Declares the sigmod-peer relations (registry + shared pictures).
pub fn declare_sigmod(peer: &mut Peer) -> Result<()> {
    peer.declare("pictures", 4, Extensional)?;
    peer.declare("attendees", 1, Extensional)?;
    peer.declare("comments", 3, Extensional)?;
    peer.declare("tags", 2, Extensional)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::RelationKind;
    use wdl_datalog::Symbol;

    #[test]
    fn attendee_schema_shape() {
        let mut p = Peer::new("schema-test-attendee");
        declare_attendee(&mut p).unwrap();
        assert_eq!(p.schema().arity_of(Symbol::intern("pictures")), Some(4));
        assert_eq!(
            p.schema().kind_of(Symbol::intern("attendeePictures")),
            Some(RelationKind::Intensional)
        );
        assert_eq!(p.schema().len(), 11);
        // Idempotent.
        declare_attendee(&mut p).unwrap();
    }

    #[test]
    fn sigmod_schema_shape() {
        let mut p = Peer::new("schema-test-sigmod");
        declare_sigmod(&mut p).unwrap();
        assert_eq!(p.schema().arity_of(Symbol::intern("attendees")), Some(1));
    }
}
