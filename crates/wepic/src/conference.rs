//! The conference setup of Figure 2: attendee peers + the sigmod peer +
//! the Facebook group wrapper + email, wired into one driveable system.

use crate::{rules, schema};
use wdl_core::acl::UntrustedPolicy;
use wdl_core::runtime::LocalRuntime;
use wdl_core::{Peer, Result, WdlError};
use wdl_datalog::{Symbol, Value};
use wdl_wrappers::email::{EmailSim, EmailWrapper};
use wdl_wrappers::facebook::{FacebookSim, GroupWrapper};
use wdl_wrappers::Wrapper;

/// Configuration for a [`Conference`].
#[derive(Clone, Debug)]
pub struct ConferenceConfig {
    /// Name of the registry/cloud peer (paper: `sigmod`).
    pub sigmod_name: String,
    /// Facebook group name; its wrapper peer is `{group}FB` (paper:
    /// `SigmodFB`).
    pub fb_group: String,
    /// Attendee peer names (paper: Émilien, Jules, plus audience members).
    pub attendees: Vec<String>,
    /// If true, every peer accepts delegations from anyone (closed
    /// experiments). If false — the demo's policy — peers trust only the
    /// sigmod peer and queue everything else for approval.
    pub open_trust: bool,
    /// Install the upload-propagation rule (`pictures@sigmod :-
    /// pictures@me`) at every attendee.
    pub publish_uploads: bool,
}

impl ConferenceConfig {
    /// The paper's demo setup: Émilien and Jules, trusted sigmod peer.
    pub fn demo() -> ConferenceConfig {
        ConferenceConfig {
            sigmod_name: "sigmod".into(),
            fb_group: "Sigmod".into(),
            attendees: vec!["Emilien".into(), "Jules".into()],
            open_trust: false,
            publish_uploads: true,
        }
    }

    /// `n` synthetic attendees, open trust — the experiment configuration.
    pub fn experiment(n: usize) -> ConferenceConfig {
        ConferenceConfig {
            sigmod_name: "sigmod".into(),
            fb_group: "Sigmod".into(),
            attendees: (0..n).map(|i| format!("attendee{i:03}")).collect(),
            open_trust: true,
            publish_uploads: true,
        }
    }
}

/// Result of [`Conference::settle`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SettleReport {
    /// Whether the system reached a fully quiet round.
    pub quiescent: bool,
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages routed between peers.
    pub messages: usize,
    /// Facts moved between wrappers and the external simulators.
    pub wrapper_activity: usize,
}

/// The running conference: a [`LocalRuntime`] plus wrappers and simulators.
pub struct Conference {
    /// The peer network (attendees + sigmod + the FB wrapper peer).
    pub runtime: LocalRuntime,
    /// The simulated Facebook service.
    pub fb: FacebookSim,
    /// The simulated mail service.
    pub email: EmailSim,
    fb_wrapper: GroupWrapper,
    fb_peer: Symbol,
    email_wrappers: Vec<(Symbol, EmailWrapper)>,
    sigmod: Symbol,
    attendees: Vec<Symbol>,
}

impl Conference {
    /// Builds the Figure 2 topology from `config`.
    pub fn new(config: &ConferenceConfig) -> Result<Conference> {
        let mut runtime = LocalRuntime::new();
        let fb = FacebookSim::new();
        let email = EmailSim::new();
        let sigmod_name = config.sigmod_name.as_str();

        // The Facebook group wrapper peer (e.g. SigmodFB).
        let (fb_wrapper, mut fb_peer) = GroupWrapper::new(fb.clone(), &config.fb_group)?;
        let fb_peer_name = fb_peer.name();
        fb_peer.acl_mut().trust(sigmod_name);
        if config.open_trust {
            fb_peer
                .acl_mut()
                .set_untrusted_policy(UntrustedPolicy::Accept);
        }

        // The sigmod (cloud/registry) peer.
        let mut sigmod = Peer::new(sigmod_name);
        schema::declare_sigmod(&mut sigmod)?;
        sigmod.add_rule(rules::publish_to_facebook(
            sigmod_name,
            fb_peer_name.as_str(),
        )?)?;
        sigmod.add_rule(rules::import_from_facebook(
            sigmod_name,
            fb_peer_name.as_str(),
        )?)?;
        sigmod.add_rule(rules::import_comments_from_facebook(
            sigmod_name,
            fb_peer_name.as_str(),
        )?)?;
        sigmod.add_rule(rules::import_tags_from_facebook(
            sigmod_name,
            fb_peer_name.as_str(),
        )?)?;
        if config.open_trust {
            sigmod
                .acl_mut()
                .set_untrusted_policy(UntrustedPolicy::Accept);
        } else {
            // The demo's sigmod peer accepts the wrapper peer's traffic.
            sigmod.acl_mut().trust(fb_peer_name);
        }

        // Attendee peers.
        let mut email_wrappers = Vec::new();
        let mut attendees = Vec::new();
        for name in &config.attendees {
            let mut p = Peer::new(name.as_str());
            schema::declare_attendee(&mut p)?;
            p.add_rule(rules::attendee_pictures(name)?)?;
            p.add_rule(rules::transfer(name)?)?;
            if config.publish_uploads {
                p.add_rule(rules::publish_to_sigmod(name, sigmod_name)?)?;
            }
            // Demo policy: "all peers except the sigmod peer will be
            // considered untrusted".
            p.acl_mut().trust(sigmod_name);
            if config.open_trust {
                p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
            }
            sigmod.insert_local("attendees", vec![Value::from(name.as_str())])?;
            attendees.push(p.name());
            email_wrappers.push((p.name(), EmailWrapper::new(email.clone())));
            runtime.add_peer(p)?;
        }

        let sigmod_sym = runtime.add_peer(sigmod)?;
        runtime.add_peer(fb_peer)?;

        Ok(Conference {
            runtime,
            fb,
            email,
            fb_wrapper,
            fb_peer: fb_peer_name,
            email_wrappers,
            sigmod: sigmod_sym,
            attendees,
        })
    }

    /// The sigmod peer's name.
    pub fn sigmod_name(&self) -> Symbol {
        self.sigmod
    }

    /// The Facebook wrapper peer's name (e.g. `SigmodFB`).
    pub fn fb_peer_name(&self) -> Symbol {
        self.fb_peer
    }

    /// Attendee peer names, in configuration order.
    pub fn attendee_names(&self) -> &[Symbol] {
        &self.attendees
    }

    /// Immutable access to any peer.
    pub fn peer(&self, name: impl Into<Symbol>) -> Result<&Peer> {
        let name = name.into();
        self.runtime
            .peer(name)
            .ok_or_else(|| WdlError::UnknownPeer(name.to_string()))
    }

    /// Mutable access to any peer.
    pub fn peer_mut(&mut self, name: impl Into<Symbol>) -> Result<&mut Peer> {
        let name = name.into();
        self.runtime
            .peer_mut(name)
            .ok_or_else(|| WdlError::UnknownPeer(name.to_string()))
    }

    /// Adds a late-joining attendee (the demo's audience-member scenario,
    /// E8). Installs the standard rules, registers with sigmod, returns the
    /// peer name.
    pub fn add_attendee(&mut self, name: &str, open_trust: bool) -> Result<Symbol> {
        let mut p = Peer::new(name);
        schema::declare_attendee(&mut p)?;
        p.add_rule(rules::attendee_pictures(name)?)?;
        p.add_rule(rules::transfer(name)?)?;
        p.add_rule(rules::publish_to_sigmod(name, self.sigmod.as_str())?)?;
        p.acl_mut().trust(self.sigmod.as_str());
        if open_trust {
            p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
        }
        let sym = p.name();
        self.peer_mut(self.sigmod)?
            .insert_local("attendees", vec![Value::from(name)])?;
        self.email_wrappers
            .push((sym, EmailWrapper::new(self.email.clone())));
        self.attendees.push(sym);
        self.runtime.add_peer(p)?;
        Ok(sym)
    }

    /// One round: sync wrappers, then tick every peer. Returns
    /// `(wrapper_activity, messages, changed)`.
    pub fn step(&mut self) -> Result<(usize, usize, bool)> {
        let mut activity = 0;
        {
            let fb_peer = self
                .runtime
                .peer_mut(self.fb_peer)
                .ok_or_else(|| WdlError::UnknownPeer(self.fb_peer.to_string()))?;
            let r = self.fb_wrapper.sync(fb_peer)?;
            activity += r.imported + r.exported;
        }
        for (peer_name, wrapper) in &mut self.email_wrappers {
            if let Some(peer) = self.runtime.peer_mut(*peer_name) {
                let r = wrapper.sync(peer)?;
                activity += r.imported + r.exported;
            }
        }
        let tick = self.runtime.tick()?;
        Ok((activity, tick.messages, tick.changed))
    }

    /// Steps until a fully quiet round (no wrapper activity, no messages,
    /// no peer change) or until `max_rounds`.
    pub fn settle(&mut self, max_rounds: usize) -> Result<SettleReport> {
        let mut report = SettleReport::default();
        for _ in 0..max_rounds {
            let (activity, messages, changed) = self.step()?;
            report.rounds += 1;
            report.messages += messages;
            report.wrapper_activity += activity;
            if activity == 0 && messages == 0 && !changed {
                report.quiescent = true;
                return Ok(report);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, Picture};

    fn pic(id: i64, owner: &str) -> Picture {
        Picture {
            id,
            name: format!("img{id}.jpg"),
            owner: owner.into(),
            data: vec![id as u8, 0, 0],
        }
    }

    /// §4 "Interaction via Facebook": upload at Émilien → pictures@sigmod →
    /// (authorized) → pictures@SigmodFB → the simulated group feed.
    #[test]
    fn upload_propagates_to_sigmod_and_facebook() {
        let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
        let emilien = conf.peer_mut("Emilien").unwrap();
        ops::upload_picture(emilien, &pic(1, "Emilien")).unwrap();
        ops::authorize(emilien, "Facebook", 1, "Emilien").unwrap();

        let r = conf.settle(64).unwrap();
        assert!(r.quiescent, "did not settle: {r:?}");

        assert_eq!(
            conf.peer("sigmod")
                .unwrap()
                .relation_facts("pictures")
                .len(),
            1,
            "picture published to sigmod"
        );
        let feed = conf.fb.group_feed("Sigmod");
        assert_eq!(feed.len(), 1, "picture published to the Facebook group");
        assert_eq!(feed[0].owner, "Emilien");
    }

    /// Without authorization the picture stays off Facebook.
    #[test]
    fn unauthorized_pictures_stay_off_facebook() {
        let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
        let emilien = conf.peer_mut("Emilien").unwrap();
        ops::upload_picture(emilien, &pic(2, "Emilien")).unwrap();
        conf.settle(64).unwrap();
        assert_eq!(
            conf.peer("sigmod")
                .unwrap()
                .relation_facts("pictures")
                .len(),
            1
        );
        assert!(conf.fb.group_feed("Sigmod").is_empty());
    }

    /// External Facebook posts flow back into pictures@sigmod (the paper's
    /// converse direction).
    #[test]
    fn facebook_posts_import_to_sigmod() {
        let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
        conf.fb.post_to_group(
            "Sigmod",
            wdl_wrappers::facebook::Post {
                id: 77,
                name: "external.jpg".into(),
                owner: "someFacebookUser".into(),
                data: vec![9],
            },
        );
        let r = conf.settle(64).unwrap();
        assert!(r.quiescent);
        let pics = conf.peer("sigmod").unwrap().relation_facts("pictures");
        assert_eq!(pics.len(), 1);
        assert_eq!(pics[0][1], Value::from("external.jpg"));
    }

    /// The transfer rule delivers by email: Jules sends a selected picture
    /// to Émilien whose preferred protocol is email.
    #[test]
    fn transfer_by_email_lands_in_mailbox() {
        let mut conf = Conference::new(&ConferenceConfig::experiment(0)).unwrap();
        // Use explicit demo names with open trust for this test.
        let mut cfg = ConferenceConfig::demo();
        cfg.open_trust = true;
        let mut conf2 = Conference::new(&cfg).unwrap();
        std::mem::swap(&mut conf, &mut conf2);

        let emilien = conf.peer_mut("Emilien").unwrap();
        ops::set_protocol(emilien, "email").unwrap();

        let jules = conf.peer_mut("Jules").unwrap();
        ops::select_attendee(jules, "Emilien").unwrap();
        ops::select_picture(jules, "sea.jpg", 4, "Jules").unwrap();

        let r = conf.settle(64).unwrap();
        assert!(r.quiescent);
        let inbox = conf.email.mailbox("Emilien");
        assert_eq!(inbox.len(), 1, "one email delivered");
        assert!(inbox[0].fields.iter().any(|f| f.contains("sea.jpg")));
    }

    /// The demo's delegation-control scenario: with the default (closed)
    /// policy, Jules' view rule delegation to Émilien waits for approval.
    #[test]
    fn delegation_between_attendees_requires_approval() {
        let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
        let emilien = conf.peer_mut("Emilien").unwrap();
        ops::upload_picture(emilien, &pic(3, "Emilien")).unwrap();

        let jules = conf.peer_mut("Jules").unwrap();
        ops::select_attendee(jules, "Emilien").unwrap();

        conf.settle(64).unwrap();
        // Pending at Émilien, not installed; Jules sees nothing yet. Both of
        // Jules' rules (view + transfer) delegated once Émilien was
        // selected, so two delegations wait in the queue.
        let emilien = conf.peer("Emilien").unwrap();
        assert_eq!(emilien.pending_delegations().len(), 2);
        // Delegations from the *trusted* sigmod peer (the Facebook
        // authorization probe) install immediately; nothing from Jules did.
        assert!(emilien
            .installed_delegations()
            .iter()
            .all(|d| d.origin.as_str() == "sigmod"));
        assert!(conf
            .peer("Jules")
            .unwrap()
            .relation_facts("attendeePictures")
            .is_empty());

        // Émilien approves the view delegation via the (programmatic)
        // interface — the equivalent of clicking accept in Figure 3.
        let id = conf
            .peer("Emilien")
            .unwrap()
            .pending_delegations()
            .iter()
            .find(|p| p.delegation.rule.head.rel == wdl_core::NameTerm::name("attendeePictures"))
            .expect("view delegation pending")
            .delegation
            .id;
        conf.peer_mut("Emilien")
            .unwrap()
            .approve_delegation(id)
            .unwrap();
        let r = conf.settle(64).unwrap();
        assert!(r.quiescent);
        assert_eq!(
            conf.peer("Jules")
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            1,
            "after approval the view fills"
        );
    }

    /// Late-joining audience peer uploads and its photo reaches sigmod.
    #[test]
    fn audience_peer_joins_mid_run() {
        let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
        conf.settle(16).unwrap();
        conf.add_attendee("audience1", false).unwrap();
        let p = conf.peer_mut("audience1").unwrap();
        ops::upload_picture(p, &pic(50, "audience1")).unwrap();
        let r = conf.settle(64).unwrap();
        assert!(r.quiescent);
        assert_eq!(
            conf.peer("sigmod")
                .unwrap()
                .relation_facts("pictures")
                .len(),
            1
        );
        assert_eq!(
            conf.peer("sigmod")
                .unwrap()
                .relation_facts("attendees")
                .len(),
            3
        );
    }

    /// Rule customization (§4): replacing the view rule with the rating-5
    /// filter changes the Attendee pictures frame.
    #[test]
    fn rating_filter_customization() {
        let mut cfg = ConferenceConfig::demo();
        cfg.open_trust = true;
        let mut conf = Conference::new(&cfg).unwrap();

        let emilien = conf.peer_mut("Emilien").unwrap();
        ops::upload_picture(emilien, &pic(10, "Emilien")).unwrap();
        ops::upload_picture(emilien, &pic(11, "Emilien")).unwrap();
        ops::rate(emilien, 10, 5).unwrap();
        ops::rate(emilien, 11, 3).unwrap();

        let jules = conf.peer_mut("Jules").unwrap();
        ops::select_attendee(jules, "Emilien").unwrap();
        conf.settle(64).unwrap();
        assert_eq!(
            conf.peer("Jules")
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            2,
            "default rule shows all pictures"
        );

        // Customize: replace the view rule with the rating filter.
        let jules = conf.peer_mut("Jules").unwrap();
        let view_rule_id = jules.rules()[0].id;
        jules
            .replace_rule(view_rule_id, rules::rating_filter("Jules", 5).unwrap())
            .unwrap();
        let r = conf.settle(64).unwrap();
        assert!(r.quiescent);
        let view = conf
            .peer("Jules")
            .unwrap()
            .relation_facts("attendeePictures");
        assert_eq!(view.len(), 1, "only the 5-rated picture remains");
        assert_eq!(view[0][0], Value::from(10));
    }
}
