//! wepic-repl — an interactive shell standing in for the Wepic GUI
//! (Figures 1 and 3 of the paper): inspect and edit rules, insert facts,
//! run queries, approve delegations, and step the peer network.
//!
//! ```sh
//! cargo run -p wepic --bin wepic-repl
//! ```
//!
//! Scriptable: commands read from stdin, one per line. Try:
//!
//! ```text
//! peer jules
//! peer emilien
//! use emilien
//! fact pictures@emilien(32, "sea.jpg", "emilien", 0x640000);
//! trust jules
//! use jules
//! decl intensional attendeePictures@jules/4;
//! rule attendeePictures@jules($id,$n,$o,$d) :- selectedAttendee@jules($a), pictures@$a($id,$n,$o,$d);
//! fact selectedAttendee@jules("emilien");
//! run
//! show attendeePictures
//! quit
//! ```

use std::io::{BufRead, Write};
use wdl_core::runtime::LocalRuntime;
use wdl_core::Peer;
use wdl_parser as parser;

struct Repl {
    rt: LocalRuntime,
    current: Option<String>,
}

fn main() {
    let stdin = std::io::stdin();
    let mut repl = Repl {
        rt: LocalRuntime::new(),
        current: None,
    };
    println!("wepic-repl — WebdamLog interactive shell. `help` for commands.");
    prompt(&repl);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            prompt(&repl);
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        if let Err(msg) = dispatch(&mut repl, line) {
            println!("error: {msg}");
        }
        prompt(&repl);
    }
    println!("bye.");
}

fn prompt(repl: &Repl) {
    match &repl.current {
        Some(p) => print!("{p}> "),
        None => print!("wepic> "),
    }
    std::io::stdout().flush().ok();
}

fn dispatch(repl: &mut Repl, line: &str) -> Result<(), String> {
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "help" => {
            println!(
                "commands:\n  \
                 peer <name>           create a peer\n  \
                 use <name>            switch current peer\n  \
                 peers                 list peers\n  \
                 decl <declaration;>   declare a relation\n  \
                 fact <fact;>          insert a fact\n  \
                 delete <fact;>        delete a fact\n  \
                 rule <rule;>          add a rule\n  \
                 rules                 list rules (with ids)\n  \
                 drop <idx>            remove rule by index\n  \
                 query <body>          run an ad-hoc query\n  \
                 show <relation>       print a relation's facts\n  \
                 pending               list pending delegations\n  \
                 approve <n>|reject <n>  decide pending delegation n\n  \
                 trust <peer>          trust a peer's delegations\n  \
                 check                 static analysis over all peers (wdl-analyze)\n  \
                 run [n]               tick the network (default: to quiescence)\n  \
                 stats                 current peer's last stage + cumulative eval stats\n  \
                 profile on|off|reset  start/stop structured tracing\n  \
                 top [k]               hottest rules by total evaluation time\n  \
                 critpath [k]          k longest message-graph critical paths\n  \
                 trace dump <file>     export the trace aggregate as JSONL\n  \
                 save <file>|restore <file>  snapshot current peer\n  \
                 quit"
            );
            Ok(())
        }
        "peer" => {
            if rest.is_empty() {
                return Err("usage: peer <name>".into());
            }
            repl.rt.add_peer(Peer::new(rest)).unwrap();
            repl.current = Some(rest.to_string());
            println!("created peer {rest}");
            Ok(())
        }
        "use" => {
            if repl.rt.peer(rest).is_none() {
                return Err(format!("no such peer: {rest}"));
            }
            repl.current = Some(rest.to_string());
            Ok(())
        }
        "peers" => {
            for n in repl.rt.peer_names() {
                println!("  {n}");
            }
            Ok(())
        }
        "decl" | "fact" => {
            let peer = current(repl)?;
            let report = parser::load_program(
                repl.rt.peer_mut(peer.as_str()).unwrap(),
                ensure_semi(rest).as_str(),
            )
            .map_err(|e| e.to_string())?;
            println!(
                "applied: {} declaration(s), {} fact(s)",
                report.declarations, report.facts
            );
            Ok(())
        }
        "delete" => {
            let peer = current(repl)?;
            let fact = parser::parse_fact(ensure_semi(rest).as_str()).map_err(|e| e.to_string())?;
            let p = repl.rt.peer_mut(peer.as_str()).unwrap();
            if fact.peer != p.name() {
                return Err("fact must address the current peer".into());
            }
            let removed = p
                .delete_local(fact.rel, fact.tuple.to_vec())
                .map_err(|e| e.to_string())?;
            println!("{}", if removed { "deleted" } else { "not present" });
            Ok(())
        }
        "rule" => {
            let peer = current(repl)?;
            let rule = parser::parse_rule(ensure_semi(rest).as_str()).map_err(|e| e.to_string())?;
            let id = repl
                .rt
                .peer_mut(peer.as_str())
                .unwrap()
                .add_rule(rule)
                .map_err(|e| e.to_string())?;
            println!("installed rule {id}");
            Ok(())
        }
        "rules" => {
            let peer = current(repl)?;
            let p = repl.rt.peer(peer.as_str()).unwrap();
            for (i, entry) in p.rules().iter().enumerate() {
                println!("  [{i}] {}", parser::pretty::rule(&entry.rule));
            }
            for d in p.installed_delegations() {
                println!(
                    "  [delegated by {}] {}",
                    d.origin,
                    parser::pretty::rule(&d.rule)
                );
            }
            Ok(())
        }
        "drop" => {
            let peer = current(repl)?;
            let idx: usize = rest.parse().map_err(|_| "usage: drop <idx>".to_string())?;
            let p = repl.rt.peer_mut(peer.as_str()).unwrap();
            let id = p
                .rules()
                .get(idx)
                .map(|e| e.id)
                .ok_or_else(|| format!("no rule at index {idx}"))?;
            let removed = p.remove_rule(id).map_err(|e| e.to_string())?;
            println!("removed: {}", parser::pretty::rule(&removed));
            Ok(())
        }
        "query" => {
            let peer = current(repl)?;
            let body = parser::parse_query(rest).map_err(|e| e.to_string())?;
            let rows = repl
                .rt
                .peer(peer.as_str())
                .unwrap()
                .query(&body)
                .map_err(|e| e.to_string())?;
            for s in &rows {
                println!("  {s:?}");
            }
            println!("{} row(s)", rows.len());
            Ok(())
        }
        "show" => {
            let peer = current(repl)?;
            let p = repl.rt.peer(peer.as_str()).unwrap();
            for f in p.facts_of(rest) {
                println!("  {f}");
            }
            Ok(())
        }
        "pending" => {
            let peer = current(repl)?;
            let p = repl.rt.peer(peer.as_str()).unwrap();
            for (i, pd) in p.pending_delegations().iter().enumerate() {
                println!(
                    "  [{i}] from {}: {}",
                    pd.delegation.origin,
                    parser::pretty::rule(&pd.delegation.rule)
                );
            }
            Ok(())
        }
        "approve" | "reject" => {
            let peer = current(repl)?;
            let idx: usize = rest.parse().map_err(|_| format!("usage: {cmd} <idx>"))?;
            let p = repl.rt.peer_mut(peer.as_str()).unwrap();
            let id = p
                .pending_delegations()
                .get(idx)
                .map(|pd| pd.delegation.id)
                .ok_or_else(|| format!("no pending delegation at index {idx}"))?;
            if cmd == "approve" {
                p.approve_delegation(id).map_err(|e| e.to_string())?;
                println!("approved — effective next stage");
            } else {
                p.reject_delegation(id).map_err(|e| e.to_string())?;
                println!("rejected");
            }
            Ok(())
        }
        "trust" => {
            let peer = current(repl)?;
            repl.rt
                .peer_mut(peer.as_str())
                .unwrap()
                .acl_mut()
                .trust(rest);
            println!("{peer} now trusts {rest}");
            Ok(())
        }
        "check" => {
            let peers: Vec<&Peer> = repl
                .rt
                .peer_names()
                .iter()
                .filter_map(|&n| repl.rt.peer(n))
                .collect();
            if peers.is_empty() {
                return Err("no peers to check — `peer <name>` first".into());
            }
            let report = wdl_analyze::Analyzer::from_peers(peers).analyze();
            for d in &report.diagnostics {
                println!("  {d}");
            }
            match report.delegation_depth {
                Some(depth) => println!("delegation depth bounded by {depth}"),
                None => println!("delegation depth unbounded (installation may cycle)"),
            }
            let errors = report.errors().count();
            println!(
                "{} diagnostic(s), {} error(s)",
                report.diagnostics.len(),
                errors
            );
            Ok(())
        }
        "run" => {
            let report = if rest.is_empty() {
                repl.rt.run_to_quiescence(64).map_err(|e| e.to_string())?
            } else {
                let n: usize = rest.parse().map_err(|_| "usage: run [n]".to_string())?;
                let mut acc = wdl_core::runtime::QuiescenceReport::default();
                for _ in 0..n {
                    let t = repl.rt.tick().map_err(|e| e.to_string())?;
                    acc.rounds += 1;
                    acc.messages += t.messages;
                }
                acc
            };
            println!(
                "ran {} round(s), {} message(s){}",
                report.rounds,
                report.messages,
                if report.quiescent { ", quiescent" } else { "" }
            );
            Ok(())
        }
        "stats" | "report" => {
            let peer = current(repl)?;
            let p = repl.rt.peer(peer.as_str()).unwrap();
            let s = p.last_stage_stats();
            let e = p.cumulative_eval_stats();
            println!(
                "last stage #{}: {} msg(s) in, {} update(s) applied, {} fixpoint round(s), \
                 {} derivation(s), {} fact msg(s) out, {} delegation(s), {} revocation(s), \
                 {} rejected, {} blocked read(s)",
                s.stage,
                s.ingested_messages,
                s.applied_updates,
                s.fixpoint_rounds,
                s.derivations,
                s.facts_out,
                s.delegations_out,
                s.revocations_out,
                s.rejected,
                s.reads_blocked,
            );
            println!(
                "cumulative: {} iteration(s), {} derivation(s), {} new fact(s)",
                e.iterations, e.derivations, e.facts_derived
            );
            Ok(())
        }
        "profile" => match rest {
            "on" => {
                repl.rt.set_tracing(true);
                println!("profiling on — events aggregate every `run` (resumes any earlier data)");
                Ok(())
            }
            "off" => {
                repl.rt.set_tracing(false);
                println!("profiling off — collected results remain queryable");
                Ok(())
            }
            "reset" => {
                repl.rt.reset_trace();
                println!("profile data discarded");
                Ok(())
            }
            _ => Err("usage: profile on|off|reset".into()),
        },
        "top" => {
            let k: usize = if rest.is_empty() {
                10
            } else {
                rest.parse().map_err(|_| "usage: top [k]".to_string())?
            };
            let agg = repl.rt.trace().ok_or("no profile — `profile on` first")?;
            println!(
                "{:<28} {:>8} {:>12} {:>10} {:>10} {:>10}",
                "rule", "calls", "total ms", "mean µs", "p99 µs", "derived"
            );
            for (label, stat) in agg.top_rules(k) {
                println!(
                    "{:<28} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10}",
                    label.to_string(),
                    stat.hist.count(),
                    stat.hist.sum_ns() as f64 / 1e6,
                    stat.hist.mean_ns() as f64 / 1e3,
                    stat.hist.quantile_ns(0.99) as f64 / 1e3,
                    stat.derived,
                );
            }
            Ok(())
        }
        "critpath" => {
            let k: usize = if rest.is_empty() {
                1
            } else {
                rest.parse()
                    .map_err(|_| "usage: critpath [k]".to_string())?
            };
            let agg = repl.rt.trace().ok_or("no profile — `profile on` first")?;
            let paths = agg.critical_paths(k);
            if paths.is_empty() {
                println!("no stage executions recorded yet");
            }
            for (i, path) in paths.iter().enumerate() {
                let chain: Vec<String> = path
                    .nodes
                    .iter()
                    .map(|n| format!("{}@{}({:.3}ms)", n.peer, n.stage, n.dur_ns as f64 / 1e6))
                    .collect();
                println!(
                    "[{i}] {:.3}ms over {} stage(s): {}",
                    path.total_ns as f64 / 1e6,
                    path.nodes.len(),
                    chain.join(" -> ")
                );
            }
            Ok(())
        }
        "trace" => {
            let file = rest
                .strip_prefix("dump")
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .ok_or("usage: trace dump <file>")?;
            let agg = repl.rt.trace().ok_or("no profile — `profile on` first")?;
            let mut out =
                std::io::BufWriter::new(std::fs::File::create(file).map_err(|e| e.to_string())?);
            agg.export_jsonl(&mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            println!("wrote trace aggregate to {file}");
            Ok(())
        }
        "save" => {
            let peer = current(repl)?;
            let p = repl.rt.peer(peer.as_str()).unwrap();
            wdl_net::snapshot::save_to_file(p, rest).map_err(|e| e.to_string())?;
            println!("saved {peer} to {rest}");
            Ok(())
        }
        "restore" => {
            let p = wdl_net::snapshot::load_from_file(rest).map_err(|e| e.to_string())?;
            let name = p.name().to_string();
            if repl.rt.peer(name.as_str()).is_some() {
                repl.rt.remove_peer(name.as_str());
            }
            repl.rt.add_peer(p).unwrap();
            repl.current = Some(name.clone());
            println!("restored peer {name}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` — try `help`")),
    }
}

fn current(repl: &Repl) -> Result<String, String> {
    repl.current
        .clone()
        .ok_or_else(|| "no current peer — `peer <name>` first".into())
}

fn ensure_semi(s: &str) -> String {
    let t = s.trim();
    if t.ends_with(';') {
        t.to_string()
    } else {
        format!("{t};")
    }
}
