//! Synthetic picture corpus (substitution for the attendees' real photos).
//!
//! Deterministic, seeded generation: names, binary contents, and a skewed
//! rating distribution (most pictures unrated, a few highly rated — what a
//! conference crowd actually produces).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A picture as the Wepic relations store it: `(id, name, owner, data)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Picture {
    /// Globally unique id.
    pub id: i64,
    /// File name.
    pub name: String,
    /// Owner (attendee peer name).
    pub owner: String,
    /// Binary contents.
    pub data: Vec<u8>,
}

impl Picture {
    /// The `pictures/4` relation row for this picture — the single place
    /// that defines the column order. The payload is cloned once here and
    /// interned once on insert (the engine's value interner dedupes
    /// repeated inserts of the same blob to an id compare).
    pub fn to_values(&self) -> Vec<wdl_datalog::Value> {
        use wdl_datalog::Value;
        vec![
            Value::from(self.id),
            Value::from(self.name.as_str()),
            Value::from(self.owner.as_str()),
            Value::from(self.data.clone()),
        ]
    }
}

/// A deterministic corpus generator.
pub struct PictureCorpus {
    rng: StdRng,
    next_id: i64,
}

impl PictureCorpus {
    /// New generator with a seed (same seed → same corpus).
    pub fn new(seed: u64) -> PictureCorpus {
        PictureCorpus {
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
        }
    }

    /// Generates `n` pictures owned by `owner`, each with `payload_size`
    /// bytes of content.
    pub fn pictures(&mut self, owner: &str, n: usize, payload_size: usize) -> Vec<Picture> {
        (0..n)
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                let mut data = vec![0u8; payload_size];
                self.rng.fill(&mut data[..]);
                Picture {
                    id,
                    name: format!("img_{id:05}.jpg"),
                    owner: owner.to_string(),
                    data,
                }
            })
            .collect()
    }

    /// Draws a rating in 1..=5 with a skew toward the extremes (people rate
    /// what they love or hate). Used by workload generators.
    pub fn rating(&mut self) -> i64 {
        // weights: 1:★ 2:★★ ... — 30% fives, 25% fours, 20% ones.
        let roll: f64 = self.rng.gen();
        match roll {
            r if r < 0.30 => 5,
            r if r < 0.55 => 4,
            r if r < 0.70 => 3,
            r if r < 0.80 => 2,
            _ => 1,
        }
    }

    /// Draws `k` distinct indexes in `0..n` (for selecting pictures to rate
    /// or transfer). `k` is clamped to `n`.
    pub fn sample_indexes(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates.
        for i in 0..k {
            let j = self.rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let mut a = PictureCorpus::new(42);
        let mut b = PictureCorpus::new(42);
        assert_eq!(a.pictures("x", 5, 16), b.pictures("x", 5, 16));
    }

    #[test]
    fn ids_are_unique_across_owners() {
        let mut c = PictureCorpus::new(1);
        let p1 = c.pictures("a", 3, 4);
        let p2 = c.pictures("b", 3, 4);
        let mut ids: Vec<i64> = p1.iter().chain(p2.iter()).map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn ratings_in_range_and_skewed() {
        let mut c = PictureCorpus::new(7);
        let ratings: Vec<i64> = (0..1000).map(|_| c.rating()).collect();
        assert!(ratings.iter().all(|r| (1..=5).contains(r)));
        let fives = ratings.iter().filter(|&&r| r == 5).count();
        let threes = ratings.iter().filter(|&&r| r == 3).count();
        assert!(fives > threes, "distribution should favor fives");
    }

    #[test]
    fn sample_indexes_distinct_and_bounded() {
        let mut c = PictureCorpus::new(9);
        let s = c.sample_indexes(10, 4);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        assert!(s.iter().all(|&i| i < 10));
        assert_eq!(c.sample_indexes(3, 99).len(), 3, "k clamps to n");
    }
}
