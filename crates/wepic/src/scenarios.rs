//! Seeded Wepic scenarios for the distributed simulation harness.
//!
//! Each generator turns a `u64` seed into a [`Scenario`] — peers, rules,
//! and scripted mutation batches over the synthetic picture corpus — that
//! `wdl_net::sim::oracle` can grade under arbitrary fault plans. The
//! scenarios cover the demo's semantics end to end: delegation fan-out,
//! churn with revocation and retraction, relation-grant access control,
//! the protocol-dispatch transfer rule, and the multi-hop publish chain.
//!
//! Scenario peers use fixed names (prefixed per scenario), so the same
//! seed always builds the same system; all size variation comes from the
//! seeded corpus generator.

use crate::corpus::{Picture, PictureCorpus};
use crate::{rules, schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdl_core::acl::UntrustedPolicy;
use wdl_core::Peer;
use wdl_datalog::{Symbol, Value};
use wdl_net::sim::oracle::Scenario;
use wdl_net::sim::SimOp;

fn open_attendee(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    schema::declare_attendee(&mut p).expect("attendee schema");
    p
}

fn pic_tuple(p: &Picture) -> Vec<Value> {
    vec![
        Value::from(p.id),
        Value::from(p.name.as_str()),
        Value::from(p.owner.as_str()),
        Value::bytes(&p.data),
    ]
}

fn insert(rel: &str, tuple: Vec<Value>) -> SimOp {
    SimOp::Insert {
        rel: Symbol::intern(rel),
        tuple,
    }
}

fn delete(rel: &str, tuple: Vec<Value>) -> SimOp {
    SimOp::Delete {
        rel: Symbol::intern(rel),
        tuple,
    }
}

/// The paper's §3 view: one viewer delegates `attendeePictures` to a
/// seeded number of attendees; pictures keep arriving after the
/// delegations are installed. Monotone (insert-only), so the oracle's
/// subset and (under lossless plans) equality checks both apply; the
/// attendees are crash-safe sources.
pub fn delegation_fanout(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_att = rng.gen_range(2..=3usize);
    let per_batch = rng.gen_range(2..=3usize);
    let viewer = "fanViewer".to_string();
    let attendees: Vec<String> = (0..n_att).map(|i| format!("fanAtt{i}")).collect();

    let mut corpus = PictureCorpus::new(seed);
    let mut batch0 = Vec::new();
    let mut batch2 = Vec::new();
    for a in &attendees {
        for p in corpus.pictures(a, per_batch, 8) {
            batch0.push((Symbol::intern(a), insert("pictures", pic_tuple(&p))));
        }
        for p in corpus.pictures(a, per_batch, 8) {
            batch2.push((Symbol::intern(a), insert("pictures", pic_tuple(&p))));
        }
    }
    let batch1 = attendees
        .iter()
        .map(|a| {
            (
                Symbol::intern(&viewer),
                insert("selectedAttendee", vec![Value::from(a.as_str())]),
            )
        })
        .collect();

    let build_viewer = viewer.clone();
    let build_attendees = attendees.clone();
    Scenario {
        name: format!("delegation-fanout/{n_att}x{per_batch}"),
        additive: true,
        crashable: attendees.iter().map(|a| Symbol::intern(a)).collect(),
        watched: vec![(Symbol::intern(&viewer), Symbol::intern("attendeePictures"))],
        build: Box::new(move || {
            let mut v = open_attendee(&build_viewer);
            v.add_rule(rules::attendee_pictures(&build_viewer).unwrap())
                .unwrap();
            let mut peers = vec![v];
            peers.extend(build_attendees.iter().map(|a| open_attendee(a)));
            peers
        }),
        batches: vec![batch0, batch1, batch2],
    }
}

/// Fan-out plus churn: an attendee is deselected (revoking the delegation
/// and retracting its contributions), a picture is deleted (the
/// retraction propagates through the installed rule), and the attendee is
/// re-selected. Retractions make the workload non-monotone: the equality
/// oracle requires an ordered (TCP-like) plan, and lossy runs are graded
/// on universe membership only.
pub fn delegation_churn(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_C0DE);
    let per = rng.gen_range(2..=4usize);
    let viewer = "churnViewer".to_string();
    let attendees = vec!["churnAtt0".to_string(), "churnAtt1".to_string()];

    let mut corpus = PictureCorpus::new(seed);
    let pics0 = corpus.pictures(&attendees[0], per, 8);
    let pics1 = corpus.pictures(&attendees[1], per, 8);

    let mut batch0: Vec<(Symbol, SimOp)> = Vec::new();
    for p in &pics0 {
        batch0.push((
            Symbol::intern(&attendees[0]),
            insert("pictures", pic_tuple(p)),
        ));
    }
    for p in &pics1 {
        batch0.push((
            Symbol::intern(&attendees[1]),
            insert("pictures", pic_tuple(p)),
        ));
    }
    let batch1 = attendees
        .iter()
        .map(|a| {
            (
                Symbol::intern(&viewer),
                insert("selectedAttendee", vec![Value::from(a.as_str())]),
            )
        })
        .collect();
    // Deselect attendee 0 (revocation) and retract one of attendee 1's
    // pictures (remote retraction through the installed delegation).
    let victim = &pics1[rng.gen_range(0..pics1.len())];
    let batch2 = vec![
        (
            Symbol::intern(&viewer),
            delete("selectedAttendee", vec![Value::from(attendees[0].as_str())]),
        ),
        (
            Symbol::intern(&attendees[1]),
            delete("pictures", pic_tuple(victim)),
        ),
    ];
    // Re-select attendee 0: the rule re-delegates and its pictures return.
    let batch3 = vec![(
        Symbol::intern(&viewer),
        insert("selectedAttendee", vec![Value::from(attendees[0].as_str())]),
    )];

    let build_viewer = viewer.clone();
    let build_attendees = attendees.clone();
    Scenario {
        name: format!("delegation-churn/{per}"),
        additive: false,
        crashable: Vec::new(),
        watched: vec![(Symbol::intern(&viewer), Symbol::intern("attendeePictures"))],
        build: Box::new(move || {
            let mut v = open_attendee(&build_viewer);
            v.add_rule(rules::attendee_pictures(&build_viewer).unwrap())
                .unwrap();
            let mut peers = vec![v];
            peers.extend(build_attendees.iter().map(|a| open_attendee(a)));
            peers
        }),
        batches: vec![batch0, batch1, batch2, batch3],
    }
}

/// The access-control cut of the fan-out: both attendees restrict reads
/// on `pictures`, but only the first grants the viewer. The delegated
/// rule is blocked at the second attendee, so the lossless outcome
/// contains the first attendee's pictures only — and the oracle verifies
/// faults never leak the restricted ones.
pub fn acl_restricted(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAC_1AC1);
    let per = rng.gen_range(2..=4usize);
    let viewer = "aclViewer".to_string();
    let granting = "aclOpen".to_string();
    let restricted = "aclClosed".to_string();

    let mut corpus = PictureCorpus::new(seed);
    let mut batch0 = Vec::new();
    for p in corpus.pictures(&granting, per, 8) {
        batch0.push((Symbol::intern(&granting), insert("pictures", pic_tuple(&p))));
    }
    for p in corpus.pictures(&restricted, per, 8) {
        batch0.push((
            Symbol::intern(&restricted),
            insert("pictures", pic_tuple(&p)),
        ));
    }
    let batch1 = vec![
        (
            Symbol::intern(&viewer),
            insert("selectedAttendee", vec![Value::from(granting.as_str())]),
        ),
        (
            Symbol::intern(&viewer),
            insert("selectedAttendee", vec![Value::from(restricted.as_str())]),
        ),
    ];

    let b_viewer = viewer.clone();
    let b_granting = granting.clone();
    let b_restricted = restricted.clone();
    Scenario {
        name: format!("acl-restricted/{per}"),
        additive: true,
        crashable: vec![Symbol::intern(&granting), Symbol::intern(&restricted)],
        watched: vec![(Symbol::intern(&viewer), Symbol::intern("attendeePictures"))],
        build: Box::new(move || {
            let mut v = open_attendee(&b_viewer);
            v.add_rule(rules::attendee_pictures(&b_viewer).unwrap())
                .unwrap();
            let mut open = open_attendee(&b_granting);
            open.grants_mut().restrict_read("pictures");
            open.grants_mut().grant_read("pictures", b_viewer.as_str());
            let mut closed = open_attendee(&b_restricted);
            closed.grants_mut().restrict_read("pictures");
            vec![v, open, closed]
        }),
        batches: vec![batch0, batch1],
    }
}

/// The §3 transfer rule: the sender's protocol-dispatch rule routes
/// selected pictures into the receiver's `wepicInbox` (an extensional
/// relation, so deliveries are monotone insertions). Both sides are
/// crash-safe: inbox facts and `communicate` are durable, and a restarted
/// sender re-sends its diffs from scratch.
pub fn transfer_dispatch(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A4E_5FE2);
    let k = rng.gen_range(2..=4usize);
    let sender = "xferSender".to_string();
    let receiver = "xferReceiver".to_string();

    let mut corpus = PictureCorpus::new(seed);
    let pics = corpus.pictures(&sender, k, 8);
    let batch0 = vec![
        (
            Symbol::intern(&receiver),
            insert("communicate", vec![Value::from("wepicInbox")]),
        ),
        (
            Symbol::intern(&sender),
            insert("selectedAttendee", vec![Value::from(receiver.as_str())]),
        ),
    ];
    let batch1 = pics
        .iter()
        .map(|p| {
            (
                Symbol::intern(&sender),
                insert(
                    "selectedPictures",
                    vec![
                        Value::from(p.name.as_str()),
                        Value::from(p.id),
                        Value::from(p.owner.as_str()),
                    ],
                ),
            )
        })
        .collect();

    let b_sender = sender.clone();
    let b_receiver = receiver.clone();
    Scenario {
        name: format!("transfer-dispatch/{k}"),
        additive: true,
        crashable: vec![Symbol::intern(&sender), Symbol::intern(&receiver)],
        watched: vec![(Symbol::intern(&receiver), Symbol::intern("wepicInbox"))],
        build: Box::new(move || {
            let mut s = open_attendee(&b_sender);
            s.add_rule(rules::transfer(&b_sender).unwrap()).unwrap();
            let r = open_attendee(&b_receiver);
            vec![s, r]
        }),
        batches: vec![batch0, batch1],
    }
}

/// The §4 publish chain: every attendee's uploads flow to the sigmod
/// peer's extensional `pictures` registry — the multi-hop, multi-writer
/// scenario. Monotone; every peer is crash-safe (the registry is
/// durable and senders re-send on restart).
pub fn publish_chain(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9B_C4A1);
    let n_att = rng.gen_range(2..=3usize);
    let per = rng.gen_range(2..=3usize);
    let sigmod = "chainSigmod".to_string();
    let attendees: Vec<String> = (0..n_att).map(|i| format!("chainAtt{i}")).collect();

    let mut corpus = PictureCorpus::new(seed);
    let mut batch0 = Vec::new();
    let mut batch1 = Vec::new();
    for a in &attendees {
        for p in corpus.pictures(a, per, 8) {
            batch0.push((Symbol::intern(a), insert("pictures", pic_tuple(&p))));
        }
        for p in corpus.pictures(a, per, 8) {
            batch1.push((Symbol::intern(a), insert("pictures", pic_tuple(&p))));
        }
    }

    let b_sigmod = sigmod.clone();
    let b_attendees = attendees.clone();
    let mut crashable: Vec<Symbol> = attendees.iter().map(|a| Symbol::intern(a)).collect();
    crashable.push(Symbol::intern(&sigmod));
    Scenario {
        name: format!("publish-chain/{n_att}x{per}"),
        additive: true,
        crashable,
        watched: vec![(Symbol::intern(&sigmod), Symbol::intern("pictures"))],
        build: Box::new(move || {
            let mut s = Peer::new(b_sigmod.as_str());
            s.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
            schema::declare_sigmod(&mut s).expect("sigmod schema");
            let mut peers = vec![s];
            for a in &b_attendees {
                let mut p = open_attendee(a);
                p.add_rule(rules::publish_to_sigmod(a, &b_sigmod).unwrap())
                    .unwrap();
                peers.push(p);
            }
            peers
        }),
        batches: vec![batch0, batch1],
    }
}

/// The scale-out macro-workload behind the `e14_scale` bench: `total`
/// attendee peers each carry the §4 publish rule into one hub registry,
/// but only `active` of them (an evenly-spread, seed-chosen subset) ever
/// upload pictures. The interesting property is the ratio — a runtime
/// that schedules by inbox should pay for the hundreds of publishers, not
/// the `total` registered peers. Attendees are deliberately lean (no full
/// attendee schema): at 10⁵–10⁶ peers, per-peer constant costs dominate
/// everything else.
///
/// Monotone (insert-only), so the oracle's equality check applies to
/// lossless runs. Each of the `n_batches` batches uploads `per` pictures
/// from every active attendee.
pub fn publish_burst(
    seed: u64,
    total: usize,
    active: usize,
    per: usize,
    n_batches: usize,
) -> Scenario {
    use wdl_core::{NameTerm, WAtom, WRule};
    use wdl_datalog::Term;

    let active = active.clamp(1, total.max(1));
    let hub = "burstHub".to_string();
    // Spread the active publishers across the peer-id space. The `i %
    // stride` skew keeps consecutive ids off a common residue class —
    // plain `i * stride` would park every publisher on the same shard of
    // any runtime that assigns round-robin by insertion order whenever
    // the shard count divides the stride. Injective (id / stride == i)
    // and bounded (< active * stride <= total).
    let stride = (total / active).max(1);
    let active_ids: Vec<usize> = (0..active).map(|i| i * stride + i % stride).collect();

    let mut corpus = PictureCorpus::new(seed);
    let mut batches = Vec::with_capacity(n_batches);
    for _ in 0..n_batches {
        let mut batch = Vec::with_capacity(active * per);
        for &i in &active_ids {
            let name = format!("burstAtt{i}");
            for p in corpus.pictures(&name, per, 8) {
                batch.push((Symbol::intern(&name), insert("pictures", pic_tuple(&p))));
            }
        }
        batches.push(batch);
    }

    // Constructed directly (not parsed): building 10⁵ peers must not pay
    // a parser round trip per peer.
    let publish_rule = |me: &str, hub: &str| {
        let args = || {
            vec![
                Term::var("id"),
                Term::var("name"),
                Term::var("owner"),
                Term::var("data"),
            ]
        };
        WRule::new(
            WAtom::new(NameTerm::name("pictures"), NameTerm::name(hub), args()),
            vec![WAtom::new(NameTerm::name("pictures"), NameTerm::name(me), args()).into()],
        )
    };

    let b_hub = hub.clone();
    Scenario {
        name: format!("publish-burst/{total}x{active}"),
        additive: true,
        crashable: Vec::new(),
        watched: vec![(Symbol::intern(&hub), Symbol::intern("pictures"))],
        build: Box::new(move || {
            let mut h = Peer::new(b_hub.as_str());
            h.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
            schema::declare_sigmod(&mut h).expect("sigmod schema");
            let mut peers = Vec::with_capacity(total + 1);
            peers.push(h);
            for i in 0..total {
                let name = format!("burstAtt{i}");
                let mut p = Peer::new(name.as_str());
                p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
                p.add_rule(publish_rule(&name, &b_hub))
                    .expect("publish rule");
                peers.push(p);
            }
            peers
        }),
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for f in [
            delegation_fanout as fn(u64) -> Scenario,
            delegation_churn,
            acl_restricted,
            transfer_dispatch,
            publish_chain,
        ] {
            let a = f(7);
            let b = f(7);
            assert_eq!(a.name, b.name);
            assert_eq!(a.batches.len(), b.batches.len());
            for (x, y) in a.batches.iter().zip(&b.batches) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn references_compute_expected_shapes() {
        let r = delegation_fanout(3).reference().unwrap();
        let watch = delegation_fanout(3).watched[0];
        assert!(
            !r.final_state[&watch].is_empty(),
            "fan-out view fills: {r:?}"
        );

        let r = acl_restricted(3).reference().unwrap();
        let watch = acl_restricted(3).watched[0];
        let visible = &r.final_state[&watch];
        assert!(!visible.is_empty(), "granted pictures flow");
        assert!(
            visible.iter().all(|t| t[2] == Value::from("aclOpen")),
            "restricted attendee leaks nothing: {visible:?}"
        );

        let r = transfer_dispatch(3).reference().unwrap();
        let watch = transfer_dispatch(3).watched[0];
        assert!(!r.final_state[&watch].is_empty(), "inbox fills");

        let r = publish_chain(3).reference().unwrap();
        let watch = publish_chain(3).watched[0];
        assert!(!r.final_state[&watch].is_empty(), "registry fills");
    }

    #[test]
    fn publish_burst_is_deterministic_and_fills_hub() {
        let a = publish_burst(11, 40, 4, 2, 2);
        let b = publish_burst(11, 40, 4, 2, 2);
        assert_eq!(a.name, b.name);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.batches.len(), 2);
        assert_eq!(a.batches[0].len(), 4 * 2);

        let r = a.reference().unwrap();
        let watch = a.watched[0];
        assert_eq!(
            r.final_state[&watch].len(),
            4 * 2 * 2,
            "every active attendee's uploads land in the registry"
        );
    }

    #[test]
    fn churn_reference_shrinks_then_recovers() {
        let sc = delegation_churn(5);
        let r = sc.reference().unwrap();
        let watch = sc.watched[0];
        // Final state: attendee0 re-selected, one of attendee1's pictures
        // gone — so smaller than the universe but non-empty.
        assert!(!r.final_state[&watch].is_empty());
        assert!(r.final_state[&watch].len() < r.universe[&watch].len());
    }
}
