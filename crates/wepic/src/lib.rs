//! # wepic — the conference picture-sharing application (paper §3–§4)
//!
//! Wepic is the demo application of the paper: *"a conference picture
//! manager for the sigmod conference ... attendees share their pictures and
//! rate, annotate and download the pictures of others"*. It is specified as
//! a small set of WebdamLog rules over a handful of relations — this crate
//! contains those rules verbatim (as parser text), the relation schema, the
//! application-level operations the demo GUI exposed (upload, select,
//! transfer, annotate, rank, customize rules), and the full three-peer
//! conference setup of Figure 2 ([`Conference`]).
//!
//! Functions of the paper's §3, and where they live here:
//!
//! 1. *Upload a picture from a file or a URL* — [`ops::upload_picture`].
//! 2. *View pictures provided by a particular attendee* —
//!    [`ops::select_attendee`] + the `attendeePictures` delegation rule.
//! 3. *Transfer pictures (email / Facebook / Wepic peer)* —
//!    [`ops::select_picture`], [`ops::set_protocol`] + the
//!    `$protocol@$attendee(...)` dispatch rule.
//! 4. *Annotate with ratings, comments, name tags* — [`ops::rate`],
//!    [`ops::comment`], [`ops::tag`].
//! 5. *Select and rank photos based on annotations* — [`ops::top_rated`]
//!    and the rating-filter rule customization ([`rules::rating_filter`]).
//!
//! The GUI of Figures 1 and 3 is replaced by this programmatic API plus the
//! runnable examples at the workspace root (see `examples/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conference;
pub mod corpus;
pub mod ops;
pub mod rules;
pub mod scenarios;
pub mod schema;

pub use conference::{Conference, ConferenceConfig, SettleReport};
pub use corpus::{Picture, PictureCorpus};
