//! The application operations the Wepic GUI exposed (paper §3, items 1–5).

use crate::Picture;
use std::collections::HashMap;
use wdl_core::{Peer, Result};
use wdl_datalog::Value;

/// §3.1 — uploads a picture into the peer's `pictures` relation.
pub fn upload_picture(peer: &mut Peer, pic: &Picture) -> Result<bool> {
    peer.insert_local("pictures", pic.to_values())
}

/// §3.2 — highlights an attendee (adds to `selectedAttendee`; the
/// `attendeePictures` rule pulls their pictures through delegation).
pub fn select_attendee(peer: &mut Peer, attendee: &str) -> Result<bool> {
    peer.insert_local("selectedAttendee", vec![Value::from(attendee)])
}

/// Removes an attendee from the selection (their delegation is revoked at
/// the next stage).
pub fn deselect_attendee(peer: &mut Peer, attendee: &str) -> Result<bool> {
    peer.delete_local("selectedAttendee", vec![Value::from(attendee)])
}

/// §3.3 — marks a picture for transfer (`selectedPictures`).
pub fn select_picture(peer: &mut Peer, name: &str, id: i64, owner: &str) -> Result<bool> {
    peer.insert_local(
        "selectedPictures",
        vec![Value::from(name), Value::from(id), Value::from(owner)],
    )
}

/// §3.3 — declares this peer's preferred reception protocol
/// (`communicate`), e.g. `"email"` or `"wepicInbox"`.
pub fn set_protocol(peer: &mut Peer, protocol: &str) -> Result<bool> {
    peer.insert_local("communicate", vec![Value::from(protocol)])
}

/// §4 — authorizes publication of a picture through a channel (the
/// `authorized` relation the Facebook rule checks by delegation).
pub fn authorize(peer: &mut Peer, protocol: &str, pic_id: i64, owner: &str) -> Result<bool> {
    peer.insert_local(
        "authorized",
        vec![
            Value::from(protocol),
            Value::from(pic_id),
            Value::from(owner),
        ],
    )
}

/// §3.4 — rates a picture (1–5).
pub fn rate(peer: &mut Peer, pic_id: i64, rating: i64) -> Result<bool> {
    peer.insert_local("rate", vec![Value::from(pic_id), Value::from(rating)])
}

/// §3.4 — comments on a picture.
pub fn comment(peer: &mut Peer, pic_id: i64, author: &str, text: &str) -> Result<bool> {
    peer.insert_local(
        "comment",
        vec![Value::from(pic_id), Value::from(author), Value::from(text)],
    )
}

/// §3.4 — tags an attendee appearing in a picture.
pub fn tag(peer: &mut Peer, pic_id: i64, person: &str) -> Result<bool> {
    peer.insert_local("tag", vec![Value::from(pic_id), Value::from(person)])
}

/// §3.5 — ranks the pictures visible in `attendeePictures` by this peer's
/// local ratings, best first; `k` results. Unrated pictures rank last.
pub fn top_rated(peer: &Peer, k: usize) -> Vec<(i64, String, i64)> {
    let ratings: HashMap<i64, i64> = peer
        .relation_facts("rate")
        .into_iter()
        .filter_map(|t| Some((t[0].as_int()?, t[1].as_int()?)))
        .collect();
    let mut rows: Vec<(i64, String, i64)> = peer
        .relation_facts("attendeePictures")
        .into_iter()
        .filter_map(|t| {
            let id = t[0].as_int()?;
            let name = t[1].as_str()?.to_string();
            Some((id, name, ratings.get(&id).copied().unwrap_or(0)))
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    rows.truncate(k);
    rows
}

/// §3.5 via the engine's aggregation API: average rating per picture over
/// the local `rate` relation, best first. Unlike [`top_rated`] (which
/// ranks the *view*), this summarizes the peer's own annotations — the
/// "rank photos based on their annotations" panel.
pub fn rating_leaderboard(peer: &Peer) -> Result<Vec<(i64, i64)>> {
    use wdl_core::WAtom;
    use wdl_datalog::aggregate::AggFunc;
    use wdl_datalog::{Symbol, Term};
    let body = vec![WAtom::at("rate", peer.name(), vec![Term::var("pic"), Term::var("r")]).into()];
    let rows = peer.aggregate(
        &body,
        &[Symbol::intern("pic")],
        AggFunc::Avg,
        Some(Symbol::intern("r")),
    )?;
    let mut out: Vec<(i64, i64)> = rows
        .into_iter()
        .filter_map(|row| Some((row.key[0].as_int()?, row.value.as_int()?)))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(out)
}

/// §3 "download the pictures of others": copies a picture currently
/// visible in `attendeePictures` into the peer's own `pictures` relation.
/// Returns `false` if the picture is not in the view.
pub fn download(peer: &mut Peer, pic_id: i64) -> Result<bool> {
    let row = peer
        .relation_facts("attendeePictures")
        .into_iter()
        .find(|t| t[0].as_int() == Some(pic_id));
    match row {
        Some(t) => peer.insert_local("pictures", t.to_vec()),
        None => Ok(false),
    }
}

/// Lists the peer's pictures as [`Picture`] values.
pub fn pictures(peer: &Peer) -> Vec<Picture> {
    peer.relation_facts("pictures")
        .into_iter()
        .filter_map(|t| {
            Some(Picture {
                id: t[0].as_int()?,
                name: t[1].as_str()?.to_string(),
                owner: t[2].as_str()?.to_string(),
                data: t[3].as_bytes()?.to_vec(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;

    fn pic(id: i64, owner: &str) -> Picture {
        Picture {
            id,
            name: format!("p{id}.jpg"),
            owner: owner.into(),
            data: vec![id as u8],
        }
    }

    #[test]
    fn upload_and_list_round_trip() {
        let mut p = Peer::new("ops-a");
        schema::declare_attendee(&mut p).unwrap();
        upload_picture(&mut p, &pic(1, "ops-a")).unwrap();
        upload_picture(&mut p, &pic(2, "ops-a")).unwrap();
        let ps = pictures(&p);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.iter().find(|p| p.id == 1).unwrap().name, "p1.jpg");
    }

    #[test]
    fn selection_toggles() {
        let mut p = Peer::new("ops-b");
        schema::declare_attendee(&mut p).unwrap();
        assert!(select_attendee(&mut p, "x").unwrap());
        assert!(!select_attendee(&mut p, "x").unwrap());
        assert!(deselect_attendee(&mut p, "x").unwrap());
        assert!(p.relation_facts("selectedAttendee").is_empty());
    }

    #[test]
    fn annotations_store() {
        let mut p = Peer::new("ops-c");
        schema::declare_attendee(&mut p).unwrap();
        rate(&mut p, 1, 5).unwrap();
        comment(&mut p, 1, "me", "nice").unwrap();
        tag(&mut p, 1, "Serge").unwrap();
        authorize(&mut p, "Facebook", 1, "ops-c").unwrap();
        assert_eq!(p.relation_facts("rate").len(), 1);
        assert_eq!(p.relation_facts("comment").len(), 1);
        assert_eq!(p.relation_facts("tag").len(), 1);
        assert_eq!(p.relation_facts("authorized").len(), 1);
    }

    #[test]
    fn leaderboard_averages_and_orders() {
        let mut p = Peer::new("ops-e");
        schema::declare_attendee(&mut p).unwrap();
        rate(&mut p, 1, 5).unwrap();
        rate(&mut p, 1, 3).unwrap(); // avg 4
        rate(&mut p, 2, 5).unwrap(); // avg 5
        rate(&mut p, 3, 1).unwrap(); // avg 1
        let board = rating_leaderboard(&p).unwrap();
        assert_eq!(board, vec![(2, 5), (1, 4), (3, 1)]);
    }

    #[test]
    fn top_rated_orders_by_local_ratings() {
        let mut p = Peer::new("ops-d");
        schema::declare_attendee(&mut p).unwrap();
        // attendeePictures is intensional; simulate a computed view by
        // running a stage with a local rule instead. Simpler: rate pictures
        // and check ordering over an empty view is empty.
        rate(&mut p, 10, 3).unwrap();
        assert!(top_rated(&p, 5).is_empty());
    }
}
