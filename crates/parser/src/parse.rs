//! Recursive-descent parser producing `wdl-core` AST values.

use crate::lexer::{Lexer, Token, TokenKind};
use wdl_core::{NameTerm, RelationKind, WAtom, WBodyItem, WFact, WRule};
use wdl_datalog::{BinOp, CmpOp, Expr, Symbol, Term, Value};

/// A parse failure with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Line (1-based).
    pub line: usize,
    /// Column (1-based).
    pub col: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// One parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A ground fact, e.g. `pictures@sigmod(32, "sea.jpg");`.
    Fact(WFact),
    /// A rule, e.g. `v@p($x) :- r@p($x);`.
    Rule(WRule),
    /// A relation declaration, e.g. `extensional pictures@Jules/4;`.
    Declaration {
        /// Relation name.
        rel: Symbol,
        /// Hosting peer.
        peer: Symbol,
        /// Number of columns.
        arity: usize,
        /// Extensional or intensional.
        kind: RelationKind,
    },
}

/// A statement together with the source position (1-based line and
/// column) of its first token — what the static analyzer threads into
/// diagnostics so they render `file:line:col`.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedStatement {
    /// The parsed statement.
    pub statement: Statement,
    /// 1-based line of the statement's first token.
    pub line: usize,
    /// 1-based column of the statement's first token.
    pub col: usize,
}

/// Parses a whole program (a sequence of `;`-terminated statements).
pub fn parse_program(src: &str) -> Result<Vec<Statement>, ParseError> {
    Ok(parse_program_spanned(src)?
        .into_iter()
        .map(|s| s.statement)
        .collect())
}

/// [`parse_program`], but keeping each statement's source position.
pub fn parse_program_spanned(src: &str) -> Result<Vec<SpannedStatement>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_eof() {
        let start = p.peek();
        let (line, col) = (start.line, start.col);
        out.push(SpannedStatement {
            statement: p.statement()?,
            line,
            col,
        });
    }
    Ok(out)
}

/// Parses exactly one statement.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(src)?;
    let s = p.statement()?;
    p.expect_eof()?;
    Ok(s)
}

/// Parses a single rule.
pub fn parse_rule(src: &str) -> Result<WRule, ParseError> {
    match parse_statement(src)? {
        Statement::Rule(r) => Ok(r),
        other => Err(ParseError {
            message: format!("expected a rule, found {other:?}"),
            line: 1,
            col: 1,
        }),
    }
}

/// Parses a single ground fact.
pub fn parse_fact(src: &str) -> Result<WFact, ParseError> {
    match parse_statement(src)? {
        Statement::Fact(f) => Ok(f),
        other => Err(ParseError {
            message: format!("expected a fact, found {other:?}"),
            line: 1,
            col: 1,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: Lexer::new(src).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        let idx = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek_kind() == &TokenKind::Eof
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: msg.into(),
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, ParseError> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            Err(self.error_here(format!("expected {what}, found {:?}", self.peek_kind())))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error_here("expected end of input"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected {what}, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if let TokenKind::Ident(word) = self.peek_kind() {
            let kind = match word.as_str() {
                "extensional" => Some(RelationKind::Extensional),
                "intensional" => Some(RelationKind::Intensional),
                _ => None,
            };
            // Only a declaration if followed by `ident @` (so a relation
            // actually named `extensional` still parses as an atom).
            if let Some(kind) = kind {
                if matches!(self.peek2_kind(), TokenKind::Ident(_)) {
                    return self.declaration(kind);
                }
            }
        }
        let start = self.peek();
        let (line, col) = (start.line, start.col);
        let head = self.watom()?;
        match self.peek_kind() {
            TokenKind::Semi => {
                self.bump();
                let fact = self.atom_to_fact(head, line, col)?;
                Ok(Statement::Fact(fact))
            }
            TokenKind::Turnstile => {
                self.bump();
                let mut body = vec![self.body_item()?];
                while self.peek_kind() == &TokenKind::Comma {
                    self.bump();
                    body.push(self.body_item()?);
                }
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Statement::Rule(WRule::new(head, body)))
            }
            _ => Err(self.error_here("expected `;` (fact) or `:-` (rule)")),
        }
    }

    fn declaration(&mut self, kind: RelationKind) -> Result<Statement, ParseError> {
        self.bump(); // keyword
        let rel = self.ident("relation name")?;
        self.expect(TokenKind::At, "`@`")?;
        let peer = self.ident("peer name")?;
        self.expect(TokenKind::Slash, "`/`")?;
        let arity = match self.peek_kind().clone() {
            TokenKind::Int(n) if n >= 0 => {
                self.bump();
                n as usize
            }
            _ => return Err(self.error_here("expected a non-negative arity")),
        };
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(Statement::Declaration {
            rel: Symbol::intern(&rel),
            peer: Symbol::intern(&peer),
            arity,
            kind,
        })
    }

    /// `line`/`col` locate the statement's first token: the previously
    /// hardcoded `1:1` here misreported every fact error past the first
    /// line of a program.
    fn atom_to_fact(&self, atom: WAtom, line: usize, col: usize) -> Result<WFact, ParseError> {
        let (NameTerm::Name(rel), NameTerm::Name(peer)) = (atom.rel, atom.peer) else {
            return Err(ParseError {
                message: "facts cannot contain variables in name positions".into(),
                line,
                col,
            });
        };
        let mut values = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(v) => values.push(v.clone()),
                Term::Var(v) => {
                    return Err(ParseError {
                        message: format!("facts must be ground; found variable ${v}"),
                        line,
                        col,
                    })
                }
            }
        }
        Ok(WFact::new(rel, peer, values))
    }

    fn name_term(&mut self, what: &str) -> Result<NameTerm, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(NameTerm::name(s.as_str()))
            }
            TokenKind::Var(v) => {
                self.bump();
                Ok(NameTerm::var(v.as_str()))
            }
            other => Err(self.error_here(format!("expected {what}, found {other:?}"))),
        }
    }

    fn watom(&mut self) -> Result<WAtom, ParseError> {
        let rel = self.name_term("relation name or variable")?;
        self.expect(TokenKind::At, "`@`")?;
        let peer = self.name_term("peer name or variable")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            args.push(self.term()?);
            while self.peek_kind() == &TokenKind::Comma {
                self.bump();
                args.push(self.term()?);
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(WAtom::new(rel, peer, args))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Var(v) => {
                self.bump();
                Ok(Term::var(v.as_str()))
            }
            _ => Ok(Term::Const(self.value()?)),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Value::Int(n))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Value::str(&s))
            }
            TokenKind::Bytes(b) => {
                self.bump();
                Ok(Value::bytes(&b))
            }
            TokenKind::Ident(w) if w == "true" => {
                self.bump();
                Ok(Value::Bool(true))
            }
            TokenKind::Ident(w) if w == "false" => {
                self.bump();
                Ok(Value::Bool(false))
            }
            other => Err(self.error_here(format!("expected a value, found {other:?}"))),
        }
    }

    fn body_item(&mut self) -> Result<WBodyItem, ParseError> {
        // `not atom`
        if let TokenKind::Ident(w) = self.peek_kind() {
            if w == "not" {
                self.bump();
                let atom = self.watom()?;
                return Ok(WBodyItem::not_atom(atom));
            }
        }
        // Variable-led items need lookahead: `$x := e`, `$x == t`, `$r@p(...)`.
        if matches!(self.peek_kind(), TokenKind::Var(_)) {
            match self.peek2_kind() {
                TokenKind::At => {
                    let atom = self.watom()?;
                    return Ok(WBodyItem::atom(atom));
                }
                TokenKind::Bind => {
                    let TokenKind::Var(v) = self.bump().kind else {
                        unreachable!()
                    };
                    self.bump(); // :=
                    let expr = self.expr()?;
                    return Ok(WBodyItem::assign(v.as_str(), expr));
                }
                _ => {
                    let lhs = self.term()?;
                    let op = self.cmp_op()?;
                    let rhs = self.term()?;
                    return Ok(WBodyItem::cmp(op, lhs, rhs));
                }
            }
        }
        // Constant-led: either an atom `rel@peer(...)` or a comparison.
        if matches!(self.peek_kind(), TokenKind::Ident(_)) && self.peek2_kind() == &TokenKind::At {
            let atom = self.watom()?;
            return Ok(WBodyItem::atom(atom));
        }
        let lhs = self.term()?;
        let op = self.cmp_op()?;
        let rhs = self.term()?;
        Ok(WBodyItem::cmp(op, lhs, rhs))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek_kind() {
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(
                    self.error_here(format!("expected a comparison operator, found {other:?}"))
                )
            }
        };
        self.bump();
        Ok(op)
    }

    /// Additive level (`+ - ++`) over multiplicative (`* / %`).
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Concat => BinOp::Concat,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_atom()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_atom()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn expr_atom(&mut self) -> Result<Expr, ParseError> {
        if self.peek_kind() == &TokenKind::LParen {
            self.bump();
            let e = self.expr()?;
            self.expect(TokenKind::RParen, "`)`")?;
            return Ok(e);
        }
        Ok(Expr::Term(self.term()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_fact() {
        let f = parse_fact(r#"pictures@sigmod(32, "sea.jpg", "Emilien", 0x640000);"#).unwrap();
        assert_eq!(f.rel.as_str(), "pictures");
        assert_eq!(f.peer.as_str(), "sigmod");
        assert_eq!(f.arity(), 4);
        assert_eq!(f.tuple[3], Value::bytes(&[0x64, 0, 0]));
    }

    #[test]
    fn parse_paper_attendee_rule() {
        let r = parse_rule(
            "attendeePictures@Jules($id, $name, $owner, $data) :- \
             selectedAttendee@Jules($attendee), \
             pictures@$attendee($id, $name, $owner, $data);",
        )
        .unwrap();
        assert_eq!(r, WRule::example_attendee_pictures("Jules"));
    }

    #[test]
    fn parse_protocol_dispatch_rule() {
        let r = parse_rule(
            "$protocol@$attendee($attendee, $name, $id, $owner) :- \
             selectedAttendee@Jules($attendee), \
             communicate@$attendee($protocol), \
             selectedPictures@Jules($name, $id, $owner);",
        )
        .unwrap();
        assert!(r.head.rel.is_var());
        assert!(r.head.peer.is_var());
        assert_eq!(r.body.len(), 3);
        r.check_safety().unwrap();
    }

    #[test]
    fn parse_rating_customization() {
        let r = parse_rule(
            "attendeePictures@Jules($id, $n, $o, $d) :- \
             selectedAttendee@Jules($a), pictures@$a($id, $n, $o, $d), \
             rate@$o($id, $r), $r == 5;",
        )
        .unwrap();
        assert_eq!(r.body.len(), 4);
        assert!(matches!(r.body[3], WBodyItem::Cmp { op: CmpOp::Eq, .. }));
    }

    #[test]
    fn parse_negation() {
        let r = parse_rule("keep@me($x) :- item@me($x), not blocked@me($x);").unwrap();
        assert!(matches!(&r.body[1], WBodyItem::Literal(l) if l.negated));
    }

    #[test]
    fn parse_assignment_with_precedence() {
        let r = parse_rule("out@me($y) :- n@me($x), $y := $x + 2 * 3;").unwrap();
        let WBodyItem::Assign { expr, .. } = &r.body[1] else {
            panic!("expected assign");
        };
        // + binds looser than *
        assert_eq!(expr.to_string(), "($x + (2 * 3))");
    }

    #[test]
    fn parse_declarations() {
        let prog =
            parse_program("extensional pictures@Jules/4;\nintensional attendeePictures@Jules/4;")
                .unwrap();
        assert_eq!(prog.len(), 2);
        assert!(matches!(
            prog[0],
            Statement::Declaration {
                arity: 4,
                kind: RelationKind::Extensional,
                ..
            }
        ));
    }

    #[test]
    fn parse_program_with_comments() {
        let prog = parse_program(
            "// Wepic rules\n\
             pictures@jules(1, \"a.jpg\");\n\
             # derived view\n\
             all@jules($x) :- pictures@jules($x, $n);",
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn non_ground_fact_rejected() {
        assert!(parse_fact("pictures@sigmod($x);").is_err());
    }

    #[test]
    fn variable_peer_fact_rejected() {
        assert!(parse_statement("pictures@$p(1);").is_err());
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse_rule("v@p($x) :- r@p($x)").unwrap_err(); // missing ;
        assert!(err.to_string().contains("expected"));
        let err = parse_program("v@p(").unwrap_err();
        assert!(err.line >= 1);
    }

    #[test]
    fn spanned_statements_carry_positions() {
        // Note: the third statement is indented by two real spaces (a `\`
        // continuation would strip them from the literal).
        let src = concat!(
            "extensional pictures@Jules/2;\n",
            "pictures@Jules(1, \"a.jpg\");\n",
            "  all@Jules($x) :- pictures@Jules($x, $n);",
        );
        let prog = parse_program_spanned(src).unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!((prog[0].line, prog[0].col), (1, 1));
        assert_eq!((prog[1].line, prog[1].col), (2, 1));
        assert_eq!((prog[2].line, prog[2].col), (3, 3));
    }

    #[test]
    fn non_ground_fact_error_reports_its_line() {
        let err = parse_program("ok@me(1);\nbad@me($x);").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_program("ok@me(1);\npictures@$p(1);").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_args_atom() {
        let r = parse_rule("tick@me() :- tock@me();").unwrap();
        assert!(r.head.args.is_empty());
    }

    #[test]
    fn booleans_parse() {
        let f = parse_fact("flags@me(true, false);").unwrap();
        assert_eq!(f.tuple[0], Value::Bool(true));
        assert_eq!(f.tuple[1], Value::Bool(false));
    }

    #[test]
    fn relation_named_like_keyword_still_parses_as_atom() {
        // `extensional@me(1);` — "extensional" followed by `@`, not an ident,
        // so it is an atom, not a declaration.
        let f = parse_fact("extensional@me(1);").unwrap();
        assert_eq!(f.rel.as_str(), "extensional");
    }

    #[test]
    fn comparison_between_two_constants() {
        let r = parse_rule("out@me($x) :- n@me($x), 1 < 2;").unwrap();
        assert!(matches!(r.body[1], WBodyItem::Cmp { op: CmpOp::Lt, .. }));
    }
}
