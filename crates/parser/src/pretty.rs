//! Canonical pretty-printer: renders core AST values back into parseable
//! surface syntax. `parse(pretty(x)) == x` for facts, rules and programs.
//!
//! This is what the demo GUI's rule-inspection pane (Figure 3) prints; the
//! `Display` impls in `wdl-core` are for logs (they truncate blobs), while
//! this module is lossless.

use crate::Statement;
use wdl_core::{NameTerm, RelationKind, WAtom, WBodyItem, WFact, WRule};
use wdl_datalog::{Expr, Term, Value};

/// Renders a value losslessly.
pub fn value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    '\0' => out.push_str("\\0"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{{{:x}}}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        Value::Bytes(b) => {
            let mut out = String::with_capacity(2 + b.len() * 2);
            out.push_str("0x");
            for byte in b.iter() {
                out.push_str(&format!("{byte:02x}"));
            }
            out
        }
    }
}

/// Renders a term.
pub fn term(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("${v}"),
        Term::Const(c) => value(c),
    }
}

/// Renders a name term.
pub fn name_term(n: &NameTerm) -> String {
    match n {
        NameTerm::Name(s) => s.to_string(),
        NameTerm::Var(v) => format!("${v}"),
    }
}

/// Renders an expression (fully parenthesized; reparses identically).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Term(t) => term(t),
        Expr::Bin(op, l, r) => format!("({} {} {})", expr(l), op.token(), expr(r)),
    }
}

/// Renders an atom.
pub fn atom(a: &WAtom) -> String {
    let args: Vec<String> = a.args.iter().map(term).collect();
    format!(
        "{}@{}({})",
        name_term(&a.rel),
        name_term(&a.peer),
        args.join(", ")
    )
}

/// Renders a body item.
pub fn body_item(item: &WBodyItem) -> String {
    match item {
        WBodyItem::Literal(l) if l.negated => format!("not {}", atom(&l.atom)),
        WBodyItem::Literal(l) => atom(&l.atom),
        WBodyItem::Cmp { op, lhs, rhs } => {
            format!("{} {} {}", term(lhs), op.token(), term(rhs))
        }
        WBodyItem::Assign { var, expr: e } => format!("${var} := {}", expr(e)),
    }
}

/// Renders a rule (with terminating `;`).
pub fn rule(r: &WRule) -> String {
    let body: Vec<String> = r.body.iter().map(body_item).collect();
    format!("{} :- {};", atom(&r.head), body.join(", "))
}

/// Renders a ground fact (with terminating `;`).
pub fn fact(f: &WFact) -> String {
    let args: Vec<String> = f.tuple.iter().map(value).collect();
    format!("{}@{}({});", f.rel, f.peer, args.join(", "))
}

/// Renders a statement.
pub fn statement(s: &Statement) -> String {
    match s {
        Statement::Fact(f) => fact(f),
        Statement::Rule(r) => rule(r),
        Statement::Declaration {
            rel,
            peer,
            arity,
            kind,
        } => {
            let kw = match kind {
                RelationKind::Extensional => "extensional",
                RelationKind::Intensional => "intensional",
            };
            format!("{kw} {rel}@{peer}/{arity};")
        }
    }
}

/// Renders a whole program, one statement per line.
pub fn program(stmts: &[Statement]) -> String {
    let mut out = String::new();
    for s in stmts {
        out.push_str(&statement(s));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_fact, parse_program, parse_rule};

    #[test]
    fn fact_round_trip() {
        let src = r#"pictures@sigmod(32, "sea.jpg", "Emilien", 0x640001);"#;
        let f = parse_fact(src).unwrap();
        assert_eq!(fact(&f), src);
    }

    #[test]
    fn rule_round_trip() {
        let r = WRule::example_attendee_pictures("Jules");
        let printed = rule(&r);
        assert_eq!(parse_rule(&printed).unwrap(), r);
    }

    #[test]
    fn string_escapes_round_trip() {
        let f = WFact::new(
            "r",
            "p",
            vec![Value::str("line1\nline2\t\"quoted\" \\slash\\ \u{1}")],
        );
        let printed = fact(&f);
        assert_eq!(parse_fact(&printed).unwrap(), f);
    }

    #[test]
    fn long_blob_round_trips_unlike_display() {
        let f = WFact::new("r", "p", vec![Value::bytes(&[1, 2, 3, 4, 5, 6, 7, 8])]);
        let printed = fact(&f);
        assert!(printed.contains("0x0102030405060708"));
        assert_eq!(parse_fact(&printed).unwrap(), f);
    }

    #[test]
    fn program_round_trip() {
        let src = "extensional pictures@Jules/2;\n\
                   pictures@Jules(1, \"a.jpg\");\n\
                   all@Jules($x) :- pictures@Jules($x, $n), $x >= 0;\n";
        let prog = parse_program(src).unwrap();
        assert_eq!(program(&prog), src);
    }

    #[test]
    fn expr_parenthesization_round_trips() {
        let r = parse_rule("o@p($y) :- n@p($x), $y := ($x + 1) * ($x - 1);").unwrap();
        let printed = rule(&r);
        assert_eq!(parse_rule(&printed).unwrap(), r);
    }
}
