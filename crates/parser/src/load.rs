//! Loading whole programs onto a peer.
//!
//! The demo's setup files and rule-editing pane boil down to "apply this
//! text to this peer": declarations declare, facts insert, rules install.
//! [`load_program`] does exactly that, reporting what happened.

use crate::{parse_program, parse_program_spanned, ParseError, Statement};
use wdl_core::diag::{Diagnostic, ProgramBatch, ProgramCheck, Span};
use wdl_core::{Peer, RuleId, WdlError};

/// What a [`load_program`] call applied.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Relations declared (or re-declared idempotently).
    pub declarations: usize,
    /// Facts inserted (duplicates not counted).
    pub facts: usize,
    /// Rules installed, with their ids.
    pub rules: Vec<RuleId>,
    /// Non-blocking analyzer diagnostics ([`load_program_checked`] only;
    /// the unchecked path leaves this empty).
    pub warnings: Vec<Diagnostic>,
}

/// Errors from loading a program.
#[derive(Debug)]
pub enum LoadError {
    /// The text failed to parse.
    Parse(ParseError),
    /// A statement was rejected by the engine (safety, schema, ...).
    Engine(WdlError),
    /// A statement targets a different peer.
    WrongPeer {
        /// What the statement addressed.
        addressed: String,
        /// The peer being loaded.
        loading: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "{e}"),
            LoadError::Engine(e) => write!(f, "{e}"),
            LoadError::WrongPeer { addressed, loading } => write!(
                f,
                "statement addresses peer `{addressed}` but is being loaded onto `{loading}`"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ParseError> for LoadError {
    fn from(e: ParseError) -> Self {
        LoadError::Parse(e)
    }
}

impl From<WdlError> for LoadError {
    fn from(e: WdlError) -> Self {
        LoadError::Engine(e)
    }
}

/// Parses `src` and applies every statement to `peer`:
///
/// * declarations must address `peer` and declare its relations;
/// * facts must address `peer` and insert into its extensional relations;
/// * rules install as the peer's own rules (their *head* may address any
///   peer — that is what distribution is for).
///
/// Application is transactional per statement, not per program: on error,
/// earlier statements remain applied (matching the demo's interactive
/// editing model, where each accepted line takes effect immediately).
pub fn load_program(peer: &mut Peer, src: &str) -> Result<LoadReport, LoadError> {
    let statements = parse_program(src)?;
    let mut report = LoadReport::default();
    for st in statements {
        match st {
            Statement::Declaration {
                rel,
                peer: at,
                arity,
                kind,
            } => {
                if at != peer.name() {
                    return Err(LoadError::WrongPeer {
                        addressed: at.to_string(),
                        loading: peer.name().to_string(),
                    });
                }
                peer.declare(rel, arity, kind)?;
                report.declarations += 1;
            }
            Statement::Fact(f) => {
                if f.peer != peer.name() {
                    return Err(LoadError::WrongPeer {
                        addressed: f.peer.to_string(),
                        loading: peer.name().to_string(),
                    });
                }
                if peer.insert_local(f.rel, f.tuple.to_vec())? {
                    report.facts += 1;
                }
            }
            Statement::Rule(r) => {
                report.rules.push(peer.add_rule(r)?);
            }
        }
    }
    Ok(report)
}

/// [`load_program`], but vetted by a static checker and applied
/// atomically: the whole program is parsed (keeping statement spans),
/// packed into a [`ProgramBatch`] and handed to [`Peer::install`] — any
/// `Severity::Error` diagnostic rejects the *entire* program with
/// [`WdlError::Rejected`] before a single statement takes effect, and
/// warnings come back in [`LoadReport::warnings`].
///
/// Unlike [`load_program`], duplicate facts count as applied (the
/// install path does not report store-level dedup).
pub fn load_program_checked(
    peer: &mut Peer,
    src: &str,
    check: &dyn ProgramCheck,
) -> Result<LoadReport, LoadError> {
    let statements = parse_program_spanned(src)?;
    let mut batch = ProgramBatch::new();
    for st in statements {
        match st.statement {
            Statement::Declaration {
                rel,
                peer: at,
                arity,
                kind,
            } => {
                if at != peer.name() {
                    return Err(LoadError::WrongPeer {
                        addressed: at.to_string(),
                        loading: peer.name().to_string(),
                    });
                }
                batch.declarations.push((rel, arity, kind));
            }
            Statement::Fact(f) => {
                if f.peer != peer.name() {
                    return Err(LoadError::WrongPeer {
                        addressed: f.peer.to_string(),
                        loading: peer.name().to_string(),
                    });
                }
                batch.facts.push(f);
            }
            Statement::Rule(r) => {
                batch.rules.push((r, Some(Span::new(st.line, st.col))));
            }
        }
    }
    let report = peer.install(batch, check)?;
    Ok(LoadReport {
        declarations: report.declarations,
        facts: report.facts,
        rules: report.rules,
        warnings: report.warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::RelationKind;
    use wdl_datalog::Symbol;

    const PROGRAM: &str = r#"
        // Jules' Wepic setup
        extensional pictures@jules/4;
        extensional selectedAttendee@jules/1;
        intensional attendeePictures@jules/4;

        pictures@jules(1, "a.jpg", "jules", 0x01);
        pictures@jules(2, "b.jpg", "jules", 0x02);
        selectedAttendee@jules("emilien");

        attendeePictures@jules($id, $n, $o, $d) :-
            selectedAttendee@jules($a),
            pictures@$a($id, $n, $o, $d);
    "#;

    #[test]
    fn full_program_loads() {
        let mut p = Peer::new("jules");
        let report = load_program(&mut p, PROGRAM).unwrap();
        assert_eq!(report.declarations, 3);
        assert_eq!(report.facts, 3);
        assert_eq!(report.rules.len(), 1);
        assert_eq!(p.relation_facts("pictures").len(), 2);
        assert_eq!(
            p.schema().kind_of(Symbol::intern("attendeePictures")),
            Some(RelationKind::Intensional)
        );
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn wrong_peer_fact_rejected() {
        let mut p = Peer::new("jules");
        let err = load_program(&mut p, "pictures@emilien(1, \"x\", \"e\", 0x00);").unwrap_err();
        assert!(matches!(err, LoadError::WrongPeer { .. }));
    }

    #[test]
    fn wrong_peer_declaration_rejected() {
        let mut p = Peer::new("jules");
        let err = load_program(&mut p, "extensional pictures@emilien/4;").unwrap_err();
        assert!(matches!(err, LoadError::WrongPeer { .. }));
    }

    #[test]
    fn remote_head_rule_is_fine() {
        // Distribution: the head addresses another peer.
        let mut p = Peer::new("jules");
        let report = load_program(
            &mut p,
            "pictures@sigmod($x, $n, $o, $d) :- pictures@jules($x, $n, $o, $d);",
        )
        .unwrap();
        assert_eq!(report.rules.len(), 1);
    }

    #[test]
    fn parse_errors_surface() {
        let mut p = Peer::new("jules");
        assert!(matches!(
            load_program(&mut p, "this is not webdamlog"),
            Err(LoadError::Parse(_))
        ));
    }

    #[test]
    fn unsafe_rule_rejected_with_engine_error() {
        let mut p = Peer::new("jules");
        // head variable never bound
        let err = load_program(&mut p, "v@jules($x) :- w@jules($y);").unwrap_err();
        assert!(matches!(err, LoadError::Engine(_)));
    }

    #[test]
    fn duplicate_facts_not_double_counted() {
        let mut p = Peer::new("jules");
        let report = load_program(&mut p, "r@jules(1);\nr@jules(1);").unwrap();
        assert_eq!(report.facts, 1);
    }
}
