//! # wdl-parser — surface syntax for WebdamLog
//!
//! Parses the textual rule/fact syntax the paper uses (and the demo GUI of
//! Figure 3 exposes for inspection and customization):
//!
//! ```text
//! // a fact
//! pictures@sigmod(32, "sea.jpg", "Emilien", 0x64af);
//!
//! // the paper's delegation rule
//! attendeePictures@Jules($id, $name, $owner, $data) :-
//!     selectedAttendee@Jules($attendee),
//!     pictures@$attendee($id, $name, $owner, $data);
//!
//! // customization: only pictures rated 5
//! attendeePictures@Jules($id, $name, $owner, $data) :-
//!     selectedAttendee@Jules($attendee),
//!     pictures@$attendee($id, $name, $owner, $data),
//!     rate@$owner($id, $r), $r == 5;
//!
//! // declarations (shape of a peer's relations)
//! extensional pictures@Jules/4;
//! intensional attendeePictures@Jules/4;
//! ```
//!
//! Variables start with `$` (paper §2). `not` introduces negation, `:=`
//! binds an arithmetic/string expression, comparisons use `== != < <= > >=`,
//! strings are double-quoted with the usual escapes, byte blobs are `0x...`
//! hex literals. Comments run `//` or `#` to end of line. Statements end
//! with `;`.
//!
//! [`pretty`] renders facts/rules back to this syntax; `parse(pretty(x)) ==
//! x` round-trips (property-tested in `tests/`).
//!
//! ```
//! let rule = wdl_parser::parse_rule(
//!     "attendeePictures@Jules($id) :- selectedAttendee@Jules($a), pictures@$a($id);",
//! ).unwrap();
//! assert_eq!(rule.body.len(), 2);
//! let text = wdl_parser::pretty::rule(&rule);
//! assert_eq!(wdl_parser::parse_rule(&text).unwrap(), rule);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod load;
mod parse;
pub mod pretty;

pub use lexer::{Token, TokenKind};
pub use load::{load_program, load_program_checked, LoadError, LoadReport};
pub use parse::{
    parse_fact, parse_program, parse_program_spanned, parse_rule, parse_statement, ParseError,
    SpannedStatement, Statement,
};

/// Parses a query: a bare rule body (comma-separated items, optional final
/// `;`), as typed into the demo's Query tab. Run it with
/// [`wdl_core::Peer::query`].
pub fn parse_query(src: &str) -> Result<Vec<wdl_core::WBodyItem>, ParseError> {
    // Reuse the rule machinery with a synthetic head.
    let src = src.trim().trim_end_matches(';');
    let rule = parse_rule(&format!("q@q() :- {src};"))?;
    Ok(rule.body)
}
