//! Tokenizer for the WebdamLog surface syntax.

use crate::ParseError;

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (relation, peer or keyword — keywords resolved by parser).
    Ident(String),
    /// Variable `$name` (the `$` is stripped).
    Var(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped content).
    Str(String),
    /// Byte-blob literal `0x...` (decoded).
    Bytes(Vec<u8>),
    /// `@`
    At,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:-`
    Turnstile,
    /// `:=`
    Bind,
    /// `/` (also division in expressions)
    Slash,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `%`
    Percent,
    /// `++`
    Concat,
    /// End of input.
    Eof,
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// Line (1-based).
    pub line: usize,
    /// Column (1-based).
    pub col: usize,
}

pub(crate) struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    pub(crate) fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenizes the whole input.
    pub(crate) fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let mk = |kind| Token { kind, line, col };
        let Some(c) = self.peek() else {
            return Ok(mk(TokenKind::Eof));
        };
        match c {
            b'@' => {
                self.bump();
                Ok(mk(TokenKind::At))
            }
            b'(' => {
                self.bump();
                Ok(mk(TokenKind::LParen))
            }
            b')' => {
                self.bump();
                Ok(mk(TokenKind::RParen))
            }
            b',' => {
                self.bump();
                Ok(mk(TokenKind::Comma))
            }
            b';' => {
                self.bump();
                Ok(mk(TokenKind::Semi))
            }
            b'*' => {
                self.bump();
                Ok(mk(TokenKind::Star))
            }
            b'%' => {
                self.bump();
                Ok(mk(TokenKind::Percent))
            }
            b'/' => {
                self.bump();
                Ok(mk(TokenKind::Slash))
            }
            b'+' => {
                self.bump();
                if self.peek() == Some(b'+') {
                    self.bump();
                    Ok(mk(TokenKind::Concat))
                } else {
                    Ok(mk(TokenKind::Plus))
                }
            }
            b'-' => {
                self.bump();
                // negative integer literal
                if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let n = self.lex_int()?;
                    return Ok(mk(TokenKind::Int(-n)));
                }
                Ok(mk(TokenKind::Minus))
            }
            b':' => {
                self.bump();
                match self.peek() {
                    Some(b'-') => {
                        self.bump();
                        Ok(mk(TokenKind::Turnstile))
                    }
                    Some(b'=') => {
                        self.bump();
                        Ok(mk(TokenKind::Bind))
                    }
                    _ => Err(self.error("expected `:-` or `:=` after `:`")),
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(mk(TokenKind::EqEq))
                } else {
                    Err(self.error("expected `==`"))
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(mk(TokenKind::Ne))
                } else {
                    Err(self.error("expected `!=`"))
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(mk(TokenKind::Le))
                } else {
                    Ok(mk(TokenKind::Lt))
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(mk(TokenKind::Ge))
                } else {
                    Ok(mk(TokenKind::Gt))
                }
            }
            b'$' => {
                self.bump();
                let name = self.lex_ident_raw();
                if name.is_empty() {
                    return Err(self.error("expected variable name after `$`"));
                }
                Ok(mk(TokenKind::Var(name)))
            }
            b'"' => {
                let s = self.lex_string()?;
                Ok(mk(TokenKind::Str(s)))
            }
            b'0' if self.peek2() == Some(b'x') => {
                self.bump();
                self.bump();
                let bytes = self.lex_hex()?;
                Ok(mk(TokenKind::Bytes(bytes)))
            }
            c if c.is_ascii_digit() => {
                let n = self.lex_int()?;
                Ok(mk(TokenKind::Int(n)))
            }
            c if is_ident_start(c) || c >= 0x80 => {
                let name = self.lex_ident_raw();
                if name.is_empty() {
                    return Err(self.error("invalid UTF-8 in identifier"));
                }
                Ok(mk(TokenKind::Ident(name)))
            }
            c => Err(self.error(format!("unexpected character `{}`", c as char))),
        }
    }

    fn lex_int(&mut self) -> Result<i64, ParseError> {
        let mut n: i64 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if !c.is_ascii_digit() {
                break;
            }
            any = true;
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(i64::from(c - b'0')))
                .ok_or_else(|| self.error("integer literal overflows i64"))?;
            self.bump();
        }
        if !any {
            return Err(self.error("expected digits"));
        }
        Ok(n)
    }

    fn lex_ident_raw(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                s.push(c as char);
                self.bump();
            } else if c >= 0x80 {
                // Accept multi-byte UTF-8 in identifiers (peer names like
                // "Émilien" in the paper).
                let start = self.pos;
                let mut end = self.pos + 1;
                while end < self.src.len() && (self.src[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                if let Ok(frag) = std::str::from_utf8(&self.src[start..end]) {
                    s.push_str(frag);
                    for _ in start..end {
                        self.bump();
                    }
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        s
    }

    fn lex_string(&mut self) -> Result<String, ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.error("unterminated string literal"));
            };
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.bump() else {
                        return Err(self.error("unterminated escape"));
                    };
                    match e {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'0' => s.push('\0'),
                        b'\\' => s.push('\\'),
                        b'"' => s.push('"'),
                        b'\'' => s.push('\''),
                        b'u' => {
                            if self.bump() != Some(b'{') {
                                return Err(self.error("expected `{` in \\u escape"));
                            }
                            let mut hex = String::new();
                            loop {
                                match self.bump() {
                                    Some(b'}') => break,
                                    Some(h) if h.is_ascii_hexdigit() => hex.push(h as char),
                                    _ => return Err(self.error("bad \\u escape")),
                                }
                            }
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode scalar"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x80 => s.push(c as char),
                c => {
                    // Re-assemble a UTF-8 sequence.
                    let mut buf = vec![c];
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        buf.push(self.bump().unwrap());
                    }
                    let frag = std::str::from_utf8(&buf)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    s.push_str(frag);
                }
            }
        }
    }

    fn lex_hex(&mut self) -> Result<Vec<u8>, ParseError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_hexdigit() {
                digits.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        if !digits.len().is_multiple_of(2) {
            return Err(self.error("hex blob must have an even number of digits"));
        }
        let mut out = Vec::with_capacity(digits.len() / 2);
        let bytes = digits.as_bytes();
        for pair in bytes.chunks(2) {
            let s = std::str::from_utf8(pair).expect("ascii hex");
            out.push(u8::from_str_radix(s, 16).expect("checked hex digits"));
        }
        Ok(out)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_fact_tokens() {
        let ks = kinds(r#"pictures@sigmod(32, "sea.jpg");"#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("pictures".into()),
                TokenKind::At,
                TokenKind::Ident("sigmod".into()),
                TokenKind::LParen,
                TokenKind::Int(32),
                TokenKind::Comma,
                TokenKind::Str("sea.jpg".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_vars() {
        let ks = kinds("$r >= 4, $y := $x + 1, $s ++ $t");
        assert!(ks.contains(&TokenKind::Var("r".into())));
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Bind));
        assert!(ks.contains(&TokenKind::Plus));
        assert!(ks.contains(&TokenKind::Concat));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("// a comment\n# another\nfoo");
        assert_eq!(ks, vec![TokenKind::Ident("foo".into()), TokenKind::Eof]);
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#""a\nb\t\"\\ \u{e9}""#);
        assert_eq!(ks[0], TokenKind::Str("a\nb\t\"\\ é".into()));
    }

    #[test]
    fn hex_blob() {
        let ks = kinds("0xdeadBEEF");
        assert_eq!(ks[0], TokenKind::Bytes(vec![0xde, 0xad, 0xbe, 0xef]));
        assert!(Lexer::new("0xabc").tokenize().is_err(), "odd digit count");
    }

    #[test]
    fn negative_ints_and_minus() {
        assert_eq!(kinds("-5")[0], TokenKind::Int(-5));
        assert_eq!(kinds("- 5")[0], TokenKind::Minus);
    }

    #[test]
    fn unicode_identifier() {
        let ks = kinds("pictures@Émilien");
        assert_eq!(ks[2], TokenKind::Ident("Émilien".into()));
    }

    #[test]
    fn turnstile_vs_bind() {
        assert_eq!(kinds(":-")[0], TokenKind::Turnstile);
        assert_eq!(kinds(":=")[0], TokenKind::Bind);
        assert!(Lexer::new(": x").tokenize().is_err());
    }

    #[test]
    fn positions_reported() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn int_overflow_errors() {
        assert!(Lexer::new("99999999999999999999999").tokenize().is_err());
    }
}
