//! CI perf-regression gate: compares freshly measured `BENCH_*.json`
//! metrics against the committed baselines and fails on regressions
//! beyond a tolerance.
//!
//! Usage: `bench-gate <baseline_dir> <fresh_dir>`
//!
//! Only **ratio** metrics are pinned — speedups of one in-process code
//! path over another — because they are comparable across machines
//! (committed baselines come from the development box; CI runners have
//! different absolute speeds but see the same relative gains). A pinned
//! metric regresses the gate when
//! `fresh < baseline * (1 - TOLERANCE)`.
//!
//! Overhead ratios (bigger = worse) are gated the other way round, by
//! absolute **ceiling** ([`PINNED_CEILING`]): the fresh value alone must
//! stay at or below the cap, no baseline involved.
//!
//! The JSON involved is the flat `"metrics": {"name": number, ...}`
//! object the criterion shim writes; a tiny scanner avoids a JSON
//! dependency (no crates.io in the build image).

use std::process::ExitCode;

/// Allowed relative regression before the gate fails.
const TOLERANCE: f64 = 0.25;

/// (bench json file, metric name) pairs pinned by the gate. All are
/// speedup ratios measured on the **same workload scale** in both quick
/// (CI smoke) and full runs — like-for-like comparisons, not aggregates
/// whose constituent scales differ between modes.
const PINNED: &[(&str, &str)] = &[
    // Incremental maintenance vs from-scratch recomputation (PR 1 claim).
    ("BENCH_e10_incremental.json", "speedup_2606"),
    // Compiled+interned engine vs interpreted baseline (PR 4 claims):
    // fixpoint at the 1488-fact e11 scale (quick mode runs that scale
    // too), untag pair at the 2606-fact e10 scale. The unfriend ratio is
    // recorded but not gated — it sits closer to its floor under
    // 3-sample quick runs and would flake on shared runners.
    ("BENCH_e12_interned.json", "fixpoint_speedup_1488"),
    ("BENCH_e12_interned.json", "untag_speedup_2606"),
    // Compiled stage-layer matcher vs the Subst interpreter on the
    // delegated Wepic workload (PR 5 claim, ISSUE 5 headline >= 1.3x).
    ("BENCH_e13_stage.json", "delegated_stage_speedup"),
    // Recompute-path working-database cache: the uncompilable hub's
    // stage no longer pays store-clone + remote-contribution injection
    // from scratch every stage (ISSUE 6 satellite).
    ("BENCH_e13_stage.json", "hub_cache_speedup"),
    // Sharded runtime scale-out (ISSUE 6 tentpole): burst-round latency
    // at 10^4 total peers over the same burst at 10^5 — near 1.0 when
    // round cost tracks the active set (inbox-driven scheduling), and
    // collapsing toward 0.1 if any per-registered-peer cost sneaks back
    // into the round path.
    ("BENCH_e14_scale.json", "scale_independence"),
    // Durable storage engine (ISSUE 8 tentpole): cold-start recovery
    // from segments + a policy-bounded WAL tail versus re-applying the
    // whole delta history from scratch. Collapses toward 1.0 if segment
    // import degrades to per-record history cost — the checkpoint would
    // then buy nothing.
    ("BENCH_e15_durability.json", "recovery_replay_speedup"),
];

/// (bench json file, metric name, ceiling) triples the fresh run must stay
/// **at or below** — absolute ratio caps, checked fresh-side only (no
/// baseline comparison, no tolerance: the ceiling *is* the contract).
/// Used for overhead ratios where "bigger" means "worse".
const PINNED_CEILING: &[(&str, &str, f64)] = &[
    // ISSUE 7: the structured trace pipeline may cost at most 15% on the
    // traced burst round versus the same round untraced.
    ("BENCH_e14_scale.json", "tracing_overhead", 1.15),
    // ISSUE 9: the reliable-delivery session layer may cost at most 20%
    // on a lossless link versus the raw transport.
    ("BENCH_e16_session.json", "session_overhead", 1.20),
];

/// Extracts `"name": <number>` from the shim's flat JSON. Good enough for
/// the format we write ourselves; returns `None` when absent.
fn metric(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Lists the `BENCH_*.json` file names in `dir` (sorted; empty on error —
/// the caller reports unreadable directories through the pinned checks).
fn bench_files(dir: &str) -> Vec<String> {
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    out.sort();
    out
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_dir = args.next().unwrap_or_else(|| ".".into());
    let fresh_dir = args.next().unwrap_or_else(|| ".".into());

    let mut failures = 0usize;
    let mut checked = 0usize;

    // Directory-level cross-check, so a bench that silently stopped
    // producing (or never grew) its JSON cannot slip through as "nothing
    // to compare": every fresh summary needs a committed baseline, and
    // every committed baseline needs a fresh counterpart.
    let fresh_files = bench_files(&fresh_dir);
    if fresh_files.is_empty() {
        eprintln!(
            "bench-gate: no BENCH_*.json produced in {fresh_dir} — bench \
             runs are not writing summaries"
        );
        failures += 1;
    }
    for f in &fresh_files {
        if !std::path::Path::new(&baseline_dir).join(f).exists() {
            eprintln!(
                "bench-gate: fresh {f} has NO committed baseline in \
                 {baseline_dir} — commit one (run the bench with \
                 BENCH_JSON_DIR pointing at the repo root)"
            );
            failures += 1;
        }
    }
    for f in bench_files(&baseline_dir) {
        if !fresh_files.contains(&f) {
            eprintln!(
                "bench-gate: committed baseline {f} was NOT re-measured \
                 into {fresh_dir} — add its bench to the CI bench-smoke run"
            );
            failures += 1;
        }
    }
    for (file, name) in PINNED {
        let baseline_path = format!("{baseline_dir}/{file}");
        let fresh_path = format!("{fresh_dir}/{file}");
        let baseline_json = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench-gate: cannot read baseline {baseline_path}: {e}");
                failures += 1;
                continue;
            }
        };
        let fresh_json = match std::fs::read_to_string(&fresh_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench-gate: cannot read fresh {fresh_path}: {e}");
                failures += 1;
                continue;
            }
        };
        let (Some(base), Some(fresh)) = (metric(&baseline_json, name), metric(&fresh_json, name))
        else {
            eprintln!("bench-gate: metric {name} missing in {file} (baseline or fresh)");
            failures += 1;
            continue;
        };
        checked += 1;
        let floor = base * (1.0 - TOLERANCE);
        let status = if fresh >= floor { "ok" } else { "REGRESSED" };
        println!(
            "bench-gate: {file} {name}: baseline {base:.2}, fresh {fresh:.2}, \
             floor {floor:.2} -> {status}"
        );
        if fresh < floor {
            failures += 1;
        }
    }
    for (file, name, ceiling) in PINNED_CEILING {
        let fresh_path = format!("{fresh_dir}/{file}");
        let fresh_json = match std::fs::read_to_string(&fresh_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench-gate: cannot read fresh {fresh_path}: {e}");
                failures += 1;
                continue;
            }
        };
        let Some(fresh) = metric(&fresh_json, name) else {
            eprintln!("bench-gate: metric {name} missing in fresh {file}");
            failures += 1;
            continue;
        };
        checked += 1;
        let status = if fresh <= *ceiling { "ok" } else { "EXCEEDED" };
        println!("bench-gate: {file} {name}: fresh {fresh:.3}, ceiling {ceiling:.3} -> {status}");
        if fresh > *ceiling {
            failures += 1;
        }
    }
    if checked == 0 {
        // A gate that checked nothing must not pass: that is exactly the
        // silent state where the bench trajectory goes empty.
        eprintln!("bench-gate: 0 pinned metrics were comparable — failing loudly");
        failures += 1;
    }
    if failures > 0 {
        eprintln!("bench-gate: {failures} failure(s) across {checked} checked metric(s)");
        return ExitCode::FAILURE;
    }
    println!(
        "bench-gate: all {checked} pinned metrics within tolerance ({:.0}%)",
        TOLERANCE * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{bench_files, metric};

    #[test]
    fn bench_files_lists_only_bench_jsons() {
        let dir = std::env::temp_dir().join("wdl-bench-gate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_b.json", "BENCH_a.json", "notes.txt", "BENCH_c.txt"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let listed = bench_files(dir.to_str().unwrap());
        assert_eq!(listed, vec!["BENCH_a.json", "BENCH_b.json"]);
        assert!(bench_files("/nonexistent-dir-for-bench-gate").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scanner_reads_shim_json() {
        let json = r#"{
  "bench": "e12_interned",
  "metrics": {
    "fixpoint_speedup": 3.53,
    "incremental_speedup": 2.16,
    "count": 7
  }
}"#;
        assert_eq!(metric(json, "fixpoint_speedup"), Some(3.53));
        assert_eq!(metric(json, "incremental_speedup"), Some(2.16));
        assert_eq!(metric(json, "count"), Some(7.0));
        assert_eq!(metric(json, "missing"), None);
    }
}
