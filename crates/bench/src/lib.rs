//! Shared workload builders for the E1–E8 experiment benches.
//!
//! Every bench binary follows the same pattern: it first prints the
//! experiment's *measurement table* (the counters EXPERIMENTS.md records —
//! stages to quiescence, messages routed, delegations installed, view
//! sizes), then runs Criterion timing groups over the same workloads.

pub mod workloads;

use wdl_core::acl::UntrustedPolicy;
use wdl_core::runtime::LocalRuntime;
use wdl_core::{Peer, RelationKind, WRule};
use wdl_datalog::Value;
use wepic::{ops, Conference, ConferenceConfig, Picture, PictureCorpus};

/// True when the `BENCH_QUICK` environment variable is set to anything but
/// `0`/`false`/empty: benches shrink their workloads and sampling for CI
/// smoke runs (measurements stay real, headline assertions that need
/// full-size workloads are skipped).
pub fn quick() -> bool {
    std::env::var("BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0" && v != "false")
        .unwrap_or(false)
}

/// Criterion settings used by all benches: short but stable, much shorter
/// under [`quick`].
pub fn criterion() -> criterion::Criterion {
    let c = criterion::Criterion::default();
    let c = if quick() {
        c.sample_size(3)
            .warm_up_time(std::time::Duration::from_millis(50))
            .measurement_time(std::time::Duration::from_millis(200))
    } else {
        c.sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_secs(2))
    };
    c.configure_from_args()
}

/// Median wall time (nanoseconds) of `runs` executions of `f` — the
/// robust point estimate the measurement tables report.
pub fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// A peer that accepts all delegations (closed-world experiments).
pub fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

/// Builds a conference with `attendees` peers, each holding `pics_per_peer`
/// pictures of `payload` bytes.
pub fn loaded_conference(
    attendees: usize,
    pics_per_peer: usize,
    payload: usize,
    seed: u64,
) -> Conference {
    let mut conf =
        Conference::new(&ConferenceConfig::experiment(attendees)).expect("conference builds");
    let mut corpus = PictureCorpus::new(seed);
    let names: Vec<String> = conf
        .attendee_names()
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    for name in &names {
        for pic in corpus.pictures(name, pics_per_peer, payload) {
            ops::upload_picture(conf.peer_mut(name.as_str()).unwrap(), &pic).expect("upload");
        }
    }
    conf
}

/// A selection workload: `viewer` + `peers` sources with `pics` pictures
/// each; the viewer runs the paper's `attendeePictures` rule and selects
/// `selected` of the sources.
pub struct SelectionWorld {
    /// The runtime, ready to run.
    pub rt: LocalRuntime,
    /// Viewer peer name.
    pub viewer: String,
    /// Source peer names.
    pub sources: Vec<String>,
}

impl SelectionWorld {
    /// Builds the world (nothing run yet).
    pub fn build(
        tag: &str,
        peers: usize,
        pics: usize,
        selected: usize,
        seed: u64,
    ) -> SelectionWorld {
        assert!(selected <= peers);
        let mut rt = LocalRuntime::new();
        let viewer = format!("viewer{tag}");
        let mut v = open_peer(&viewer);
        v.declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        v.add_rule(WRule::example_attendee_pictures(&viewer))
            .unwrap();

        let mut corpus = PictureCorpus::new(seed);
        let mut sources = Vec::new();
        for i in 0..peers {
            let name = format!("src{tag}n{i}");
            let mut p = open_peer(&name);
            for pic in corpus.pictures(&name, pics, 32) {
                upload_raw(&mut p, &pic);
            }
            if i < selected {
                v.insert_local("selectedAttendee", vec![Value::from(name.as_str())])
                    .unwrap();
            }
            sources.push(name);
            rt.add_peer(p).unwrap();
        }
        rt.add_peer(v).unwrap();
        SelectionWorld {
            rt,
            viewer,
            sources,
        }
    }

    /// Runs to quiescence, returning `(rounds, messages, view_size,
    /// delegations_installed_total)`.
    pub fn run(&mut self) -> (usize, usize, usize, usize) {
        let r = self.rt.run_to_quiescence(256).expect("engine runs");
        assert!(r.quiescent, "selection world failed to quiesce");
        let view = self
            .rt
            .peer(self.viewer.as_str())
            .unwrap()
            .relation_facts("attendeePictures")
            .len();
        let delegs: usize = self
            .sources
            .iter()
            .map(|s| {
                self.rt
                    .peer(s.as_str())
                    .unwrap()
                    .installed_delegations()
                    .len()
            })
            .sum();
        (r.rounds, r.messages, view, delegs)
    }
}

/// Uploads a picture into any peer with a `pictures/4` relation.
pub fn upload_raw(peer: &mut Peer, pic: &Picture) {
    peer.insert_local("pictures", pic.to_values())
        .expect("insert picture");
}

/// The *broadcast baseline* for E2: instead of delegation-driven pull,
/// every source pushes every picture to the viewer unconditionally
/// (`attendeeBroadcast@viewer :- pictures@me`). Returns `(rounds,
/// messages)`.
pub fn broadcast_baseline(tag: &str, peers: usize, pics: usize, seed: u64) -> (usize, usize) {
    let mut rt = LocalRuntime::new();
    let viewer = format!("bviewer{tag}");
    let mut v = open_peer(&viewer);
    v.declare("attendeeBroadcast", 4, RelationKind::Intensional)
        .unwrap();
    rt.add_peer(v).unwrap();
    let mut corpus = PictureCorpus::new(seed);
    for i in 0..peers {
        let name = format!("bsrc{tag}n{i}");
        let mut p = open_peer(&name);
        for pic in corpus.pictures(&name, pics, 32) {
            upload_raw(&mut p, &pic);
        }
        p.add_rule(
            wdl_parser::parse_rule(&format!(
                "attendeeBroadcast@{viewer}($id, $n, $o, $d) :- pictures@{name}($id, $n, $o, $d);"
            ))
            .unwrap(),
        )
        .unwrap();
        rt.add_peer(p).unwrap();
    }
    let r = rt.run_to_quiescence(256).expect("engine runs");
    assert!(r.quiescent);
    (r.rounds, r.messages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_world_runs() {
        let mut w = SelectionWorld::build("t1", 3, 4, 2, 1);
        let (rounds, messages, view, delegs) = w.run();
        assert!(rounds > 0);
        assert!(messages > 0);
        assert_eq!(view, 8, "2 selected peers x 4 pictures");
        assert_eq!(delegs, 2, "one delegation per selected source");
    }

    #[test]
    fn broadcast_baseline_runs() {
        let (rounds, messages) = broadcast_baseline("t2", 3, 4, 1);
        assert!(rounds > 0);
        assert!(messages >= 3, "every source pushes");
    }

    #[test]
    fn loaded_conference_settles() {
        let mut conf = loaded_conference(3, 2, 16, 5);
        let r = conf.settle(128).unwrap();
        assert!(r.quiescent);
        assert_eq!(
            conf.peer("sigmod")
                .unwrap()
                .relation_facts("pictures")
                .len(),
            6
        );
    }
}
