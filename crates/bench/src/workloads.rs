//! Shared experiment workload builders.
//!
//! E10 (incremental maintenance), E11 (parallel fixpoint) and E12
//! (interned data plane) all measure against the same two Wepic-flavoured
//! workloads; building them here keeps the benches comparable — E12's
//! old-vs-new ratios are taken on exactly the graphs E10/E11 time.

use wdl_datalog::{Atom, BodyItem, Database, Fact, Program, Rule, Term, Value};
use wepic::PictureCorpus;

fn atom(pred: &str, vars: &[&str]) -> Atom {
    Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
}

/// The E11 reachability/feed program:
///
/// ```text
/// reach(x, y) :- knows(x, y)
/// reach(x, z) :- reach(x, y), knows(y, z)
/// feed(p, id) :- reach(p, q), pictures(id, n, q, d)
/// ```
pub fn reach_program() -> Program {
    Program::new(vec![
        Rule::new(
            atom("reach", &["x", "y"]),
            vec![atom("knows", &["x", "y"]).into()],
        ),
        Rule::new(
            atom("reach", &["x", "z"]),
            vec![
                atom("reach", &["x", "y"]).into(),
                atom("knows", &["y", "z"]).into(),
            ],
        ),
        Rule::new(
            atom("feed", &["p", "id"]),
            vec![
                atom("reach", &["p", "q"]).into(),
                atom("pictures", &["id", "n", "q", "d"]).into(),
            ],
        ),
    ])
    .unwrap()
}

/// The E11 base: `comps` disjoint friendship components ("tables" at the
/// conference) of `persons` people each — a ring plus deterministic chords,
/// so `reach` closes each component to `persons²` pairs over ~`persons`
/// delta rounds — with `pics` corpus pictures uploaded per person.
pub fn reach_base(comps: usize, persons: usize, pics: usize) -> Database {
    let mut db = Database::new();
    let mut corpus = PictureCorpus::new(0xE11);
    let mut pic_id = 0i64;
    for c in 0..comps {
        for i in 0..persons {
            let name = format!("p{c}n{i}");
            let next = format!("p{c}n{}", (i + 1) % persons);
            db.insert(Fact::new(
                "knows",
                vec![Value::from(name.as_str()), Value::from(next.as_str())],
            ))
            .unwrap();
            if i % 3 == 0 {
                let chord = format!("p{c}n{}", (i * 7 + 3) % persons);
                db.insert(Fact::new(
                    "knows",
                    vec![Value::from(name.as_str()), Value::from(chord.as_str())],
                ))
                .unwrap();
            }
            for pic in corpus.pictures(&name, pics, 16) {
                db.insert(Fact::new(
                    "pictures",
                    vec![
                        Value::from(pic_id),
                        Value::from(pic.name.as_str()),
                        Value::from(pic.owner.as_str()),
                        Value::from(pic.data.clone()),
                    ],
                ))
                .unwrap();
                pic_id += 1;
            }
        }
    }
    db
}

/// The E10 Wepic visibility program:
///
/// ```text
/// taggedPics(id, p) :- tag(id, p), friends(p)
/// visible(id, owner) :- pictures(id, n, owner, d), taggedPics(id, p)
/// feed(owner, id)   :- visible(id, owner), not muted(owner)
/// ```
pub fn wepic_program() -> Program {
    Program::new(vec![
        Rule::new(
            atom("taggedPics", &["id", "p"]),
            vec![
                atom("tag", &["id", "p"]).into(),
                atom("friends", &["p"]).into(),
            ],
        ),
        Rule::new(
            atom("visible", &["id", "owner"]),
            vec![
                atom("pictures", &["id", "n", "owner", "d"]).into(),
                atom("taggedPics", &["id", "p"]).into(),
            ],
        ),
        Rule::new(
            atom("feed", &["owner", "id"]),
            vec![
                atom("visible", &["id", "owner"]).into(),
                BodyItem::not_atom(atom("muted", &["owner"])),
            ],
        ),
    ])
    .unwrap()
}

/// The E10 base: `pics` pictures, `tags_per` tags each over `persons`
/// people (all friended, a few owners muted).
pub fn wepic_base(pics: usize, tags_per: usize, persons: usize) -> Database {
    let mut db = Database::new();
    for p in 0..persons {
        db.insert(Fact::new("friends", vec![Value::from(format!("p{p}"))]))
            .unwrap();
        if p % 17 == 0 {
            db.insert(Fact::new(
                "muted",
                vec![Value::from(format!("owner{}", p % 50))],
            ))
            .unwrap();
        }
    }
    for i in 0..pics {
        db.insert(Fact::new(
            "pictures",
            vec![
                Value::from(i as i64),
                Value::from(format!("pic{i}.jpg")),
                Value::from(format!("owner{}", i % 50)),
                Value::bytes(&[(i % 251) as u8]),
            ],
        ))
        .unwrap();
        for t in 0..tags_per {
            db.insert(Fact::new(
                "tag",
                vec![
                    Value::from(i as i64),
                    Value::from(format!("p{}", (i * 7 + t * 13) % persons)),
                ],
            ))
            .unwrap();
        }
    }
    db
}

/// The E10 churn facts: one tag to untag, one friend to unfriend.
pub fn churn_facts(pics: usize, persons: usize) -> (Fact, Fact) {
    let i = pics / 2;
    let tag = Fact::new(
        "tag",
        vec![
            Value::from(i as i64),
            Value::from(format!("p{}", (i * 7) % persons)),
        ],
    );
    let friend = Fact::new("friends", vec![Value::from(format!("p{}", persons / 2))]);
    (tag, friend)
}
