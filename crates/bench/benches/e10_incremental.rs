//! E10 — incremental maintenance (ISSUE 1): churn-heavy Wepic workloads.
//!
//! The paper's scenarios revolve around *change*: pictures are untagged,
//! friends are removed, peers leave. Before the incremental engine, every
//! peer stage recomputed its full seminaive fixpoint, so one `untag` cost
//! as much as cold start. This bench contrasts:
//!
//! * `untag_maintain` / `unfriend_maintain` — `MaterializedView::apply`
//!   absorbing a single-fact deletion (and the re-insertion that restores
//!   steady state),
//! * `recompute` — the from-scratch `Program::eval` every stage used to
//!   pay,
//! * `peer_untag_stage` — the end-to-end `Peer::run_stage` cost of an
//!   untag through the maintained path.
//!
//! The measurement table asserts the headline claim: single-fact deletion
//! maintained at least 10× faster than recomputation on a ≥10k-fact
//! database.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use wdl_bench::open_peer;
use wdl_bench::workloads::{churn_facts, wepic_base, wepic_program};
use wdl_core::{Peer, RelationKind};
use wdl_datalog::incremental::{Delta, MaterializedView};
use wdl_datalog::{Term, Value};

/// Wepic-style workload sizes: (pictures, tags per picture, persons).
const SCALES: &[(usize, usize, usize)] = &[(500, 4, 100), (2500, 4, 200)];

/// Scales for this run: `BENCH_QUICK` keeps only the small workload (whose
/// base stays under the 10k-fact threshold, so the headline assertion —
/// which needs the full-size database — is naturally skipped).
fn scales() -> &'static [(usize, usize, usize)] {
    if wdl_bench::quick() {
        &SCALES[..1]
    } else {
        SCALES
    }
}

/// A single peer running the same rules through `Peer::run_stage` (the
/// maintained path end to end).
fn wepic_peer(tag: &str, pics: usize, tags_per: usize, persons: usize) -> Peer {
    let me = format!("wepic{tag}");
    let mut p = open_peer(&me);
    for rel in ["taggedPics", "visible", "feed"] {
        p.declare(rel, 2, RelationKind::Intensional).unwrap();
    }
    let local = |pred: &str, vars: &[&str]| {
        wdl_core::WAtom::at(
            pred,
            me.as_str(),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    };
    p.add_rule(wdl_core::WRule::new(
        local("taggedPics", &["id", "p"]),
        vec![
            local("tag", &["id", "p"]).into(),
            local("friends", &["p"]).into(),
        ],
    ))
    .unwrap();
    p.add_rule(wdl_core::WRule::new(
        local("visible", &["id", "owner"]),
        vec![
            local("pictures", &["id", "n", "owner", "d"]).into(),
            local("taggedPics", &["id", "p"]).into(),
        ],
    ))
    .unwrap();
    p.add_rule(wdl_core::WRule::new(
        local("feed", &["owner", "id"]),
        vec![
            local("visible", &["id", "owner"]).into(),
            wdl_core::WBodyItem::Literal(wdl_core::WLiteral::neg(local("muted", &["owner"]))),
        ],
    ))
    .unwrap();
    for f in wepic_base(pics, tags_per, persons).facts() {
        let values: Vec<Value> = f.tuple.to_vec();
        p.insert_local(f.pred.as_str(), values).unwrap();
    }
    p
}

fn table(c: &mut Criterion) {
    let runs = if wdl_bench::quick() { 3 } else { 9 };
    println!("\n# E10: incremental maintenance vs from-scratch recomputation");
    println!(
        "{:>8} {:>8} {:>7} {:>16} {:>16} {:>16} {:>9}",
        "base", "derived", "strata", "untag_pair_ns", "unfriend_pair", "recompute_ns", "speedup"
    );
    for &(pics, tags_per, persons) in scales() {
        let program = wepic_program();
        let base = wepic_base(pics, tags_per, persons);
        let base_facts = base.fact_count();
        let mut view = MaterializedView::new(program.clone(), base.clone()).unwrap();
        let derived = view.database().fact_count() - base_facts;
        let (tag, friend) = churn_facts(pics, persons);

        // Sanity: maintained result equals recomputation after churn.
        view.apply(&Delta::deletion(tag.clone())).unwrap();
        let reference = view.recompute().unwrap();
        assert_eq!(view.database().fact_count(), reference.fact_count());
        view.apply(&Delta::insertion(tag.clone())).unwrap();

        let untag_ns = wdl_bench::median_ns(runs, || {
            view.apply(&Delta::deletion(tag.clone())).unwrap();
            view.apply(&Delta::insertion(tag.clone())).unwrap();
        });
        let unfriend_ns = wdl_bench::median_ns(runs, || {
            view.apply(&Delta::deletion(friend.clone())).unwrap();
            view.apply(&Delta::insertion(friend.clone())).unwrap();
        });
        let recompute_ns = wdl_bench::median_ns(runs, || {
            black_box(program.eval(&base).unwrap());
        });
        // The maintained number covers a delete *and* the re-insert that
        // undoes it, so the per-deletion speedup is at least this ratio.
        let speedup = recompute_ns as f64 / untag_ns as f64;
        println!(
            "{:>8} {:>8} {:>7} {:>16} {:>16} {:>16} {:>8.1}x",
            base_facts,
            derived,
            program.stratum_count(),
            untag_ns,
            unfriend_ns,
            recompute_ns,
            speedup
        );
        c.record_metric(format!("untag_pair_ns_{base_facts}"), untag_ns as f64);
        c.record_metric(format!("recompute_ns_{base_facts}"), recompute_ns as f64);
        c.record_metric(format!("speedup_{base_facts}"), speedup);
        if base_facts >= 10_000 {
            assert!(
                speedup >= 10.0,
                "single-fact deletion must be maintained ≥10× faster than \
                 recomputation on a ≥10k-fact database (got {speedup:.1}×)"
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_incremental");
    for (i, &(pics, tags_per, persons)) in scales().iter().enumerate() {
        let program = wepic_program();
        let base = wepic_base(pics, tags_per, persons);
        let n = base.fact_count();
        let (tag, friend) = churn_facts(pics, persons);

        let mut view = MaterializedView::new(program.clone(), base.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("untag_maintain", n), &tag, |b, tag| {
            b.iter(|| {
                view.apply(&Delta::deletion(tag.clone())).unwrap();
                view.apply(&Delta::insertion(tag.clone())).unwrap();
            })
        });
        let mut view = MaterializedView::new(program.clone(), base.clone()).unwrap();
        g.bench_with_input(
            BenchmarkId::new("unfriend_maintain", n),
            &friend,
            |b, friend| {
                b.iter(|| {
                    view.apply(&Delta::deletion(friend.clone())).unwrap();
                    view.apply(&Delta::insertion(friend.clone())).unwrap();
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("recompute", n), &base, |b, base| {
            b.iter(|| black_box(program.eval(base).unwrap()))
        });

        // End-to-end: a peer stage absorbing one untag via the maintained
        // materialization.
        let mut peer = wepic_peer(&format!("s{i}"), pics, tags_per, persons);
        peer.run_stage().unwrap();
        let tag_vals: Vec<Value> = tag.tuple.to_vec();
        g.bench_with_input(
            BenchmarkId::new("peer_untag_stage", n),
            &tag_vals,
            |b, vals| {
                b.iter(|| {
                    peer.delete_local("tag", vals.clone()).unwrap();
                    peer.run_stage().unwrap();
                    peer.insert_local("tag", vals.clone()).unwrap();
                    peer.run_stage().unwrap();
                })
            },
        );
    }
    g.finish();
}

fn main() {
    let mut c = wdl_bench::criterion();
    table(&mut c);
    bench(&mut c);
    c.final_summary();
}
