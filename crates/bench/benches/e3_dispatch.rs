//! E3 — §3's transfer rule: peer AND relation variables in the head
//! (`$protocol@$attendee(...)`), dispatching picture notifications to each
//! recipient's preferred protocol.
//!
//! Measured claims: dispatch routes every (recipient, picture) pair to
//! exactly one protocol relation; throughput scales with recipients ×
//! selected pictures.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use wdl_bench::open_peer;
use wdl_core::runtime::LocalRuntime;
use wdl_core::RelationKind;
use wdl_datalog::Value;
use wepic::{ops, rules, schema};

const RECIPIENTS: &[usize] = &[2, 8, 32];
const PICS: usize = 10;

/// Builds a sender + `n` recipients with alternating protocols; returns the
/// runtime and recipient names.
fn build(tag: &str, n: usize) -> (LocalRuntime, Vec<String>) {
    let mut rt = LocalRuntime::new();
    let sender = format!("sender{tag}");
    let mut s = open_peer(&sender);
    schema::declare_attendee(&mut s).unwrap();
    s.add_rule(rules::transfer(&sender).unwrap()).unwrap();
    for i in 0..PICS {
        ops::select_picture(&mut s, &format!("p{i}.jpg"), i as i64, &sender).unwrap();
    }
    let mut names = Vec::new();
    for i in 0..n {
        let name = format!("rcpt{tag}n{i}");
        let mut p = open_peer(&name);
        p.declare("email", 4, RelationKind::Extensional).unwrap();
        p.declare("wepicInbox", 4, RelationKind::Extensional)
            .unwrap();
        let protocol = if i % 2 == 0 { "email" } else { "wepicInbox" };
        p.insert_local("communicate", vec![Value::from(protocol)])
            .unwrap();
        ops::select_attendee(&mut s, &name).unwrap();
        names.push(name);
        rt.add_peer(p).unwrap();
    }
    rt.add_peer(s).unwrap();
    (rt, names)
}

fn run(rt: &mut LocalRuntime, names: &[String]) -> (usize, usize, usize) {
    let r = rt.run_to_quiescence(256).expect("engine runs");
    assert!(r.quiescent);
    let mut email = 0;
    let mut inbox = 0;
    for n in names {
        email += rt.peer(n.as_str()).unwrap().relation_facts("email").len();
        inbox += rt
            .peer(n.as_str())
            .unwrap()
            .relation_facts("wepicInbox")
            .len();
    }
    (r.messages, email, inbox)
}

fn table() {
    println!("\n# E3: protocol dispatch ({PICS} selected pictures, alternating protocols)");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "recipients", "messages", "emails", "inbox", "total"
    );
    for (i, &n) in RECIPIENTS.iter().enumerate() {
        let (mut rt, names) = build(&format!("t{i}"), n);
        let (messages, email, inbox) = run(&mut rt, &names);
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>10}",
            n,
            messages,
            email,
            inbox,
            email + inbox
        );
        assert_eq!(email + inbox, n * PICS, "every pair routed exactly once");
        assert_eq!(email, (n.div_ceil(2)) * PICS);
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_dispatch");
    for (i, &n) in RECIPIENTS.iter().enumerate() {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut iter = 0usize;
            b.iter_with_large_drop(|| {
                iter += 1;
                let (mut rt, names) = build(&format!("c{i}x{iter}"), n);
                black_box(run(&mut rt, &names));
                rt
            });
        });
    }
    g.finish();
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
