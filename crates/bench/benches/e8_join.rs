//! E8 — §4 "Interaction via the Web": audience members launch their own
//! peers mid-run; the conference reconverges.
//!
//! Measured claims: convergence cost after k peers join scales with k (the
//! new peers' uploads), not with the size of the already-settled
//! conference; the registry and picture pool end exactly right.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use wdl_bench::loaded_conference;
use wepic::{ops, Picture};

const JOINERS: &[usize] = &[1, 4, 8];
const BASE_ATTENDEES: usize = 4;
const PICS_PER_PEER: usize = 10;

fn join_and_settle(conf: &mut wepic::Conference, k: usize, tag: &str) -> (usize, usize, usize) {
    for j in 0..k {
        let name = format!("aud{tag}n{j}");
        conf.add_attendee(&name, true).unwrap();
        let p = conf.peer_mut(name.as_str()).unwrap();
        ops::upload_picture(
            p,
            &Picture {
                id: 100_000 + j as i64,
                name: format!("aud{j}.jpg"),
                owner: name.clone(),
                data: vec![j as u8; 32],
            },
        )
        .unwrap();
    }
    let r = conf.settle(256).expect("resettles");
    assert!(r.quiescent);
    let attendees = conf
        .peer("sigmod")
        .unwrap()
        .relation_facts("attendees")
        .len();
    let pictures = conf
        .peer("sigmod")
        .unwrap()
        .relation_facts("pictures")
        .len();
    (r.rounds, attendees, pictures)
}

fn table() {
    println!("\n# E8: k peers join a settled {BASE_ATTENDEES}-attendee conference");
    println!(
        "{:>6} {:>14} {:>12} {:>14}",
        "join", "rejoin_rounds", "attendees", "sigmod_pics"
    );
    for (i, &k) in JOINERS.iter().enumerate() {
        let mut conf = loaded_conference(BASE_ATTENDEES, PICS_PER_PEER, 32, 21);
        conf.settle(256).expect("initial settle");
        let (rounds, attendees, pictures) = join_and_settle(&mut conf, k, &format!("t{i}"));
        println!("{:>6} {:>14} {:>12} {:>14}", k, rounds, attendees, pictures);
        assert_eq!(attendees, BASE_ATTENDEES + k);
        assert_eq!(pictures, BASE_ATTENDEES * PICS_PER_PEER + k);
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_join_reconverge");
    for (i, &k) in JOINERS.iter().enumerate() {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut iter = 0usize;
            b.iter_with_large_drop(|| {
                iter += 1;
                let mut conf = loaded_conference(BASE_ATTENDEES, PICS_PER_PEER, 32, 21);
                conf.settle(256).expect("initial settle");
                black_box(join_and_settle(&mut conf, k, &format!("c{i}x{iter}")));
                conf
            });
        });
    }
    g.finish();
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
