//! E5 — §4 "Illustration of the control of delegation": a burst of D
//! delegations from an untrusted peer queues; approval installs them.
//!
//! Measured claims: queueing is O(D) and adds no fixpoint cost (the queued
//! rules never run); post-approval the whole batch installs and the views
//! fill in one settle.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use wdl_bench::open_peer;
use wdl_core::runtime::LocalRuntime;
use wdl_core::{Peer, RelationKind};
use wdl_datalog::Value;
use wdl_parser::parse_rule;

const BURSTS: &[usize] = &[1, 10, 100];

/// An untrusted sender installs `d` distinct view rules at `target`.
fn build(tag: &str, d: usize) -> LocalRuntime {
    let mut rt = LocalRuntime::new();
    let sender = format!("acl_s{tag}");
    let target = format!("acl_t{tag}");

    let mut s = open_peer(&sender);
    for i in 0..d {
        s.declare(format!("view{i}").as_str(), 1, RelationKind::Intensional)
            .unwrap();
        s.add_rule(parse_rule(&format!("view{i}@{sender}($x) :- items{i}@{target}($x);")).unwrap())
            .unwrap();
    }
    rt.add_peer(s).unwrap();

    let mut t = Peer::new(target.as_str()); // default policy: queue untrusted
    for i in 0..d {
        t.insert_local(format!("items{i}").as_str(), vec![Value::from(i as i64)])
            .unwrap();
    }
    rt.add_peer(t).unwrap();
    rt
}

fn run_queue_phase(rt: &mut LocalRuntime, tag: &str) -> (usize, usize) {
    let r = rt.run_to_quiescence(64).expect("engine runs");
    assert!(r.quiescent);
    let target = format!("acl_t{tag}");
    let pending = rt
        .peer(target.as_str())
        .unwrap()
        .pending_delegations()
        .len();
    (r.rounds, pending)
}

fn approve_all_and_settle(rt: &mut LocalRuntime, tag: &str) -> (usize, usize) {
    let target = format!("acl_t{tag}");
    let sender = format!("acl_s{tag}");
    let ids: Vec<_> = rt
        .peer(target.as_str())
        .unwrap()
        .pending_delegations()
        .iter()
        .map(|p| p.delegation.id)
        .collect();
    let t = rt.peer_mut(target.as_str()).unwrap();
    for id in &ids {
        t.approve_delegation(*id).unwrap();
    }
    let r = rt.run_to_quiescence(64).expect("engine runs");
    assert!(r.quiescent);
    // Each view received its fact.
    let filled = (0..ids.len())
        .filter(|i| {
            !rt.peer(sender.as_str())
                .unwrap()
                .relation_facts(format!("view{i}").as_str())
                .is_empty()
        })
        .count();
    (r.rounds, filled)
}

fn table() {
    println!("\n# E5: delegation-control queue: burst size vs queue/install behaviour");
    println!(
        "{:>6} {:>12} {:>9} {:>14} {:>12}",
        "burst", "queue_rounds", "pending", "approve_rounds", "views_filled"
    );
    for (i, &d) in BURSTS.iter().enumerate() {
        let tag = format!("t{i}");
        let mut rt = build(&tag, d);
        let (qr, pending) = run_queue_phase(&mut rt, &tag);
        assert_eq!(pending, d, "whole burst queues");
        let (ar, filled) = approve_all_and_settle(&mut rt, &tag);
        assert_eq!(filled, d, "every approved rule runs");
        println!(
            "{:>6} {:>12} {:>9} {:>14} {:>12}",
            d, qr, pending, ar, filled
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_acl_queue_then_approve");
    for (i, &d) in BURSTS.iter().enumerate() {
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let mut iter = 0usize;
            b.iter_with_large_drop(|| {
                iter += 1;
                let tag = format!("c{i}x{iter}");
                let mut rt = build(&tag, d);
                black_box(run_queue_phase(&mut rt, &tag));
                black_box(approve_all_and_settle(&mut rt, &tag));
                rt
            });
        });
    }
    g.finish();
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
