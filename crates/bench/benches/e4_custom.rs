//! E4 — §4 "Customizing rules": the rating-5 filter. Selectivity sweep:
//! what share of pictures carries a 5 rating.
//!
//! Measured claims: view size tracks selectivity exactly; evaluation work
//! (and wall time) shrinks as the filter gets more selective because the
//! join through `rate@$owner` prunes early.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use wdl_bench::open_peer;
use wdl_core::runtime::LocalRuntime;
use wdl_core::RelationKind;
use wdl_datalog::Value;
use wepic::{ops, rules, PictureCorpus};

const SELECTIVITY_PCT: &[usize] = &[1, 10, 50, 100];
const PICS: usize = 200;

fn build(tag: &str, pct: usize) -> LocalRuntime {
    let mut rt = LocalRuntime::new();
    let viewer = format!("v{tag}");
    let source = format!("s{tag}");

    let mut v = open_peer(&viewer);
    v.declare("attendeePictures", 4, RelationKind::Intensional)
        .unwrap();
    v.add_rule(rules::rating_filter(&viewer, 5).unwrap())
        .unwrap();
    v.insert_local("selectedAttendee", vec![Value::from(source.as_str())])
        .unwrap();
    rt.add_peer(v).unwrap();

    let mut s = open_peer(&source);
    let mut corpus = PictureCorpus::new(13);
    for (i, pic) in corpus.pictures(&source, PICS, 16).iter().enumerate() {
        wdl_bench::upload_raw(&mut s, pic);
        // Exactly pct% of pictures get a 5; the rest get a 3.
        let rating = if (i * 100) < pct * PICS { 5 } else { 3 };
        ops::rate(&mut s, pic.id, rating).unwrap();
    }
    rt.add_peer(s).unwrap();
    rt
}

fn run(rt: &mut LocalRuntime, tag: &str) -> (usize, usize) {
    let r = rt.run_to_quiescence(256).expect("engine runs");
    assert!(r.quiescent);
    let view = rt
        .peer(format!("v{tag}").as_str())
        .unwrap()
        .relation_facts("attendeePictures")
        .len();
    (r.messages, view)
}

fn table() {
    println!("\n# E4: rating-filter selectivity sweep ({PICS} pictures)");
    println!(
        "{:>12} {:>10} {:>10}",
        "selectivity%", "messages", "view_size"
    );
    for (i, &pct) in SELECTIVITY_PCT.iter().enumerate() {
        let tag = format!("t{i}");
        let mut rt = build(&tag, pct);
        let (messages, view) = run(&mut rt, &tag);
        println!("{:>12} {:>10} {:>10}", pct, messages, view);
        assert_eq!(view, pct * PICS / 100, "view size == selectivity");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_rating_filter");
    for (i, &pct) in SELECTIVITY_PCT.iter().enumerate() {
        g.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            let mut iter = 0usize;
            b.iter_with_large_drop(|| {
                iter += 1;
                let tag = format!("c{i}x{iter}");
                let mut rt = build(&tag, pct);
                black_box(run(&mut rt, &tag));
                rt
            });
        });
    }
    g.finish();
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
