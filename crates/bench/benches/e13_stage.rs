//! E13 — compiled stage-layer matcher vs the `Subst` interpreter on
//! delegated workloads (ISSUE 5).
//!
//! The WebdamLog stage loop — the part that actually reproduces the
//! paper's delegation model — historically ran the symbol-keyed `Subst`
//! interpreter even after the datalog kernel moved to compiled
//! register-file plans (PR 4). This bench measures the effect of
//! compiling the *local prefix* of distributed rules
//! (`Peer::set_compiled_stage`) on the paper's Wepic delegation fan-out
//! shape:
//!
//! * a **hub** peer holds `selectedAttendee` rows and the rating-filter
//!   rule `attendeePictures@hub :- selectedAttendee@hub($a),
//!   pictures@$a(...), rate@$a($id, $r), $r >= 3` — every stage
//!   re-derives one delegation per selected attendee (delegation
//!   fan-out, per-stage soft state);
//! * each **attendee** runs the delegated remainder — after
//!   instantiation a *fully local* join `pictures ⋈ rate` with a
//!   comparison filter and a remote head — re-evaluated every stage
//!   (the paper's soft-state re-derivation).
//!
//! Both engines run identical peers on identical data; the headline
//! `stage_speedup` metric (interpreted / compiled wall time of a
//! hub-stage + attendee-stage pair, measured at the same workload scale
//! in quick and full runs) feeds the CI perf gate (`bench-gate`) via
//! `BENCH_e13_stage.json`. The ≥ 1.3× headline assertion runs only at
//! full sampling (quick CI smoke relies on the gate's ratio floor).

use criterion::BenchmarkId;
use std::hint::black_box;

use wdl_bench::{open_peer, quick};
use wdl_core::{Message, NameTerm, Peer, RelationKind, WAtom, WBodyItem, WRule};
use wdl_datalog::{CmpOp, Term, Value};

/// One workload scale: selected attendees (delegation fan-out width) and
/// pictures+ratings per attendee (delegated join size). One scale, same
/// in quick and full mode, so the pinned ratio is like-for-like.
const ATTENDEES: usize = 16;
const PICS: usize = 480;

/// The §3.5 rating-filter rule: body splits at `pictures@$attendee`, so
/// the delegated remainder instantiates to a fully local join + filter
/// at each attendee.
fn rating_filter_rule() -> WRule {
    WRule::new(
        WAtom::at(
            "attendeePictures",
            "hub",
            vec![
                Term::var("id"),
                Term::var("name"),
                Term::var("owner"),
                Term::var("data"),
            ],
        ),
        vec![
            WAtom::at("selectedAttendee", "hub", vec![Term::var("a")]).into(),
            WAtom::new(
                NameTerm::name("pictures"),
                NameTerm::var("a"),
                vec![
                    Term::var("id"),
                    Term::var("name"),
                    Term::var("owner"),
                    Term::var("data"),
                ],
            )
            .into(),
            WAtom::new(
                NameTerm::name("rate"),
                NameTerm::var("a"),
                vec![Term::var("id"), Term::var("r")],
            )
            .into(),
            WBodyItem::cmp(CmpOp::Ge, Term::var("r"), Term::cst(3)),
        ],
    )
}

/// Builds hub + attendees, runs the delegation handshake to a settled
/// state, and returns the system.
fn build(compiled: bool) -> (Peer, Vec<Peer>) {
    let mut hub = open_peer("hub");
    hub.set_compiled_stage(compiled);
    hub.declare("attendeePictures", 4, RelationKind::Intensional)
        .unwrap();
    hub.add_rule(rating_filter_rule()).unwrap();

    let names: Vec<String> = (0..ATTENDEES).map(|i| format!("att{i}")).collect();
    for n in &names {
        hub.insert_local("selectedAttendee", vec![Value::from(n.as_str())])
            .unwrap();
    }
    let mut atts: Vec<Peer> = Vec::with_capacity(ATTENDEES);
    for n in &names {
        let mut a = open_peer(n);
        a.set_compiled_stage(compiled);
        for p in 0..PICS {
            a.insert_local(
                "pictures",
                vec![
                    Value::from(p as i64),
                    Value::from(format!("{n}-{p}.jpg")),
                    Value::from(n.as_str()),
                    Value::bytes(&[0xAB; 8]),
                ],
            )
            .unwrap();
            a.insert_local(
                "rate",
                vec![Value::from(p as i64), Value::from((p % 6) as i64)],
            )
            .unwrap();
        }
        atts.push(a);
    }

    // Delegation handshake: hub emits, attendees install + derive, facts
    // flow back, everyone settles.
    let route = |msgs: Vec<Message>, hub: &mut Peer, atts: &mut Vec<Peer>| {
        for m in msgs {
            if m.to == hub.name() {
                hub.enqueue(m);
            } else if let Some(a) = atts.iter_mut().find(|a| a.name() == m.to) {
                a.enqueue(m);
            }
        }
    };
    for _ in 0..3 {
        let mut pending = hub.run_stage().expect("hub stage").messages;
        for a in atts.iter_mut() {
            pending.extend(a.run_stage().expect("attendee stage").messages);
        }
        route(pending, &mut hub, &mut atts);
    }
    assert_eq!(
        atts[0].installed_delegations().len(),
        1,
        "delegated remainder installed"
    );
    let expected = ATTENDEES * PICS / 2; // $r >= 3 keeps r in {3,4,5} of 0..=5
    assert_eq!(
        hub.relation_facts("attendeePictures").len(),
        expected,
        "delegated derivations arrived"
    );
    (hub, atts)
}

struct Measured {
    hub_ns: u128,
    att_ns: u128,
    derivations: u64,
}

/// Median per-stage wall time of the hub (delegation fan-out
/// re-derivation) and one attendee (delegated-join re-derivation), at a
/// settled fixpoint: every stage re-derives the full soft state, no
/// messages flow. The two engines' samples are **interleaved** — one
/// compiled stage, one interpreted stage, alternating — so machine-load
/// drift during the run hits both engines equally and the speedup ratio
/// stays stable on noisy shared runners.
fn measure_pair(runs: usize) -> (Measured, Measured) {
    let (mut chub, mut catts) = build(true);
    let (mut ihub, mut iatts) = build(false);
    let mut samples: [Vec<u128>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut derivations = (0u64, 0u64);
    let timed = |p: &mut Peer| -> (u128, u64) {
        let t0 = std::time::Instant::now();
        let out = p.run_stage().expect("stage");
        let ns = t0.elapsed().as_nanos();
        assert!(out.messages.is_empty(), "settled: no diffs");
        black_box(out.stats.derivations);
        (ns, out.stats.derivations as u64)
    };
    for _ in 0..runs {
        samples[0].push(timed(&mut chub).0);
        samples[1].push(timed(&mut ihub).0);
        let (ns, d) = timed(&mut catts[0]);
        samples[2].push(ns);
        derivations.0 = d;
        let (ns, d) = timed(&mut iatts[0]);
        samples[3].push(ns);
        derivations.1 = d;
    }
    let median = |v: &mut Vec<u128>| {
        v.sort();
        v[v.len() / 2]
    };
    (
        Measured {
            hub_ns: median(&mut samples[0]),
            att_ns: median(&mut samples[2]),
            derivations: derivations.0,
        },
        Measured {
            hub_ns: median(&mut samples[1]),
            att_ns: median(&mut samples[3]),
            derivations: derivations.1,
        },
    )
}

/// Median hub-stage wall time with the recompute-path working-database
/// cache on vs off (both compiled). The hub's rule set is uncompilable
/// (remote body atoms), so every stage takes the recompute path; with the
/// cache off that path pays the per-stage fixed costs from scratch —
/// clone the store, re-inject every maintained remote contribution —
/// while the cache rolls back last stage's derivations and replays only
/// the base-fact delta. Samples interleave the two configurations so
/// machine-load drift cancels out of the ratio.
fn measure_hub_cache(runs: usize) -> (u128, u128) {
    let (mut hub_cached, _atts) = build(true);
    let (mut hub_scratch, _atts2) = build(true);
    hub_scratch.set_recompute_cache(false);
    let timed = |p: &mut Peer| -> u128 {
        let t0 = std::time::Instant::now();
        let out = p.run_stage().expect("stage");
        let ns = t0.elapsed().as_nanos();
        assert!(out.messages.is_empty(), "settled: no diffs");
        black_box(out.stats.derivations);
        ns
    };
    let mut cached = Vec::with_capacity(runs);
    let mut scratch = Vec::with_capacity(runs);
    for _ in 0..runs {
        cached.push(timed(&mut hub_cached));
        scratch.push(timed(&mut hub_scratch));
    }
    cached.sort();
    scratch.sort();
    (cached[cached.len() / 2], scratch[scratch.len() / 2])
}

fn main() {
    let mut c = wdl_bench::criterion();
    let runs = if quick() { 9 } else { 31 };

    println!("E13: compiled vs interpreted stage evaluation");
    println!(
        "workload: {ATTENDEES} attendees x {PICS} pictures+ratings, \
         rating-filter delegation fan-out"
    );

    let (compiled, interpreted) = measure_pair(runs);
    assert_eq!(
        compiled.derivations, interpreted.derivations,
        "engines must re-derive the same soft state"
    );

    // The headline: evaluating the *delegated* rule (instantiated
    // remainder, fully local join + filter + remote head) — exactly the
    // stage-layer matcher work this change compiles. The hub's fan-out
    // stage is also recorded; its per-stage fixed costs (store clone +
    // remote-contribution injection) are now amortized by the recompute
    // working-database cache — measured separately below as
    // `hub_cache_speedup` — but the remaining work is shared by both
    // engines, so the engine ratio stays informational rather than
    // pinned.
    let delegated_stage_speedup = interpreted.att_ns as f64 / compiled.att_ns as f64;
    let fanout_stage_speedup = interpreted.hub_ns as f64 / compiled.hub_ns as f64;
    let pair_speedup = (interpreted.hub_ns + interpreted.att_ns) as f64
        / (compiled.hub_ns + compiled.att_ns) as f64;

    println!("| stage              | interpreted | compiled | speedup |");
    println!("|--------------------|-------------|----------|---------|");
    println!(
        "| hub (fan-out)      | {:>9.1}us | {:>6.1}us | {fanout_stage_speedup:>6.2}x |",
        interpreted.hub_ns as f64 / 1e3,
        compiled.hub_ns as f64 / 1e3,
    );
    println!(
        "| attendee (deleg.)  | {:>9.1}us | {:>6.1}us | {delegated_stage_speedup:>6.2}x |",
        interpreted.att_ns as f64 / 1e3,
        compiled.att_ns as f64 / 1e3,
    );
    println!("pair speedup (hub + attendee): {pair_speedup:.2}x");

    // ISSUE 6 satellite: the recompute path's fixed costs no longer
    // recur every stage — the working database persists across stages
    // and replays only the base-fact delta.
    let (hub_cached_ns, hub_scratch_ns) = measure_hub_cache(runs);
    let hub_cache_speedup = hub_scratch_ns as f64 / hub_cached_ns as f64;
    println!(
        "hub recompute cache: {:.1}us cached vs {:.1}us scratch \
         ({hub_cache_speedup:.2}x)",
        hub_cached_ns as f64 / 1e3,
        hub_scratch_ns as f64 / 1e3,
    );

    c.record_metric("delegated_stage_speedup", delegated_stage_speedup);
    c.record_metric("fanout_stage_speedup", fanout_stage_speedup);
    c.record_metric("pair_speedup", pair_speedup);
    c.record_metric("hub_cache_speedup", hub_cache_speedup);
    c.record_metric("attendee_derivations", compiled.derivations as f64);

    if !quick() {
        assert!(
            delegated_stage_speedup >= 1.3,
            "ISSUE 5 headline: compiled stage must be >= 1.3x on the \
             delegated workload (measured {delegated_stage_speedup:.2}x)"
        );
    }

    // Criterion timing groups for the JSON results array (per-engine
    // per-stage medians are already captured above; these sample the
    // steady-state loop under criterion's harness for the record).
    for (label, engine_compiled) in [("compiled", true), ("interpreted", false)] {
        let (mut hub, mut atts) = build(engine_compiled);
        let mut group = c.benchmark_group("e13_stage");
        group.bench_with_input(BenchmarkId::new("hub_stage", label), &ATTENDEES, |b, _| {
            b.iter(|| black_box(hub.run_stage().expect("stage").stats.derivations));
        });
        group.bench_with_input(BenchmarkId::new("attendee_stage", label), &PICS, |b, _| {
            b.iter(|| black_box(atts[0].run_stage().expect("stage").stats.derivations));
        });
    }

    c.final_summary();
}
