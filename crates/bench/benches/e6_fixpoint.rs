//! E6 — §2's engine kernel: seminaive vs naive fixpoint (the ablation that
//! justifies the Bud-style delta evaluation the paper builds on).
//!
//! Measured claims: seminaive does strictly fewer derivation attempts and
//! the wall-time gap *widens* with input size on recursive workloads
//! (transitive closure over chains and random graphs); on non-recursive
//! workloads (the Wepic rules) the two are close.

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use wdl_datalog::{Atom, Database, EvalStrategy, Fact, Program, Rule, Term, Value};

const CHAIN: &[i64] = &[32, 64, 128];
const GRAPH_EDGES: &[usize] = &[100, 300];

fn atom(p: &str, vs: &[&str]) -> Atom {
    Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect())
}

fn tc_program() -> Program {
    Program::new(vec![
        Rule::new(
            atom("path", &["x", "y"]),
            vec![atom("edge", &["x", "y"]).into()],
        ),
        Rule::new(
            atom("path", &["x", "z"]),
            vec![
                atom("edge", &["x", "y"]).into(),
                atom("path", &["y", "z"]).into(),
            ],
        ),
    ])
    .unwrap()
}

fn chain_db(n: i64) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert(Fact::new("edge", vec![Value::from(i), Value::from(i + 1)]))
            .unwrap();
    }
    db
}

fn random_graph(edges: usize, nodes: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        db.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)]))
            .unwrap();
    }
    db
}

fn table() {
    let program = tc_program();
    println!("\n# E6: seminaive vs naive — derivation attempts and facts (transitive closure)");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "workload", "facts", "semi_derivs", "naive_derivs", "ratio"
    );
    for &n in CHAIN {
        let db = chain_db(n);
        let (_, semi) = program.eval_with(&db, EvalStrategy::Seminaive).unwrap();
        let (_, naive) = program.eval_with(&db, EvalStrategy::Naive).unwrap();
        println!(
            "{:>10} {:>8} {:>14} {:>14} {:>8.1}",
            format!("chain{n}"),
            semi.facts_derived,
            semi.derivations,
            naive.derivations,
            naive.derivations as f64 / semi.derivations as f64
        );
        assert!(semi.derivations < naive.derivations);
    }
    for &e in GRAPH_EDGES {
        let db = random_graph(e, 40, 3);
        let (out_s, semi) = program.eval_with(&db, EvalStrategy::Seminaive).unwrap();
        let (out_n, naive) = program.eval_with(&db, EvalStrategy::Naive).unwrap();
        assert_eq!(
            out_s.relation("path").map(|r| r.len()),
            out_n.relation("path").map(|r| r.len())
        );
        println!(
            "{:>10} {:>8} {:>14} {:>14} {:>8.1}",
            format!("rand{e}"),
            semi.facts_derived,
            semi.derivations,
            naive.derivations,
            naive.derivations as f64 / semi.derivations as f64
        );
    }
}

fn bench(c: &mut Criterion) {
    let program = tc_program();
    for (strategy, name) in [
        (EvalStrategy::Seminaive, "e6_seminaive"),
        (EvalStrategy::Naive, "e6_naive"),
    ] {
        let mut g = c.benchmark_group(name);
        for &n in CHAIN {
            let db = chain_db(n);
            g.bench_with_input(BenchmarkId::new("chain", n), &db, |b, db| {
                b.iter(|| black_box(program.eval_with(db, strategy).unwrap()));
            });
        }
        for &e in GRAPH_EDGES {
            let db = random_graph(e, 40, 3);
            g.bench_with_input(BenchmarkId::new("rand", e), &db, |b, db| {
                b.iter(|| black_box(program.eval_with(db, strategy).unwrap()));
            });
        }
        g.finish();
    }
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
