//! E7 — transport ablation: in-memory channels vs framed TCP, and the wire
//! codec itself, across payload sizes (64 B metadata facts up to 16 KiB
//! picture blobs).
//!
//! Measured claims: codec cost scales linearly with payload; the in-memory
//! transport is orders of magnitude cheaper than TCP per message; both
//! deliver identical content (asserted).

use criterion::{BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wdl_core::{FactKind, Message, Payload, WFact};
use wdl_datalog::{Symbol, Value};
use wdl_net::codec;
use wdl_net::memory::InMemoryNetwork;
use wdl_net::tcp::TcpEndpoint;
use wdl_net::Transport;

const SIZES: &[usize] = &[64, 1024, 16 * 1024];
const BATCH: usize = 100;

fn picture_msg(from: &str, to: &str, id: i64, payload: usize) -> Message {
    Message::new(
        Symbol::intern(from),
        Symbol::intern(to),
        Payload::Facts {
            kind: FactKind::Persistent,
            additions: vec![WFact::new(
                "pictures",
                to,
                vec![
                    Value::from(id),
                    Value::from(format!("img{id}.jpg")),
                    Value::from(from),
                    Value::from(vec![7u8; payload]),
                ],
            )],
            retractions: vec![],
        },
    )
}

fn table() {
    println!("\n# E7: wire codec frame sizes");
    println!("{:>10} {:>12}", "payload_B", "frame_B");
    for &s in SIZES {
        let msg = picture_msg("a", "b", 1, s);
        let bytes = codec::encode(&msg);
        assert_eq!(codec::decode(&bytes).unwrap(), msg);
        println!("{:>10} {:>12}", s, bytes.len());
    }

    println!("\n# E7: {BATCH}-message batch delivery (memory vs tcp), per payload size");
    println!(
        "{:>10} {:>14} {:>14}",
        "payload_B", "mem_delivered", "tcp_delivered"
    );
    for &s in SIZES {
        // memory
        let net = InMemoryNetwork::new();
        let mut a = net.endpoint(format!("m7a{s}").as_str()).unwrap();
        let mut b = net.endpoint(format!("m7b{s}").as_str()).unwrap();
        for i in 0..BATCH {
            a.send(picture_msg(
                &format!("m7a{s}"),
                &format!("m7b{s}"),
                i as i64,
                s,
            ))
            .unwrap();
        }
        let mem = b.drain().len();

        // tcp
        let mut ta = TcpEndpoint::bind(format!("t7a{s}").as_str(), "127.0.0.1:0").unwrap();
        let tb = TcpEndpoint::bind(format!("t7b{s}").as_str(), "127.0.0.1:0").unwrap();
        ta.register(format!("t7b{s}").as_str(), tb.local_addr());
        for i in 0..BATCH {
            ta.send(picture_msg(
                &format!("t7a{s}"),
                &format!("t7b{s}"),
                i as i64,
                s,
            ))
            .unwrap();
        }
        let mut tb = tb;
        let mut tcp = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while tcp < BATCH && std::time::Instant::now() < deadline {
            tcp += tb.drain().len();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        println!("{:>10} {:>14} {:>14}", s, mem, tcp);
        assert_eq!(mem, BATCH);
        assert_eq!(tcp, BATCH);
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_codec");
    for &s in SIZES {
        let msg = picture_msg("bench-a", "bench-b", 1, s);
        let bytes = codec::encode(&msg);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", s), &msg, |b, msg| {
            b.iter(|| black_box(codec::encode(msg)));
        });
        g.bench_with_input(BenchmarkId::new("decode", s), &bytes, |b, bytes| {
            b.iter(|| black_box(codec::decode(bytes).unwrap()));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e7_memory_transport");
    for &s in SIZES {
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            let net = InMemoryNetwork::new();
            let an = format!("bench7a{s}");
            let bn = format!("bench7b{s}");
            let mut a = net.endpoint(an.as_str()).unwrap();
            let mut bb = net.endpoint(bn.as_str()).unwrap();
            b.iter(|| {
                for i in 0..BATCH {
                    a.send(picture_msg(&an, &bn, i as i64, s)).unwrap();
                }
                let got = bb.drain();
                assert_eq!(got.len(), BATCH);
                black_box(got)
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e7_tcp_transport");
    g.sample_size(10);
    for &s in SIZES {
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            let an = format!("bt7a{s}");
            let bn = format!("bt7b{s}");
            let mut a = TcpEndpoint::bind(an.as_str(), "127.0.0.1:0").unwrap();
            let mut bb = TcpEndpoint::bind(bn.as_str(), "127.0.0.1:0").unwrap();
            a.register(bn.as_str(), bb.local_addr());
            b.iter(|| {
                for i in 0..BATCH {
                    a.send(picture_msg(&an, &bn, i as i64, s)).unwrap();
                }
                let mut got = 0;
                while got < BATCH {
                    got += bb.drain().len();
                    std::thread::yield_now();
                }
                black_box(got)
            });
        });
    }
    g.finish();
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
