//! E14 — sharded scale-out on the publish-burst macro-workload (ISSUE 6).
//!
//! The scenario: a conference network of 10⁵ registered attendee peers,
//! each carrying the §4 publish rule into one hub registry, of which only
//! a few hundred actually publish. The reference `LocalRuntime` ticks
//! every registered peer every round — O(total) — while `ShardedRuntime`
//! schedules by inbox and runs only the publishers and the hub —
//! O(active). This bench pins that difference:
//!
//! * **`scale_independence`** (gated): the ratio of settled burst-round
//!   latency at 10⁴ total peers to the same burst at 10⁵ total peers,
//!   identical active set. Inbox-driven scheduling makes round cost a
//!   function of the active set, so the ratio sits near 1.0; a runtime
//!   that pays per registered peer drags it toward 0.1.
//! * **`active_set_speedup`** (informational): a full sequential
//!   `LocalRuntime::tick` at 10⁵ peers versus the sharded active round —
//!   the headline O(total)/O(active) gap. Machine-dependent in absolute
//!   terms, so recorded but not gated.
//! * **Convergence oracle**: the sharded run's final hub registry must
//!   equal the sequential reference's after identical batches — scale
//!   must not buy divergence. Runs at the full 10⁵ scale in quick mode
//!   too (the workload scale is the same in quick and full runs, repo
//!   convention, so gate ratios compare like for like).
//! * **`tracing_overhead`** (gated by ceiling): burst latency with the
//!   ISSUE 7 trace pipeline on versus off at the 10⁴ scale — the median
//!   of pairwise ratios over alternating traced/untraced burst *cycles*
//!   (burst tick through quiescence, state held stationary by per-sample
//!   cleanup), which isolates the tracer from machine drift and state
//!   growth. The profiled pass also prints `profile:`-prefixed top-rule
//!   and critical-path lines for the CI job summary and asserts the
//!   longest program-activity chain runs through the fan-in hub.
//!
//! Per-round observability (active-peer fraction, routed messages, round
//! latency) is printed and recorded into `BENCH_e14_scale.json` for the
//! CI job summary.

use std::hint::black_box;
use wdl_bench::quick;
use wdl_core::runtime::LocalRuntime;
use wdl_core::shard::ShardedRuntime;
use wdl_datalog::{Tuple, Value};
use wdl_net::sim::SimOp;
use wepic::scenarios;

const SEED: u64 = 42;
/// Total registered peers for the headline run (the ISSUE's 10⁵ floor).
const TOTAL: usize = 100_000;
/// The smaller network for the scale-independence ratio.
const SMALL: usize = 10_000;
/// Publishers actually uploading — the active set.
const ACTIVE: usize = 500;
const PER: usize = 2;
const BATCHES: usize = 2;
const SHARDS: usize = 4;
const QUIESCE_ROUNDS: usize = 64;

/// Applies one scenario batch to a sharded runtime.
fn apply_batch(rt: &mut ShardedRuntime, batch: &[(wdl_datalog::Symbol, SimOp)]) {
    for (peer, op) in batch {
        match op.clone() {
            SimOp::Insert { rel, tuple } => {
                rt.insert_local(*peer, rel, tuple).expect("insert");
            }
            SimOp::Delete { rel, tuple } => {
                rt.delete_local(*peer, rel, tuple).expect("delete");
            }
        }
    }
}

fn quiesce_sharded(rt: &mut ShardedRuntime) -> usize {
    for round in 1..=QUIESCE_ROUNDS {
        let tick = rt.tick().expect("tick");
        if !tick.changed && tick.messages == 0 && tick.deferred == 0 {
            return round;
        }
    }
    panic!("sharded runtime did not quiesce in {QUIESCE_ROUNDS} rounds");
}

/// Builds the scenario network in a sharded runtime and runs all batches
/// to quiescence. Returns the runtime plus headline counters from the
/// first post-batch round (the maximally active one).
fn converge_sharded(total: usize) -> (ShardedRuntime, ShardReportSummary) {
    let scenario = scenarios::publish_burst(SEED, total, ACTIVE, PER, BATCHES);
    let mut rt = ShardedRuntime::new(SHARDS);
    rt.set_collect_stats(false);
    for p in (scenario.build)() {
        rt.add_peer(p).expect("unique peer names");
    }
    quiesce_sharded(&mut rt);
    let mut summary = ShardReportSummary::default();
    for batch in &scenario.batches {
        apply_batch(&mut rt, batch);
        let first = rt.tick().expect("tick");
        summary.active_peers = summary.active_peers.max(first.peers_run);
        summary.active_fraction = summary.active_fraction.max(first.active_fraction());
        summary.routed = summary.routed.max(first.messages);
        quiesce_sharded(&mut rt);
    }
    (rt, summary)
}

#[derive(Default)]
struct ShardReportSummary {
    active_peers: usize,
    active_fraction: f64,
    routed: usize,
}

/// The picture each publisher uploads for one (tag, sample) burst:
/// `(peer name, tuple)` pairs, ids unique per (tag, sample).
fn burst_pics(total: usize, tag: u32, sample: usize) -> Vec<(String, Vec<Value>)> {
    let stride = (total / ACTIVE).max(1);
    (0..ACTIVE)
        .map(|i| {
            let name = format!("burstAtt{}", i * stride + i % stride);
            let id = 1_000_000 + (tag as i64) * 1_000_000 + (sample * ACTIVE + i) as i64;
            let tuple = vec![
                Value::from(id),
                Value::from(format!("burst-{id}.jpg")),
                Value::from(name.as_str()),
                Value::bytes(&[0xEE; 8]),
            ];
            (name, tuple)
        })
        .collect()
}

/// One full burst cycle: every publisher uploads one fresh picture, one
/// tick runs them all (returned as the timed round), the burst drains to
/// quiescence, and the pictures are deleted again (retraction quiesced).
/// The cleanup keeps the publishers' local state — the timed round's
/// input — **stationary** across samples: without it each sample leaves
/// one more picture per publisher and the recompute-path stage cost
/// creeps up by ~10% per sample, drowning any cross-sample comparison
/// (tracing overhead, scale independence) in monotone drift. `sample`
/// must be unique per (tag, call) for fresh photo ids.
fn burst_sample(rt: &mut ShardedRuntime, tag: u32, sample: usize) -> u128 {
    let pics = burst_pics(rt.len() - 1, tag, sample);
    for (name, tuple) in &pics {
        rt.insert_local(name.as_str(), "pictures", tuple.clone())
            .expect("burst insert");
    }
    let t0 = std::time::Instant::now();
    let tick = rt.tick().expect("tick");
    let elapsed = t0.elapsed().as_nanos();
    assert_eq!(tick.peers_run, ACTIVE, "exactly the publishers run");
    black_box(tick.messages);
    quiesce_sharded(rt);
    for (name, tuple) in pics {
        rt.delete_local(name.as_str(), "pictures", tuple)
            .expect("burst cleanup");
    }
    quiesce_sharded(rt);
    elapsed
}

/// `cycles` consecutive burst cycles (insert → burst tick → quiesce →
/// cleanup → quiesce) under **one** timed region tens of milliseconds
/// long. A single burst round is a few milliseconds on this workload and
/// container scheduling can swing an individual round by a third either
/// way; a block this long averages the fast noise down far enough that
/// block-to-block ratios resolve a sub-15% effect.
fn burst_block(rt: &mut ShardedRuntime, tag: u32, sample0: usize, cycles: usize) -> u128 {
    let t0 = std::time::Instant::now();
    for j in 0..cycles {
        let pics = burst_pics(rt.len() - 1, tag, sample0 + j);
        for (name, tuple) in &pics {
            rt.insert_local(name.as_str(), "pictures", tuple.clone())
                .expect("burst insert");
        }
        let tick = rt.tick().expect("tick");
        assert_eq!(tick.peers_run, ACTIVE, "exactly the publishers run");
        black_box(tick.messages);
        quiesce_sharded(rt);
        for (name, tuple) in pics {
            rt.delete_local(name.as_str(), "pictures", tuple)
                .expect("burst cleanup");
        }
        quiesce_sharded(rt);
    }
    t0.elapsed().as_nanos()
}

/// Min wall time of the *active* round of a publish burst over `runs`
/// samples. Min, not median: publisher state grows by one picture per
/// sample round and allocator/page noise only ever adds time, so the
/// fastest sample is the cleanest estimate of the round's intrinsic
/// cost.
fn burst_round_ns(rt: &mut ShardedRuntime, runs: usize, tag: u32) -> u128 {
    (0..runs)
        .map(|run| burst_sample(rt, tag, run))
        .min()
        .expect("at least one sample")
}

/// Tracing overhead as the **median of pairwise ratios** over
/// alternating traced/untraced burst *blocks* ([`burst_block`]) on one
/// runtime. The blocks alternate in ping-pong order so slow machine
/// phases land on both modes alike, each block is long enough to average
/// out per-round scheduler noise, and the median of per-pair ratios
/// discards the pairs a noise spike still hit. (Separate traced and
/// untraced passes measured minutes apart drift by more than the
/// overhead being measured.) Returns the ratio and the fastest traced
/// block, normalised to one cycle.
fn paired_tracing_overhead(rt: &mut ShardedRuntime, pairs: usize, tag: u32) -> (f64, u128) {
    const CYCLES: usize = 4;
    let mut ratios = Vec::with_capacity(pairs);
    let mut traced_min = u128::MAX;
    let mut sample = 0usize;
    // One untimed warm-up pair: the first traced block grows every
    // publisher's event buffer and the aggregator's tables from empty,
    // a one-off cost that is not the steady-state overhead under test.
    for pair in 0..pairs + 1 {
        let traced_first = pair % 2 == 0;
        let mut t = [0u128; 2]; // [untraced, traced]
        for slot in 0..2 {
            let traced = (slot == 0) == traced_first;
            rt.set_tracing(traced);
            t[usize::from(traced)] = burst_block(rt, tag, sample, CYCLES);
            sample += CYCLES;
        }
        if pair > 0 {
            ratios.push(t[1] as f64 / t[0] as f64);
            traced_min = traced_min.min(t[1]);
        }
    }
    ratios.sort_by(f64::total_cmp);
    let mid = ratios.len() / 2;
    let median = if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    };
    (median, traced_min / CYCLES as u128)
}

/// The sequential reference at full scale: converge the same scenario on
/// `LocalRuntime`, return the hub registry (the convergence oracle) and
/// the median wall time of one full settled round (every peer ticked).
fn reference_state_and_round_ns(runs: usize) -> (Vec<Tuple>, u128) {
    let scenario = scenarios::publish_burst(SEED, TOTAL, ACTIVE, PER, BATCHES);
    let mut rt = LocalRuntime::new();
    for p in (scenario.build)() {
        rt.add_peer(p).expect("unique peer names");
    }
    rt.run_to_quiescence(QUIESCE_ROUNDS).expect("quiesce");
    for batch in &scenario.batches {
        for (peer, op) in batch {
            match op.clone() {
                SimOp::Insert { rel, tuple } => {
                    rt.peer_mut(*peer)
                        .expect("peer")
                        .insert_local(rel, tuple)
                        .expect("insert");
                }
                SimOp::Delete { rel, tuple } => {
                    rt.peer_mut(*peer)
                        .expect("peer")
                        .delete_local(rel, tuple)
                        .expect("delete");
                }
            }
        }
        let report = rt.run_to_quiescence(QUIESCE_ROUNDS).expect("quiesce");
        assert!(report.quiescent, "reference must converge");
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = std::time::Instant::now();
        let tick = rt.tick().expect("tick");
        samples.push(t0.elapsed().as_nanos());
        assert!(!tick.changed, "settled");
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mut hub = rt.peer("burstHub").expect("hub").relation_facts("pictures");
    hub.sort();
    (hub, median)
}

fn main() {
    let mut c = wdl_bench::criterion();
    let runs = if quick() { 5 } else { 15 };

    println!("E14: sharded scale-out on the publish-burst macro-workload");
    println!(
        "workload: {TOTAL} registered peers, {ACTIVE} publishers x {PER} \
         pictures x {BATCHES} batches, {SHARDS} shards"
    );

    // --- Full-scale sharded run + convergence oracle -------------------
    let (mut large, summary) = converge_sharded(TOTAL);
    let mut sharded_hub = large
        .relation_facts("burstHub", "pictures")
        .expect("hub exists");
    sharded_hub.sort();
    assert_eq!(
        sharded_hub.len(),
        ACTIVE * PER * BATCHES,
        "every upload reaches the registry"
    );

    let large_round_ns = burst_round_ns(&mut large, runs, 1);
    drop(large);

    // Oracle: the sequential reference over the same batches must agree
    // on the hub registry (burst_round_ns uploads extra pictures, so
    // compare the pre-burst converged prefix).
    let (reference_hub, local_round_ns) = reference_state_and_round_ns(runs.min(5));
    assert!(
        sharded_hub.iter().all(|t| reference_hub.contains(t))
            && reference_hub.len() >= sharded_hub.len(),
        "sharded registry must match the sequential reference"
    );
    assert_eq!(
        reference_hub.len(),
        sharded_hub.len(),
        "sharded and reference registries must be identical"
    );

    let (mut small, _) = converge_sharded(SMALL);
    let small_round_ns = burst_round_ns(&mut small, runs, 2);
    drop(small);

    // --- Profiled pass: the same burst with tracing on -----------------
    // On a fresh converged runtime, paired traced/untraced sampling pins
    // the pipeline's overhead (bench-gate ceilings it); a final profiled
    // burst builds the aggregate for the "profile:" summary CI publishes.
    // Twice `runs` pairs: the ratio compares two minima, and each needs
    // enough stationary samples to shake off scheduler noise that can
    // swing an individual burst round by a third either way.
    let (mut small, _) = converge_sharded(SMALL);
    let (tracing_overhead, traced_round_ns) = paired_tracing_overhead(&mut small, runs * 2, 3);
    small.set_tracing(true);
    for sample in 0..3 {
        burst_sample(&mut small, 4, sample);
    }
    {
        let agg = small.trace().expect("tracing enabled");
        for (label, stat) in agg.top_rules(5) {
            println!(
                "profile: rule {label} calls={} total_ms={:.3} mean_us={:.1} derived={}",
                stat.hist.count(),
                stat.hist.sum_ns() as f64 / 1e6,
                stat.hist.mean_ns() as f64 / 1e3,
                stat.derived,
            );
        }
        let paths = agg.critical_paths(3);
        for (i, path) in paths.iter().enumerate() {
            let chain: Vec<String> = path
                .nodes
                .iter()
                .map(|n| format!("{}@{}", n.peer, n.stage))
                .collect();
            println!(
                "profile: critpath[{i}] total_ms={:.3} len={} {}",
                path.total_ns as f64 / 1e6,
                path.nodes.len(),
                chain.join(" -> ")
            );
        }
        // Acceptance criterion (ISSUE 7): on the publish-burst workload
        // the longest program-activity chain runs through the hub — the
        // fan-in peer is the bottleneck the critical path must name.
        let top = paths.first().expect("burst produced stage executions");
        assert!(
            top.nodes.iter().any(|n| n.peer.to_string() == "burstHub"),
            "critical path must run through the fan-in hub, got: {top:?}"
        );
    }
    drop(small);

    // --- Metrics -------------------------------------------------------
    let scale_independence = small_round_ns as f64 / large_round_ns as f64;
    let active_set_speedup = local_round_ns as f64 / large_round_ns as f64;

    println!("| measure                        | value |");
    println!("|--------------------------------|-------|");
    println!(
        "| burst round @ {SMALL:>6} peers     | {:>8.2}ms |",
        small_round_ns as f64 / 1e6
    );
    println!(
        "| burst round @ {TOTAL:>6} peers     | {:>8.2}ms |",
        large_round_ns as f64 / 1e6
    );
    println!(
        "| full sequential round @ {TOTAL} | {:>8.2}ms |",
        local_round_ns as f64 / 1e6
    );
    println!("| scale_independence (10^4/10^5) | {scale_independence:>6.2}x |");
    println!("| active_set_speedup (seq/shard) | {active_set_speedup:>6.1}x |");
    println!(
        "| active peers / fraction        | {} / {:.4} |",
        summary.active_peers, summary.active_fraction
    );
    println!("| peak routed msgs per round     | {} |", summary.routed);
    println!(
        "| traced burst cycle @ {SMALL:>6}   | {:>8.2}ms |",
        traced_round_ns as f64 / 1e6
    );
    println!("| tracing_overhead (traced/not)  | {tracing_overhead:>6.3}x |");

    c.record_metric("scale_independence", scale_independence);
    c.record_metric("active_set_speedup", active_set_speedup);
    c.record_metric("peers_total", TOTAL as f64);
    c.record_metric("active_peers", summary.active_peers as f64);
    c.record_metric("active_fraction", summary.active_fraction);
    c.record_metric("routed_msgs_peak", summary.routed as f64);
    c.record_metric("burst_round_ms_100k", large_round_ns as f64 / 1e6);
    c.record_metric("burst_round_ms_10k", small_round_ns as f64 / 1e6);
    c.record_metric("seq_round_ms_100k", local_round_ns as f64 / 1e6);
    c.record_metric("traced_cycle_ms_10k", traced_round_ns as f64 / 1e6);
    c.record_metric("tracing_overhead", tracing_overhead);

    if !quick() {
        assert!(
            scale_independence >= 0.5,
            "ISSUE 6 headline: sharded round cost must track the active \
             set, not total peers (10^4 vs 10^5 ratio {scale_independence:.2})"
        );
        assert!(
            active_set_speedup >= 5.0,
            "sharded active round must beat the full sequential sweep \
             (measured {active_set_speedup:.1}x)"
        );
    }

    c.final_summary();
}
