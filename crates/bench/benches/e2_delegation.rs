//! E2 — §3 `attendeePictures`: delegation-driven pull vs broadcast push.
//!
//! Measured claims: with delegation, message traffic tracks the *selected*
//! peers only (non-selected peers stay silent); the broadcast baseline pays
//! for every peer. Delegation count equals the selection size.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use wdl_bench::{broadcast_baseline, SelectionWorld};

const PEERS: &[usize] = &[2, 4, 8, 16];
const PICS: usize = 20;

fn table() {
    println!("\n# E2: delegation pull vs broadcast push ({PICS} pics/peer, half selected)");
    println!(
        "{:>6} {:>9} {:>12} {:>10} {:>8} | {:>12}",
        "peers", "selected", "dlg_msgs", "view", "delegs", "bcast_msgs"
    );
    for (i, &p) in PEERS.iter().enumerate() {
        let selected = p / 2;
        let mut w = SelectionWorld::build(&format!("e2t{i}"), p, PICS, selected, 7);
        let (_rounds, messages, view, delegs) = w.run();
        let (_, bcast_msgs) = broadcast_baseline(&format!("e2b{i}"), p, PICS, 7);
        println!(
            "{:>6} {:>9} {:>12} {:>10} {:>8} | {:>12}",
            p, selected, messages, view, delegs, bcast_msgs
        );
        assert_eq!(delegs, selected, "one delegation per selected peer");
        assert_eq!(view, selected * PICS);
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_delegation_pull");
    for (i, &p) in PEERS.iter().enumerate() {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let mut iter = 0usize;
            b.iter_with_large_drop(|| {
                iter += 1;
                let mut w = SelectionWorld::build(&format!("e2c{i}x{iter}"), p, PICS, p / 2, 7);
                black_box(w.run())
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e2_broadcast_baseline");
    for (i, &p) in PEERS.iter().enumerate() {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let mut iter = 0usize;
            b.iter(|| {
                iter += 1;
                black_box(broadcast_baseline(&format!("e2d{i}x{iter}"), p, PICS, 7))
            });
        });
    }
    g.finish();
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
