//! E1 — Figure 2 / §4 "Interaction via Facebook": photo propagation
//! through the three-tier topology (attendee → sigmod → SigmodFB feed).
//!
//! Measured claims: propagation completes in a *constant number of stages*
//! regardless of photo count (pipeline depth), while wall time scales with
//! volume.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use wdl_bench::loaded_conference;
use wepic::ops;

const PHOTOS: &[usize] = &[10, 100, 500];

fn table() {
    println!("\n# E1: propagation stages/messages vs photo count (3 attendees)");
    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>12}",
        "photos", "rounds", "messages", "sigmod_facts", "fb_posts"
    );
    for &n in PHOTOS {
        let mut conf = loaded_conference(3, n / 3 + 1, 64, 11);
        // Authorize everything for Facebook so the full pipeline runs.
        let names: Vec<String> = conf
            .attendee_names()
            .iter()
            .map(|s| s.as_str().to_string())
            .collect();
        for name in &names {
            let ids: Vec<i64> = conf
                .peer(name.as_str())
                .unwrap()
                .relation_facts("pictures")
                .iter()
                .map(|t| t[0].as_int().unwrap())
                .collect();
            let p = conf.peer_mut(name.as_str()).unwrap();
            for id in ids {
                ops::authorize(p, "Facebook", id, name).unwrap();
            }
        }
        let r = conf.settle(256).expect("settles");
        assert!(r.quiescent);
        let sigmod_facts = conf
            .peer("sigmod")
            .unwrap()
            .relation_facts("pictures")
            .len();
        let fb_posts = conf.fb.group_feed("Sigmod").len();
        println!(
            "{:>8} {:>8} {:>10} {:>14} {:>12}",
            sigmod_facts, r.rounds, r.messages, sigmod_facts, fb_posts
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_propagation");
    for &n in PHOTOS {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_large_drop(|| {
                let mut conf = loaded_conference(3, n / 3 + 1, 64, 11);
                let r = conf.settle(256).expect("settles");
                assert!(r.quiescent);
                black_box(conf)
            });
        });
    }
    g.finish();
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
