//! E15 — durable storage engine: checkpoint latency, WAL append
//! throughput, and cold-start recovery (ISSUE 8).
//!
//! The workload is a Wepic-style peer living through `BATCHES` delta
//! batches of picture churn: each batch uploads `INS` fresh pictures and
//! retracts `DEL` of the previous batch's, group-committed through the
//! real engine. History is therefore much larger than the surviving
//! state — the regime checkpoints exist for.
//!
//! * **`checkpoint_ms`** (informational): one full checkpoint — meta +
//!   per-relation segments + manifest rename, all fsynced — of the
//!   final surviving state.
//! * **`wal_append_krecs_per_s`** (informational): group-commit append
//!   throughput over the `sync` calls alone (insert-side work untimed).
//! * **Cold-start recovery vs WAL-tail length**: the same final state
//!   recovered from directories checkpointed at different fold points,
//!   leaving 0, 1/8, 1/2 or all of the history in the WAL tail
//!   (`recovery_ms_tail_*`).
//! * **`recovery_replay_speedup`** (gated, >= 2x): full from-scratch
//!   recompute — re-applying the entire delta history through the
//!   incremental-maintenance path, which is what recovery cost without
//!   checkpoints — over recovery from segments plus the policy-bounded
//!   1/8 tail. Segment load is bulk columnar import of the *surviving*
//!   facts only; the ratio is the measured value of folding history
//!   into checkpoints, and it collapses toward 1.0 if segment import
//!   degrades to per-record history cost.
//!
//! Every recovery sample is verified against the expected surviving
//! fact count — a recovery that loses or invents facts fails the bench
//! before any number is reported.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;
use wdl_bench::quick;
use wdl_core::{Peer, RelationKind};
use wdl_datalog::{Symbol, Value};
use wdl_store::{DurabilityConfig, DurableStore, Engine};

/// Churn batches (same scale in quick and full runs, repo convention,
/// so gate ratios compare like for like).
const BATCHES: usize = 32;
/// Pictures uploaded per batch.
const INS: usize = 500;
/// Previous-batch pictures retracted per batch.
const DEL: usize = 440;
/// Facts surviving the full history.
const FINAL: usize = INS + (BATCHES - 1) * (INS - DEL);
/// Total delta records in the history.
const OPS: usize = BATCHES * INS + (BATCHES - 1) * DEL;
const PEER: &str = "e15peer";

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wdl-e15-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A config that never checkpoints on its own — the bench folds history
/// at explicit points.
fn manual_config(root: &Path) -> DurabilityConfig {
    DurabilityConfig::new(root)
        .checkpoint_records(usize::MAX)
        .checkpoint_bytes(u64::MAX)
}

fn picture(i: usize) -> Vec<Value> {
    vec![
        Value::from(i as i64),
        Value::from(format!("e15-pic-{i}.jpg")),
        Value::from(PEER),
        Value::bytes(&[0xD7, (i % 251) as u8, (i / 251) as u8]),
    ]
}

fn fresh_peer() -> Peer {
    let mut p = Peer::new(PEER);
    p.declare("pictures", 4, RelationKind::Extensional)
        .expect("declare");
    p
}

/// The delta history as per-batch op lists: `(added, tuple)`.
fn batch_ops(batch: usize) -> Vec<(bool, Vec<Value>)> {
    let mut ops = Vec::with_capacity(INS + DEL);
    for i in 0..INS {
        ops.push((true, picture(batch * INS + i)));
    }
    if batch > 0 {
        for i in 0..DEL {
            ops.push((false, picture((batch - 1) * INS + i)));
        }
    }
    ops
}

fn apply(p: &mut Peer, ops: &[(bool, Vec<Value>)]) {
    for (added, tuple) in ops {
        if *added {
            p.insert_local("pictures", tuple.clone()).expect("insert");
        } else {
            p.delete_local("pictures", tuple.clone()).expect("delete");
        }
    }
}

/// Builds a storage directory by living through the full history with a
/// group commit per batch, checkpointing after batch `fold` (fold =
/// `BATCHES` means never: the whole history stays in the WAL). Returns
/// the wall time spent inside the WAL `sync` calls.
fn build_dir(root: &Path, fold: usize) -> u128 {
    let mut store = DurableStore::new(manual_config(root));
    let mut p = fresh_peer();
    store.attach(&mut p).expect("attach");
    let engine = store.engine(PEER).expect("engine");
    let mut append_ns = 0u128;
    for batch in 0..BATCHES {
        apply(&mut p, &batch_ops(batch));
        let t0 = Instant::now();
        p.sync_durability().expect("group commit");
        append_ns += t0.elapsed().as_nanos();
        if batch == fold {
            engine.lock().checkpoint(&p).expect("fold checkpoint");
        }
    }
    append_ns
}

/// Min cold-start recovery latency over `runs` samples: fresh
/// `Engine::open` + `Engine::recover` each time (manifest, meta,
/// segments, WAL scan + replay). The page cache stays warm across
/// samples on every directory alike, so the tail-length comparison is
/// like for like. Each sample's recovered state is verified.
fn recovery_ns(root: &Path, runs: usize) -> u128 {
    let config = manual_config(root);
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let mut engine = Engine::open(&config, Symbol::intern(PEER)).expect("open");
            let peer = engine.recover().expect("recover");
            let ns = t0.elapsed().as_nanos();
            assert_eq!(
                peer.relation_facts("pictures").len(),
                FINAL,
                "recovery lost or invented facts"
            );
            black_box(peer);
            ns
        })
        .min()
        .expect("at least one sample")
}

/// Min latency of the checkpoint-free alternative: recompute the final
/// state from scratch by re-applying the entire delta history through
/// the incremental-maintenance path.
fn from_scratch_ns(runs: usize) -> u128 {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let mut p = fresh_peer();
            for batch in 0..BATCHES {
                apply(&mut p, &batch_ops(batch));
            }
            let ns = t0.elapsed().as_nanos();
            assert_eq!(p.relation_facts("pictures").len(), FINAL);
            black_box(p);
            ns
        })
        .min()
        .expect("at least one sample")
}

fn main() {
    let mut c = wdl_bench::criterion();
    let runs = if quick() { 3 } else { 10 };

    println!("E15: durable storage — checkpoint, WAL append, cold-start recovery");
    println!(
        "workload: {BATCHES} batches x (+{INS}/-{DEL}) = {OPS} delta records, \
         {FINAL} surviving facts, {runs} samples"
    );

    // --- Directories: same history, different fold points --------------
    // (fold after the last batch = empty tail; fold = BATCHES = never.)
    let folds = [
        ("0", BATCHES - 1),
        ("eighth", BATCHES - 1 - BATCHES / 8),
        ("half", BATCHES / 2 - 1),
        ("full", BATCHES),
    ];
    let mut append_ns_total = 0u128;
    let mut roots = Vec::new();
    for (tag, fold) in &folds {
        let root = tmp_root(tag);
        append_ns_total += build_dir(&root, *fold);
        roots.push(root);
    }
    let appended = OPS * folds.len();
    let wal_krecs_per_s = appended as f64 / (append_ns_total as f64 / 1e9) / 1e3;

    // --- Checkpoint latency of the surviving state ---------------------
    let checkpoint_ns = {
        let config = manual_config(&roots[0]);
        let mut engine = Engine::open(&config, Symbol::intern(PEER)).expect("open");
        let peer = engine.recover().expect("recover");
        (0..runs)
            .map(|_| {
                let t0 = Instant::now();
                engine.checkpoint(&peer).expect("checkpoint");
                t0.elapsed().as_nanos()
            })
            .min()
            .expect("at least one sample")
    };

    // --- Cold-start recovery vs tail length ----------------------------
    let mut recovery = Vec::new();
    for ((tag, _), root) in folds.iter().zip(&roots) {
        recovery.push((*tag, recovery_ns(root, runs)));
    }

    // The headline: the policy-bounded 1/8-history tail vs no
    // checkpoints at all. The two sides are sampled *interleaved* —
    // one recovery, one recompute, repeat — so background-load drift
    // over the bench's lifetime hits both alike instead of skewing the
    // ratio.
    let mut tail_eighth_ns = u128::MAX;
    let mut scratch_ns = u128::MAX;
    for _ in 0..runs {
        tail_eighth_ns = tail_eighth_ns.min(recovery_ns(&roots[1], 1));
        scratch_ns = scratch_ns.min(from_scratch_ns(1));
    }
    recovery[1].1 = tail_eighth_ns;
    let recovery_replay_speedup = scratch_ns as f64 / tail_eighth_ns as f64;

    // --- Report --------------------------------------------------------
    println!("| measure                        | value |");
    println!("|--------------------------------|-------|");
    println!(
        "| checkpoint ({FINAL} facts)       | {:>8.2}ms |",
        checkpoint_ns as f64 / 1e6
    );
    println!("| WAL append throughput          | {wal_krecs_per_s:>6.1} krec/s |");
    for (tag, ns) in &recovery {
        println!(
            "| cold recovery, tail {tag:>6}     | {:>8.2}ms |",
            *ns as f64 / 1e6
        );
    }
    println!(
        "| from-scratch recompute ({OPS} ops) | {:>8.2}ms |",
        scratch_ns as f64 / 1e6
    );
    println!("| recovery_replay_speedup        | {recovery_replay_speedup:>6.2}x |");

    c.record_metric("history_ops", OPS as f64);
    c.record_metric("surviving_facts", FINAL as f64);
    c.record_metric("checkpoint_ms", checkpoint_ns as f64 / 1e6);
    c.record_metric("wal_append_krecs_per_s", wal_krecs_per_s);
    for (tag, ns) in &recovery {
        c.record_metric(format!("recovery_ms_tail_{tag}"), *ns as f64 / 1e6);
    }
    c.record_metric("from_scratch_ms", scratch_ns as f64 / 1e6);
    c.record_metric("recovery_replay_speedup", recovery_replay_speedup);

    if !quick() {
        assert!(
            recovery_replay_speedup >= 2.0,
            "ISSUE 8 headline: segment + tail recovery must beat full \
             from-scratch recompute by >= 2x (measured {recovery_replay_speedup:.2}x)"
        );
    }

    for root in &roots {
        let _ = std::fs::remove_dir_all(root);
    }
    c.final_summary();
}
