//! E9 — optimizer ablation: greedy join-order reordering vs an adversarial
//! body order (§1: "allowing for powerful performance optimizations on the
//! part of the system").
//!
//! Workload: a three-way join where the written order starts from the
//! largest relation with nothing bound, while a selective relation and a
//! filter could prune almost everything. The optimizer must recover the
//! good plan; results are identical by construction (asserted).

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use wdl_datalog::optimize::reorder_body;
use wdl_datalog::{eval, Atom, BodyItem, CmpOp, Database, Fact, Subst, Term, Value};

const SCALES: &[i64] = &[100, 300, 1000];

fn atom(p: &str, vs: &[&str]) -> Atom {
    Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect())
}

/// big(x, y): n² skewed pairs; mid(y, z): n pairs; tiny(z): 1 row.
fn build_db(n: i64) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        for j in 0..(n / 10).max(1) {
            db.insert(Fact::new("big", vec![Value::from(i), Value::from(j)]))
                .unwrap();
        }
        db.insert(Fact::new("mid", vec![Value::from(i % 10), Value::from(i)]))
            .unwrap();
    }
    db.insert(Fact::new("tiny", vec![Value::from(0)])).unwrap();
    db
}

/// Adversarial order: the huge scan first, the selective atom last.
fn adversarial_body() -> Vec<BodyItem> {
    vec![
        atom("big", &["x", "y"]).into(),
        atom("mid", &["y", "z"]).into(),
        BodyItem::cmp(CmpOp::Lt, Term::var("z"), Term::cst(5)),
        atom("tiny", &["x"]).into(),
    ]
}

fn table() {
    println!("\n# E9: join-order optimizer — adversarial vs optimized result counts");
    println!("{:>8} {:>10} {:>12}", "scale", "rows", "identical");
    for &n in SCALES {
        let db = build_db(n);
        let body = adversarial_body();
        let optimized = reorder_body(&body, &db);
        let canon = |v: Vec<Subst>| {
            let mut c: Vec<_> = v.iter().map(|s| s.canonical()).collect();
            c.sort();
            c
        };
        let a = canon(eval::evaluate_body(&db, &body, Subst::new()).unwrap());
        let b = canon(eval::evaluate_body(&db, &optimized, Subst::new()).unwrap());
        assert_eq!(a, b, "optimizer changed results");
        println!("{:>8} {:>10} {:>12}", n, a.len(), "yes");
    }
}

fn bench(c: &mut Criterion) {
    for (name, optimize) in [("e9_adversarial", false), ("e9_optimized", true)] {
        let mut g = c.benchmark_group(name);
        for &n in SCALES {
            let db = build_db(n);
            let body = if optimize {
                reorder_body(&adversarial_body(), &db)
            } else {
                adversarial_body()
            };
            g.bench_with_input(
                BenchmarkId::from_parameter(n),
                &(db, body),
                |b, (db, body)| {
                    b.iter(|| black_box(eval::evaluate_body(db, body, Subst::new()).unwrap()));
                },
            );
        }
        g.finish();
    }
}

fn main() {
    table();
    let mut c = wdl_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
