//! E16 — reliable-delivery session layer overhead (ISSUE 9).
//!
//! The session layer buys exactly-once in-order delivery, restart
//! detection, and liveness tracking; this bench prices it on the link
//! where it buys nothing: a lossless in-memory transport. The same
//! seeded delegation fan-out scenarios run twice through real
//! [`PeerNode`] stacks — once over raw `MemoryEndpoint`s, once with
//! every endpoint wrapped in a [`SessionEndpoint`] — and both sides are
//! verified against the scenario's fault-free reference before any
//! number is reported.
//!
//! * **`session_overhead`** (gated, <= 1.20x): min sessioned wall
//!   time over min raw wall time for the full sweep (min-of-samples,
//!   the repo's standard low-noise point estimate). This is the
//!   price of framing every payload, sequencing, dedup bookkeeping, ack
//!   traffic, and the extra quiescence rounds acks need — paid even
//!   when the link never misbehaves.
//! * **`raw_ms` / `sessioned_ms`** (informational): the two minima.
//! * **`session_retransmits`** (informational): retransmissions across
//!   the sessioned sweep — expected (near) zero, since the link never
//!   drops; at quiescence nothing may remain unacked (asserted).
//!
//! Samples interleave raw and sessioned runs so drift (page cache,
//! allocator state, CPU frequency) lands on both sides alike.

use std::time::Instant;
use wdl_core::acl::UntrustedPolicy;
use wdl_core::Peer;
use wdl_datalog::{Symbol, Value};
use wdl_net::memory::{InMemoryNetwork, MemoryEndpoint};
use wdl_net::node::PeerNode;
use wdl_net::session::{SessionConfig, SessionEndpoint};
use wdl_net::sim::oracle::Scenario;
use wdl_net::sim::SimOp;
use wdl_net::Transport;
use wepic::{rules, schema, PictureCorpus};

/// Scenario seeds per sweep — each builds a different picture corpus.
const SEEDS: &[u64] = &[21, 22, 23];
/// Attendees the viewer delegates to.
const ATTENDEES: usize = 3;
/// Pictures each attendee uploads per picture batch.
const PER_BATCH: usize = 40;
/// Picture batches (one more batch carries the delegating selections).
const PIC_BATCHES: usize = 3;
/// Picture payload bytes.
const PAYLOAD: usize = 64;
/// Consecutive all-quiet rounds that count as network quiescence.
const QUIET: usize = 5;
/// Hard cap on stepping rounds per quiesce (a stuck protocol fails the
/// bench instead of hanging it).
const MAX_ROUNDS: usize = 50_000;

/// A scaled-up `delegation_fanout`: the paper's fan-out view with a
/// corpus big enough that stage compute, not round bookkeeping,
/// dominates each timed sweep. Batch 0 uploads pictures before any
/// delegation exists, batch 1 installs the selections (provisioning the
/// rule to every attendee), and the remaining batches upload while the
/// delegations are live.
fn heavy_fanout(seed: u64) -> Scenario {
    let viewer = format!("e16view{seed}");
    let attendees: Vec<String> = (0..ATTENDEES)
        .map(|i| format!("e16att{seed}x{i}"))
        .collect();

    let mut corpus = PictureCorpus::new(seed);
    let mut batches = Vec::new();
    for b in 0..PIC_BATCHES {
        let mut batch = Vec::new();
        for a in &attendees {
            for p in corpus.pictures(a, PER_BATCH, PAYLOAD) {
                batch.push((
                    Symbol::intern(a),
                    SimOp::Insert {
                        rel: Symbol::intern("pictures"),
                        tuple: p.to_values(),
                    },
                ));
            }
        }
        batches.push(batch);
        if b == 0 {
            batches.push(
                attendees
                    .iter()
                    .map(|a| {
                        (
                            Symbol::intern(&viewer),
                            SimOp::Insert {
                                rel: Symbol::intern("selectedAttendee"),
                                tuple: vec![Value::from(a.as_str())],
                            },
                        )
                    })
                    .collect(),
            );
        }
    }

    let build_viewer = viewer.clone();
    let build_attendees = attendees.clone();
    Scenario {
        name: format!("e16-fanout/{ATTENDEES}x{PER_BATCH}x{PIC_BATCHES}"),
        additive: true,
        crashable: Vec::new(),
        watched: vec![(Symbol::intern(&viewer), Symbol::intern("attendeePictures"))],
        build: Box::new(move || {
            let mut peers = Vec::new();
            let mut v = open_attendee(&build_viewer);
            v.add_rule(rules::attendee_pictures(&build_viewer).unwrap())
                .unwrap();
            peers.push(v);
            peers.extend(build_attendees.iter().map(|a| open_attendee(a)));
            peers
        }),
        batches,
    }
}

fn open_attendee(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    schema::declare_attendee(&mut p).expect("attendee schema");
    p
}

/// Steps every node round-robin until the network is quiet (no stage
/// changes, no traffic, no session work in flight) for `QUIET`
/// consecutive rounds.
fn quiesce<T: Transport>(nodes: &mut [PeerNode<T>]) {
    let mut streak = 0;
    for _ in 0..MAX_ROUNDS {
        let mut active = false;
        for node in nodes.iter_mut() {
            let r = node.step().expect("step");
            active |= r.changed || r.received > 0 || r.sent > 0 || r.deferred > 0;
            active |= node.transport().pending_work() > 0;
        }
        streak = if active { 0 } else { streak + 1 };
        if streak >= QUIET {
            return;
        }
    }
    panic!("e16: network failed to quiesce within {MAX_ROUNDS} rounds");
}

/// Applies the scenario's scripted batches and quiesces after each —
/// the timed portion of a run.
fn drive<T: Transport>(nodes: &mut [PeerNode<T>], sc: &Scenario) {
    quiesce(nodes);
    for batch in &sc.batches {
        for (peer, op) in batch {
            let node = nodes
                .iter_mut()
                .find(|n| n.peer().name() == *peer)
                .expect("scenario names a known peer");
            match op {
                SimOp::Insert { rel, tuple } => {
                    node.peer_mut().insert_local(*rel, tuple.clone()).unwrap();
                }
                SimOp::Delete { rel, tuple } => {
                    node.peer_mut().delete_local(*rel, tuple.clone()).unwrap();
                }
            }
        }
        quiesce(nodes);
    }
}

/// Verifies every watched relation against the scenario's fault-free
/// reference — a transport that loses or invents facts fails the bench
/// before any timing is reported.
fn verify<T: Transport>(nodes: &[PeerNode<T>], sc: &Scenario, label: &str) {
    let reference = sc.reference().expect("fault-free reference");
    for &(peer, rel) in &sc.watched {
        let node = nodes.iter().find(|n| n.peer().name() == peer).unwrap();
        let got: std::collections::BTreeSet<_> =
            node.peer().relation_facts(rel).into_iter().collect();
        assert_eq!(
            &got,
            reference.final_state.get(&(peer, rel)).unwrap(),
            "e16 [{label}]: {rel}@{peer} diverged from the reference"
        );
    }
}

fn raw_nodes(sc: &Scenario) -> Vec<PeerNode<MemoryEndpoint>> {
    let net = InMemoryNetwork::new();
    let peers: Vec<Peer> = (sc.build)();
    peers
        .into_iter()
        .map(|p| {
            let ep = net.endpoint(p.name()).expect("endpoint");
            PeerNode::new(p, ep)
        })
        .collect()
}

fn sessioned_nodes(sc: &Scenario, seed: u64) -> Vec<PeerNode<SessionEndpoint<MemoryEndpoint>>> {
    let net = InMemoryNetwork::new();
    let peers: Vec<Peer> = (sc.build)();
    peers
        .into_iter()
        .map(|p| {
            let ep = net.endpoint(p.name()).expect("endpoint");
            let cfg = SessionConfig {
                seed,
                ..SessionConfig::default()
            };
            PeerNode::new(p, SessionEndpoint::new(ep, 0, cfg))
        })
        .collect()
}

/// One full sweep over every seed. Returns wall nanoseconds of the
/// driven (batches + quiescence) portion; node construction is untimed.
fn sweep(sessioned: bool, check: bool) -> u128 {
    let mut total = 0u128;
    for &seed in SEEDS {
        let sc = heavy_fanout(seed);
        if sessioned {
            let mut nodes = sessioned_nodes(&sc, seed);
            let t0 = Instant::now();
            drive(&mut nodes, &sc);
            total += t0.elapsed().as_nanos();
            if check {
                verify(&nodes, &sc, "sessioned");
            }
        } else {
            let mut nodes = raw_nodes(&sc);
            let t0 = Instant::now();
            drive(&mut nodes, &sc);
            total += t0.elapsed().as_nanos();
            if check {
                verify(&nodes, &sc, "raw");
            }
        }
    }
    total
}

fn min(samples: Vec<u128>) -> u128 {
    samples.into_iter().min().expect("at least one sample")
}

fn main() {
    let mut c = wdl_bench::criterion();
    // Same sample count in quick mode: one sweep is ~15 ms, and the
    // overhead ratio is ceiling-gated (bench-gate) on the quick-run
    // JSON too, so it needs the full-noise-floor estimate everywhere.
    let runs = 10;

    println!("E16: session layer overhead on a lossless in-memory link");
    println!(
        "workload: {} fan-out scenarios ({ATTENDEES} attendees x {PER_BATCH} pics x \
         {PIC_BATCHES} batches), raw vs sessioned, {runs} samples",
        SEEDS.len()
    );

    // Correctness first: both stacks must reproduce the reference.
    sweep(false, true);
    sweep(true, true);

    // Interleaved timing samples.
    let mut raw_samples = Vec::with_capacity(runs);
    let mut sess_samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        raw_samples.push(sweep(false, false));
        sess_samples.push(sweep(true, false));
    }
    let raw_ns = min(raw_samples);
    let sess_ns = min(sess_samples);
    let overhead = sess_ns as f64 / raw_ns as f64;

    // Inspect the protocol once, outside the timed sweeps: on a lossless
    // link retransmission should stay (near) zero and nothing may remain
    // unacked at quiescence.
    let mut retransmits = 0u64;
    for &seed in SEEDS {
        let sc = heavy_fanout(seed);
        let mut nodes = sessioned_nodes(&sc, seed);
        drive(&mut nodes, &sc);
        for node in nodes {
            let (_, tr) = node.into_parts();
            let s = tr.stats();
            assert_eq!(s.unacked, 0, "quiescence left unacked frames");
            retransmits += s.retransmits;
        }
    }

    println!("\n# E16: sessioned vs raw on a lossless link");
    println!("{:>14} {:>14} {:>10}", "raw_ms", "sessioned_ms", "overhead");
    println!(
        "{:>14.3} {:>14.3} {:>9.3}x",
        raw_ns as f64 / 1e6,
        sess_ns as f64 / 1e6,
        overhead
    );
    println!("retransmits across the sessioned sweep: {retransmits}");

    c.record_metric("raw_ms", raw_ns as f64 / 1e6);
    c.record_metric("sessioned_ms", sess_ns as f64 / 1e6);
    c.record_metric("session_overhead", overhead);
    c.record_metric("session_retransmits", retransmits as f64);

    assert!(
        overhead <= 1.20,
        "session layer overhead {overhead:.3}x exceeds the 1.20x budget"
    );
    c.final_summary();
}
