//! E11 — parallel evaluation (ISSUE 2): sharded seminaive joins.
//!
//! The paper's pitch is that declarative rules let the system optimize
//! freely; this bench measures the sharded fixpoint of
//! `wdl_datalog::eval::parallel` on a scaled-up Wepic workload — a
//! friendship graph partitioned into conference "tables", closed under the
//! recursive `reach` rule, joined against a `PictureCorpus` of uploaded
//! pictures:
//!
//! ```text
//! reach(x, y) :- knows(x, y)
//! reach(x, z) :- reach(x, y), knows(y, z)
//! feed(p, id) :- reach(p, q), pictures(id, n, q, d)
//! ```
//!
//! The table sweeps `EvalConfig::workers` over {1, 2, 4}, verifies every
//! worker count computes the *same* relations (the parallel ≡ sequential
//! contract, property-tested in `tests/parallel_properties.rs`), and —
//! when the machine actually has ≥ 4 CPUs and the workload is full-size —
//! asserts the headline claim: ≥ 2× fixpoint speedup at 4 workers over
//! `workers = 1`.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use wdl_bench::workloads::{reach_base as scaled_base, reach_program};

/// Workload sizes: (components, persons per component, pictures per person).
const FULL_SCALES: &[(usize, usize, usize)] = &[(16, 28, 2), (24, 40, 2)];
const QUICK_SCALES: &[(usize, usize, usize)] = &[(4, 10, 1)];

const WORKER_SWEEP: &[usize] = &[1, 2, 4];

fn scales() -> &'static [(usize, usize, usize)] {
    if wdl_bench::quick() {
        QUICK_SCALES
    } else {
        FULL_SCALES
    }
}

fn table(c: &mut Criterion) {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runs = if wdl_bench::quick() { 3 } else { 5 };
    println!("\n# E11: sharded seminaive fixpoint, worker sweep ({cpus} CPUs available)");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "base", "derived", "w=1 ns", "w=2 ns", "w=4 ns", "x2", "x4"
    );
    for &(comps, persons, pics) in scales() {
        let program = reach_program();
        let base = scaled_base(comps, persons, pics);
        let base_facts = base.fact_count();

        // Parallel ≡ sequential: every worker count computes the same sets.
        let reference = program.eval(&base).unwrap();
        for &w in WORKER_SWEEP {
            let out = program.clone().with_workers(w).eval(&base).unwrap();
            for rel in ["reach", "feed"] {
                assert_eq!(
                    out.relation(rel).unwrap(),
                    reference.relation(rel).unwrap(),
                    "workers={w} diverged on {rel}"
                );
            }
        }
        let derived = reference.fact_count() - base_facts;

        let mut times = Vec::new();
        for &w in WORKER_SWEEP {
            let p = program.clone().with_workers(w);
            times.push(wdl_bench::median_ns(runs, || {
                black_box(p.eval(&base).unwrap());
            }));
        }
        let speedup2 = times[0] as f64 / times[1] as f64;
        let speedup4 = times[0] as f64 / times[2] as f64;
        println!(
            "{:>8} {:>8} {:>14} {:>14} {:>14} {:>8.2}x {:>8.2}x",
            base_facts, derived, times[0], times[1], times[2], speedup2, speedup4
        );
        c.record_metric(format!("fixpoint_w1_ns_{base_facts}"), times[0] as f64);
        c.record_metric(format!("fixpoint_w2_ns_{base_facts}"), times[1] as f64);
        c.record_metric(format!("fixpoint_w4_ns_{base_facts}"), times[2] as f64);
        c.record_metric(format!("speedup_w4_{base_facts}"), speedup4);

        // The headline claim needs real cores and the full-size workload.
        if cpus >= 4 && !wdl_bench::quick() {
            assert!(
                speedup4 >= 2.0,
                "sharded fixpoint must reach ≥2× at 4 workers on a ≥4-CPU \
                 machine (got {speedup4:.2}× on {base_facts} base facts)"
            );
        } else {
            println!(
                "  (speedup assertion skipped: {} CPUs, quick={})",
                cpus,
                wdl_bench::quick()
            );
        }
    }
    c.record_metric("cpus", cpus as f64);
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_parallel");
    for &(comps, persons, pics) in scales() {
        let program = reach_program();
        let base = scaled_base(comps, persons, pics);
        let n = base.fact_count();
        for &w in WORKER_SWEEP {
            let p = program.clone().with_workers(w);
            g.bench_with_input(
                BenchmarkId::new(format!("fixpoint_w{w}"), n),
                &base,
                |b, base| b.iter(|| black_box(p.eval(base).unwrap())),
            );
        }
    }
    g.finish();
}

fn main() {
    let mut c = wdl_bench::criterion();
    table(&mut c);
    bench(&mut c);
    c.final_summary();
}
