//! E12 — interned values, flat tuple storage, and compiled-rule joins
//! (ISSUE 4).
//!
//! The engine's data plane was rewritten around a global value interner:
//! relations store tuples as flat `arity`-strided `ValueId` arenas, index
//! keys and membership are hashes of integer slices, and every rule runs as
//! a compiled register-file plan instead of threading symbol-keyed
//! substitutions. The interpreter is still selectable
//! (`EvalConfig::with_compiled(false)`) and property-tested equivalent, so
//! this bench measures **old-vs-new on the same storage, same workloads**:
//!
//! * the E11 fixpoint workload (reach/feed over friendship components) at
//!   `workers = 1` — headline claim **≥ 1.5×**;
//! * the E10 incremental-maintenance workload (untag / unfriend
//!   delete+reinsert pairs through `MaterializedView::apply`) — headline
//!   claim **≥ 1.3×**.
//!
//! Both old and new numbers are printed and recorded in
//! `BENCH_e12_interned.json`; the headline `fixpoint_speedup` /
//! `incremental_speedup` metrics (minimum across scales) feed the CI
//! perf-regression gate (`bench-gate`).

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use wdl_bench::workloads::{churn_facts, reach_base, reach_program, wepic_base, wepic_program};
use wdl_datalog::incremental::{Delta, MaterializedView};
use wdl_datalog::{Database, EvalConfig, Fact, Program};

/// E11 fixpoint scales: (components, persons per component, pictures per
/// person). Matches `e11_parallel`. Quick mode keeps the first full scale
/// (1488 base facts, well under a second for both engines) so the
/// `fixpoint_speedup_1488` metric the CI gate pins is measured on the
/// same workload in both modes.
const FIX_FULL: &[(usize, usize, usize)] = &[(16, 28, 2), (24, 40, 2)];
const FIX_QUICK: &[(usize, usize, usize)] = &[(16, 28, 2)];

/// E10 maintenance scales: (pictures, tags per picture, persons). Matches
/// `e10_incremental`.
const INC_FULL: &[(usize, usize, usize)] = &[(500, 4, 100), (2500, 4, 200)];

fn interpreted(p: &Program) -> Program {
    p.clone()
        .with_eval_config(EvalConfig::default().with_compiled(false))
}

fn fixpoint_scales() -> &'static [(usize, usize, usize)] {
    if wdl_bench::quick() {
        FIX_QUICK
    } else {
        FIX_FULL
    }
}

fn inc_scales() -> &'static [(usize, usize, usize)] {
    if wdl_bench::quick() {
        &INC_FULL[..1]
    } else {
        INC_FULL
    }
}

/// One maintenance pair (delete + reinsert) timed through a view.
fn pair_ns(view: &mut MaterializedView, fact: &Fact, runs: usize) -> u128 {
    wdl_bench::median_ns(runs, || {
        view.apply(&Delta::deletion(fact.clone())).unwrap();
        view.apply(&Delta::insertion(fact.clone())).unwrap();
    })
}

fn table(c: &mut Criterion) {
    let quick = wdl_bench::quick();
    let runs = if quick { 3 } else { 5 };

    // ---- Fixpoint: compiled plans vs substitution interpreter, workers=1.
    println!("\n# E12: interned + compiled data plane vs interpreted baseline");
    println!("## fixpoint (E11 reach/feed workload, workers = 1)");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>9}",
        "base", "derived", "old ns", "new ns", "speedup"
    );
    let mut min_fix_speedup = f64::INFINITY;
    for &(comps, persons, pics) in fixpoint_scales() {
        let program = reach_program();
        let old_program = interpreted(&program);
        let base = reach_base(comps, persons, pics);
        let base_facts = base.fact_count();

        // Old ≡ new before timing anything.
        let reference = old_program.eval(&base).unwrap();
        let out = program.eval(&base).unwrap();
        for rel in ["reach", "feed"] {
            assert_eq!(
                out.relation(rel).unwrap(),
                reference.relation(rel).unwrap(),
                "compiled diverged from interpreted on {rel}"
            );
        }
        let derived = reference.fact_count() - base_facts;

        let old_ns = wdl_bench::median_ns(runs, || {
            black_box(old_program.eval(&base).unwrap());
        });
        let new_ns = wdl_bench::median_ns(runs, || {
            black_box(program.eval(&base).unwrap());
        });
        let speedup = old_ns as f64 / new_ns as f64;
        min_fix_speedup = min_fix_speedup.min(speedup);
        println!("{base_facts:>8} {derived:>8} {old_ns:>14} {new_ns:>14} {speedup:>8.2}x");
        c.record_metric(format!("fixpoint_old_ns_{base_facts}"), old_ns as f64);
        c.record_metric(format!("fixpoint_new_ns_{base_facts}"), new_ns as f64);
        c.record_metric(format!("fixpoint_speedup_{base_facts}"), speedup);
    }
    c.record_metric("fixpoint_speedup", min_fix_speedup);

    // ---- Incremental maintenance: compiled differential plans vs
    // interpreted differencing, through MaterializedView::apply.
    println!("## incremental maintenance (E10 untag/unfriend pairs)");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>9}",
        "base", "pair", "old ns", "new ns", "speedup"
    );
    let mut min_inc_speedup = f64::INFINITY;
    for &(pics, tags_per, persons) in inc_scales() {
        let program = wepic_program();
        let base = wepic_base(pics, tags_per, persons);
        let base_facts = base.fact_count();
        let (tag, friend) = churn_facts(pics, persons);

        let mut new_view = MaterializedView::new(program.clone(), base.clone()).unwrap();
        let mut old_view = MaterializedView::new(interpreted(&program), base.clone()).unwrap();

        for (label, fact) in [("untag", &tag), ("unfriend", &friend)] {
            // Equal materializations across one churn cycle first.
            new_view.apply(&Delta::deletion(fact.clone())).unwrap();
            old_view.apply(&Delta::deletion(fact.clone())).unwrap();
            assert_db_eq(new_view.database(), old_view.database(), label);
            new_view.apply(&Delta::insertion(fact.clone())).unwrap();
            old_view.apply(&Delta::insertion(fact.clone())).unwrap();

            let old_ns = pair_ns(&mut old_view, fact, runs);
            let new_ns = pair_ns(&mut new_view, fact, runs);
            let speedup = old_ns as f64 / new_ns as f64;
            min_inc_speedup = min_inc_speedup.min(speedup);
            println!("{base_facts:>8} {label:>12} {old_ns:>14} {new_ns:>14} {speedup:>8.2}x");
            c.record_metric(format!("{label}_old_ns_{base_facts}"), old_ns as f64);
            c.record_metric(format!("{label}_new_ns_{base_facts}"), new_ns as f64);
            c.record_metric(format!("{label}_speedup_{base_facts}"), speedup);
        }
    }
    c.record_metric("incremental_speedup", min_inc_speedup);

    // Headline claims, on the full-size workloads. Quick (CI smoke) runs
    // still record the metrics; the bench-gate compares them against the
    // committed baselines with a tolerance instead of a hard threshold.
    if !quick {
        assert!(
            min_fix_speedup >= 1.5,
            "compiled+interned fixpoint must be ≥1.5× the interpreted \
             baseline on the e11 workload (got {min_fix_speedup:.2}×)"
        );
        assert!(
            min_inc_speedup >= 1.3,
            "compiled+interned maintenance must be ≥1.3× the interpreted \
             baseline on the e10 churn pairs (got {min_inc_speedup:.2}×)"
        );
    } else {
        println!("  (headline assertions skipped under BENCH_QUICK)");
    }
}

fn assert_db_eq(a: &Database, b: &Database, ctx: &str) {
    assert_eq!(a.fact_count(), b.fact_count(), "{ctx}: fact counts differ");
    for fact in a.facts() {
        assert!(b.contains(&fact), "{ctx}: {fact} missing");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_interned");
    for &(comps, persons, pics) in fixpoint_scales() {
        let program = reach_program();
        let old_program = interpreted(&program);
        let base = reach_base(comps, persons, pics);
        let n = base.fact_count();
        g.bench_with_input(BenchmarkId::new("fixpoint_old", n), &base, |b, base| {
            b.iter(|| black_box(old_program.eval(base).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("fixpoint_new", n), &base, |b, base| {
            b.iter(|| black_box(program.eval(base).unwrap()))
        });
    }
    for &(pics, tags_per, persons) in inc_scales() {
        let program = wepic_program();
        let base = wepic_base(pics, tags_per, persons);
        let n = base.fact_count();
        let (tag, _) = churn_facts(pics, persons);
        let mut new_view = MaterializedView::new(program.clone(), base.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("untag_new", n), &tag, |b, tag| {
            b.iter(|| {
                new_view.apply(&Delta::deletion(tag.clone())).unwrap();
                new_view.apply(&Delta::insertion(tag.clone())).unwrap();
            })
        });
        let mut old_view = MaterializedView::new(interpreted(&program), base.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("untag_old", n), &tag, |b, tag| {
            b.iter(|| {
                old_view.apply(&Delta::deletion(tag.clone())).unwrap();
                old_view.apply(&Delta::insertion(tag.clone())).unwrap();
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = wdl_bench::criterion();
    table(&mut c);
    bench(&mut c);
    c.final_summary();
}
