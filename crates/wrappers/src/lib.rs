//! # wdl-wrappers — wrappers to external Web systems
//!
//! The paper (§2 "Wrappers"): *"A wrapper to some existing system X provides
//! software that exports to WebdamLog one or more relations corresponding to
//! the data in X, as well as rules to access/update this data."* The demo
//! used two wrappers, one for Facebook and one for email.
//!
//! **Substitution** (documented in DESIGN.md §4): this environment has no
//! live Facebook or SMTP, so each wrapper fronts a deterministic in-process
//! simulator with the same relational interface:
//!
//! * [`facebook`] — a [`facebook::FacebookSim`] service with user accounts
//!   (friends, pictures) and groups (a feed with comments and tags). Wrapper
//!   peers export exactly the relations the paper names:
//!   `friends@ÉmilienFB($userID, $friendName)`,
//!   `pictures@ÉmilienFB($picID, $owner, $URL)`, and the group peer's
//!   `pictures@SigmodFB($id, $name, $owner, $data)`. Facts a WebdamLog rule
//!   derives *into* the group relation are pushed to the simulated feed;
//!   posts appearing in the feed (simulated external users) are imported
//!   back as facts.
//! * [`email`] — a mailbox service: facts landing in a peer's `email`
//!   relation (the target of the paper's `$protocol@$attendee(...)` dispatch
//!   rule) are delivered as messages into per-user mailboxes.
//!
//! WebdamLog only ever sees relations, so rules written against these
//! wrappers are byte-for-byte the rules the paper shows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod email;
pub mod facebook;

use wdl_core::{Peer, Result};

/// Outcome of one wrapper synchronization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Facts imported from the external system into the peer.
    pub imported: usize,
    /// Facts exported from the peer to the external system.
    pub exported: usize,
}

/// A wrapper keeps one peer's relations in sync with an external system.
///
/// Call [`Wrapper::sync`] between stages (the demo ticked its wrappers on a
/// timer; our runtimes call it explicitly for determinism).
pub trait Wrapper {
    /// Name of the wrapped system, for logs.
    fn system(&self) -> &str;

    /// Two-way synchronization between `peer` and the external system.
    fn sync(&mut self, peer: &mut Peer) -> Result<SyncReport>;
}
