//! Simulated Facebook service and its WebdamLog wrappers.

use crate::{SyncReport, Wrapper};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use wdl_core::{Peer, RelationKind, Result};
use wdl_datalog::{Tuple, Value};

/// A picture post in a group feed.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Post {
    /// Picture id.
    pub id: i64,
    /// File name.
    pub name: String,
    /// Owner (attendee) name.
    pub owner: String,
    /// Binary contents.
    pub data: Vec<u8>,
}

/// A comment on a picture in a group.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Comment {
    /// Picture id.
    pub pic_id: i64,
    /// Comment author.
    pub author: String,
    /// Text.
    pub text: String,
}

#[derive(Default)]
struct UserAccount {
    friends: Vec<(i64, String)>,
    pictures: Vec<(i64, String, String)>, // (picID, owner, URL)
}

#[derive(Default)]
struct Group {
    feed: Vec<Post>,
    comments: Vec<Comment>,
    tags: Vec<(i64, String)>, // (picID, person)
}

#[derive(Default)]
struct SimState {
    users: HashMap<String, UserAccount>,
    groups: HashMap<String, Group>,
}

/// The simulated Facebook backend (shared by all wrappers pointing at it).
///
/// Deterministic stand-in for the Graph API: seed it, mutate it to simulate
/// external user activity, inspect it in assertions.
#[derive(Clone, Default)]
pub struct FacebookSim {
    state: Arc<Mutex<SimState>>,
}

impl FacebookSim {
    /// Empty service.
    pub fn new() -> FacebookSim {
        FacebookSim::default()
    }

    /// Adds a friend edge to `user`'s account.
    pub fn add_friend(&self, user: &str, friend_id: i64, friend_name: &str) {
        self.state
            .lock()
            .users
            .entry(user.to_string())
            .or_default()
            .friends
            .push((friend_id, friend_name.to_string()));
    }

    /// Uploads a picture to `user`'s account.
    pub fn add_user_picture(&self, user: &str, pic_id: i64, owner: &str, url: &str) {
        self.state
            .lock()
            .users
            .entry(user.to_string())
            .or_default()
            .pictures
            .push((pic_id, owner.to_string(), url.to_string()));
    }

    /// Posts a picture to a group feed (simulating an external member, or
    /// used internally by the wrapper when a rule publishes).
    pub fn post_to_group(&self, group: &str, post: Post) -> bool {
        let mut st = self.state.lock();
        let feed = &mut st.groups.entry(group.to_string()).or_default().feed;
        if feed.contains(&post) {
            return false;
        }
        feed.push(post);
        true
    }

    /// Adds a comment in a group.
    pub fn comment(&self, group: &str, comment: Comment) {
        self.state
            .lock()
            .groups
            .entry(group.to_string())
            .or_default()
            .comments
            .push(comment);
    }

    /// Tags a person on a picture in a group.
    pub fn tag(&self, group: &str, pic_id: i64, person: &str) {
        self.state
            .lock()
            .groups
            .entry(group.to_string())
            .or_default()
            .tags
            .push((pic_id, person.to_string()));
    }

    /// Snapshot of a group feed.
    pub fn group_feed(&self, group: &str) -> Vec<Post> {
        self.state
            .lock()
            .groups
            .get(group)
            .map(|g| g.feed.clone())
            .unwrap_or_default()
    }

    /// Number of pictures in a user account.
    pub fn user_picture_count(&self, user: &str) -> usize {
        self.state
            .lock()
            .users
            .get(user)
            .map(|u| u.pictures.len())
            .unwrap_or(0)
    }
}

/// Wrapper for a personal account: exports `friends@{user}FB` and
/// `pictures@{user}FB` exactly as the paper describes for ÉmilienFB.
pub struct UserWrapper {
    sim: FacebookSim,
    user: String,
    imported: HashSet<Tuple>,
}

impl UserWrapper {
    /// Creates the wrapper and its peer (named `{user}FB`).
    pub fn new(sim: FacebookSim, user: &str) -> Result<(UserWrapper, Peer)> {
        let peer_name = format!("{user}FB");
        let mut peer = Peer::new(peer_name.as_str());
        peer.declare("friends", 2, RelationKind::Extensional)?;
        peer.declare("pictures", 3, RelationKind::Extensional)?;
        Ok((
            UserWrapper {
                sim,
                user: user.to_string(),
                imported: HashSet::new(),
            },
            peer,
        ))
    }
}

impl Wrapper for UserWrapper {
    fn system(&self) -> &str {
        "facebook-user"
    }

    fn sync(&mut self, peer: &mut Peer) -> Result<SyncReport> {
        let mut report = SyncReport::default();
        let (friends, pictures) = {
            let st = self.sim.state.lock();
            match st.users.get(&self.user) {
                Some(u) => (u.friends.clone(), u.pictures.clone()),
                None => (Vec::new(), Vec::new()),
            }
        };
        for (id, name) in friends {
            let tuple: Tuple = vec![Value::from(id), Value::from(name)].into();
            if self.imported.insert(tuple.clone()) {
                peer.insert_local("friends", tuple.to_vec())?;
                report.imported += 1;
            }
        }
        for (id, owner, url) in pictures {
            let tuple: Tuple = vec![Value::from(id), Value::from(owner), Value::from(url)].into();
            if self.imported.insert(tuple.clone()) {
                peer.insert_local("pictures", tuple.to_vec())?;
                report.imported += 1;
            }
        }
        Ok(report)
    }
}

/// Wrapper for a Facebook group: exports `pictures@{group}FB` (the feed),
/// `comments@{group}FB` and `tags@{group}FB`, and pushes rule-derived posts
/// back to the simulated feed — the paper's SigmodFB peer.
pub struct GroupWrapper {
    sim: FacebookSim,
    group: String,
    imported: HashSet<Tuple>,
    exported: HashSet<Tuple>,
}

impl GroupWrapper {
    /// Creates the wrapper and its peer (named `{group}FB`).
    pub fn new(sim: FacebookSim, group: &str) -> Result<(GroupWrapper, Peer)> {
        let peer_name = format!("{group}FB");
        let mut peer = Peer::new(peer_name.as_str());
        peer.declare("pictures", 4, RelationKind::Extensional)?;
        peer.declare("comments", 3, RelationKind::Extensional)?;
        peer.declare("tags", 2, RelationKind::Extensional)?;
        Ok((
            GroupWrapper {
                sim,
                group: group.to_string(),
                imported: HashSet::new(),
                exported: HashSet::new(),
            },
            peer,
        ))
    }
}

impl Wrapper for GroupWrapper {
    fn system(&self) -> &str {
        "facebook-group"
    }

    fn sync(&mut self, peer: &mut Peer) -> Result<SyncReport> {
        let mut report = SyncReport::default();

        // Export: pictures that WebdamLog rules inserted into the peer's
        // relation but that are not yet in the simulated feed.
        for tuple in peer.relation_facts("pictures") {
            if self.imported.contains(&tuple) || !self.exported.insert(tuple.clone()) {
                continue;
            }
            let post = post_from_tuple(&tuple);
            if self.sim.post_to_group(&self.group, post) {
                report.exported += 1;
            }
        }

        // Import: feed posts, comments and tags not yet mirrored as facts.
        let (feed, comments, tags) = {
            let st = self.sim.state.lock();
            match st.groups.get(&self.group) {
                Some(g) => (g.feed.clone(), g.comments.clone(), g.tags.clone()),
                None => (Vec::new(), Vec::new(), Vec::new()),
            }
        };
        for post in feed {
            let tuple: Tuple = vec![
                Value::from(post.id),
                Value::from(post.name),
                Value::from(post.owner),
                Value::from(post.data),
            ]
            .into();
            if self.exported.contains(&tuple) || !self.imported.insert(tuple.clone()) {
                continue;
            }
            peer.insert_local("pictures", tuple.to_vec())?;
            report.imported += 1;
        }
        for c in comments {
            let tuple: Tuple = vec![
                Value::from(c.pic_id),
                Value::from(c.author),
                Value::from(c.text),
            ]
            .into();
            if self.imported.insert(tuple.clone()) {
                peer.insert_local("comments", tuple.to_vec())?;
                report.imported += 1;
            }
        }
        for (pic_id, person) in tags {
            let tuple: Tuple = vec![Value::from(pic_id), Value::from(person)].into();
            if self.imported.insert(tuple.clone()) {
                peer.insert_local("tags", tuple.to_vec())?;
                report.imported += 1;
            }
        }
        Ok(report)
    }
}

fn post_from_tuple(tuple: &Tuple) -> Post {
    Post {
        id: tuple[0].as_int().unwrap_or_default(),
        name: tuple[1].as_str().unwrap_or_default().to_string(),
        owner: tuple[2].as_str().unwrap_or_default().to_string(),
        data: tuple[3].as_bytes().unwrap_or_default().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_wrapper_exports_paper_relations() {
        let sim = FacebookSim::new();
        sim.add_friend("Emilien", 7, "Jules");
        sim.add_user_picture("Emilien", 1, "Emilien", "http://fb/p1.jpg");
        let (mut w, mut peer) = UserWrapper::new(sim.clone(), "Emilien").unwrap();
        assert_eq!(peer.name().as_str(), "EmilienFB");
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r.imported, 2);
        assert_eq!(peer.relation_facts("friends").len(), 1);
        assert_eq!(peer.relation_facts("pictures").len(), 1);
        // Second sync is a no-op.
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r, SyncReport::default());
    }

    #[test]
    fn group_wrapper_imports_feed() {
        let sim = FacebookSim::new();
        sim.post_to_group(
            "Sigmod",
            Post {
                id: 5,
                name: "keynote.jpg".into(),
                owner: "Julia".into(),
                data: vec![1, 2],
            },
        );
        sim.comment(
            "Sigmod",
            Comment {
                pic_id: 5,
                author: "Serge".into(),
                text: "great talk".into(),
            },
        );
        sim.tag("Sigmod", 5, "Gerome");
        let (mut w, mut peer) = GroupWrapper::new(sim, "Sigmod").unwrap();
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r.imported, 3);
        assert_eq!(peer.relation_facts("pictures").len(), 1);
        assert_eq!(peer.relation_facts("comments").len(), 1);
        assert_eq!(peer.relation_facts("tags").len(), 1);
    }

    #[test]
    fn group_wrapper_exports_rule_derived_posts() {
        let sim = FacebookSim::new();
        let (mut w, mut peer) = GroupWrapper::new(sim.clone(), "Sigmod").unwrap();
        // Simulate a fact derived by the sigmod peer's publication rule
        // arriving at the wrapper peer.
        peer.insert_local(
            "pictures",
            vec![
                Value::from(9),
                Value::from("sea.jpg"),
                Value::from("Emilien"),
                Value::bytes(&[3, 4]),
            ],
        )
        .unwrap();
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r.exported, 1);
        let feed = sim.group_feed("Sigmod");
        assert_eq!(feed.len(), 1);
        assert_eq!(feed[0].owner, "Emilien");
        // No ping-pong: the exported post is not re-imported.
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r, SyncReport::default());
        assert_eq!(peer.relation_facts("pictures").len(), 1);
    }

    #[test]
    fn external_and_rule_posts_coexist() {
        let sim = FacebookSim::new();
        let (mut w, mut peer) = GroupWrapper::new(sim.clone(), "G").unwrap();
        peer.insert_local(
            "pictures",
            vec![
                Value::from(1),
                Value::from("ours.jpg"),
                Value::from("us"),
                Value::bytes(&[1]),
            ],
        )
        .unwrap();
        w.sync(&mut peer).unwrap();
        sim.post_to_group(
            "G",
            Post {
                id: 2,
                name: "theirs.jpg".into(),
                owner: "them".into(),
                data: vec![2],
            },
        );
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r.imported, 1);
        assert_eq!(peer.relation_facts("pictures").len(), 2);
        assert_eq!(sim.group_feed("G").len(), 2);
    }
}
