//! Simulated email wrapper.
//!
//! The paper's transfer rule dispatches on a preferred protocol:
//!
//! ```text
//! $protocol@$attendee($attendee, $name, $id, $owner) :-
//!     selectedAttendee@Jules($attendee),
//!     communicate@$attendee($protocol),
//!     selectedPictures@Jules($name, $id, $owner)
//! ```
//!
//! When `$protocol` binds to `"email"`, facts land in the attendee peer's
//! `email` relation. This wrapper watches that relation and *delivers* each
//! new fact as a message into the attendee's simulated mailbox — the
//! substitution for the demo's SMTP wrapper.

use crate::{SyncReport, Wrapper};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use wdl_core::{Peer, Result};
use wdl_datalog::{Symbol, Tuple};

/// One delivered email: the stringified columns of the `email` fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Email {
    /// Mailbox owner (the peer the wrapper is attached to).
    pub to: String,
    /// Rendered fields of the fact that triggered delivery.
    pub fields: Vec<String>,
}

/// The simulated mail service: per-user mailboxes.
#[derive(Clone, Default)]
pub struct EmailSim {
    boxes: Arc<Mutex<HashMap<String, Vec<Email>>>>,
}

impl EmailSim {
    /// Empty service.
    pub fn new() -> EmailSim {
        EmailSim::default()
    }

    /// Snapshot of a mailbox.
    pub fn mailbox(&self, user: &str) -> Vec<Email> {
        self.boxes.lock().get(user).cloned().unwrap_or_default()
    }

    /// Total delivered messages.
    pub fn delivered_count(&self) -> usize {
        self.boxes.lock().values().map(Vec::len).sum()
    }

    fn deliver(&self, email: Email) {
        self.boxes
            .lock()
            .entry(email.to.clone())
            .or_default()
            .push(email);
    }
}

/// Watches one peer's `email` relation and delivers new facts as messages.
pub struct EmailWrapper {
    sim: EmailSim,
    relation: Symbol,
    seen: HashSet<Tuple>,
}

impl EmailWrapper {
    /// Attaches to the conventional `email` relation.
    pub fn new(sim: EmailSim) -> EmailWrapper {
        EmailWrapper::watching(sim, "email")
    }

    /// Attaches to a custom relation name.
    pub fn watching(sim: EmailSim, relation: &str) -> EmailWrapper {
        EmailWrapper {
            sim,
            relation: Symbol::intern(relation),
            seen: HashSet::new(),
        }
    }
}

impl Wrapper for EmailWrapper {
    fn system(&self) -> &str {
        "email"
    }

    fn sync(&mut self, peer: &mut Peer) -> Result<SyncReport> {
        let mut report = SyncReport::default();
        for tuple in peer.relation_facts(self.relation) {
            if !self.seen.insert(tuple.clone()) {
                continue;
            }
            self.sim.deliver(Email {
                to: peer.name().to_string(),
                fields: tuple.iter().map(|v| v.to_string()).collect(),
            });
            report.exported += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_datalog::Value;

    #[test]
    fn delivers_each_fact_once() {
        let sim = EmailSim::new();
        let mut w = EmailWrapper::new(sim.clone());
        let mut peer = Peer::new("emilien-mail");
        peer.insert_local(
            "email",
            vec![
                Value::from("emilien"),
                Value::from("sea.jpg"),
                Value::from(1),
            ],
        )
        .unwrap();
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r.exported, 1);
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r.exported, 0, "no duplicate delivery");
        let inbox = sim.mailbox("emilien-mail");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].fields[1], "\"sea.jpg\"");
    }

    #[test]
    fn custom_relation_name() {
        let sim = EmailSim::new();
        let mut w = EmailWrapper::watching(sim.clone(), "outbox");
        let mut peer = Peer::new("u");
        peer.insert_local("outbox", vec![Value::from("x")]).unwrap();
        peer.insert_local("email", vec![Value::from("ignored")])
            .unwrap();
        w.sync(&mut peer).unwrap();
        assert_eq!(sim.delivered_count(), 1);
    }

    #[test]
    fn empty_relation_no_deliveries() {
        let sim = EmailSim::new();
        let mut w = EmailWrapper::new(sim.clone());
        let mut peer = Peer::new("quiet");
        let r = w.sync(&mut peer).unwrap();
        assert_eq!(r, SyncReport::default());
        assert_eq!(sim.delivered_count(), 0);
    }
}
