//! Wiring engines onto peers, runtimes, and the simulator.
//!
//! [`DurableStore`] manages one [`Engine`] per peer under a shared root
//! directory and attaches them through the [`wdl_core::DurabilitySink`]
//! seam: after [`DurableStore::attach`], every extensional change the
//! peer commits is recorded and group-committed at its stage boundaries,
//! starting from an immediate initial checkpoint (so even a peer that
//! crashes before its first stage recovers with its schema intact).
//!
//! [`DurablePersistence`] implements the simulator's
//! [`wdl_net::sim::CrashPersistence`]: crash = drop the peer, lose the
//! unacked buffer (returned as client-retry ops), seed-tear the disk;
//! restart = real recovery through [`Engine::recover`]. Plugged into a
//! conformance sweep, this makes the oracle grade genuine
//! crash-recovery, not snapshot copying.

use crate::engine::{DurabilityConfig, Engine};
use crate::error::{Result, StoreError};
use crate::manifest::MANIFEST_FILE;
use crate::wal::WalEntry;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wdl_core::runtime::LocalRuntime;
use wdl_core::{unqualify, DurabilitySink, Peer, ShardedRuntime};
use wdl_datalog::{Symbol, Tuple};
use wdl_net::sim::{CrashPersistence, SimOp};
use wdl_net::NetError;

/// The sink installed on a peer: forwards the durability callbacks into
/// the shared engine.
struct EngineSink {
    engine: Arc<Mutex<Engine>>,
    peer: Symbol,
}

impl DurabilitySink for EngineSink {
    fn record_fact(&mut self, rel: Symbol, tuple: &Tuple, added: bool) {
        // Base changes arrive under the qualified name (`rel@peer`); the
        // log belongs to this peer, so store the bare relation.
        let Some(bare) = unqualify(rel, self.peer) else {
            debug_assert!(false, "base change {rel} not qualified with {}", self.peer);
            return;
        };
        self.engine.lock().record(bare, tuple.clone(), added);
    }

    fn record_watermark(&mut self, remote: Symbol, dir: u8, inc: u64, seq: u64) {
        self.engine.lock().record_watermark(remote, dir, inc, seq);
    }

    fn sync(&mut self, peer: &Peer, meta_dirty: bool) -> wdl_core::Result<()> {
        self.engine
            .lock()
            .sync(peer, meta_dirty)
            .map_err(wdl_core::WdlError::from)
    }
}

/// A directory of per-peer storage engines sharing one root and one
/// checkpoint policy.
pub struct DurableStore {
    config: DurabilityConfig,
    engines: HashMap<Symbol, Arc<Mutex<Engine>>>,
}

impl DurableStore {
    /// Creates a store rooted at `config.root`.
    pub fn new(config: DurabilityConfig) -> DurableStore {
        DurableStore {
            config,
            engines: HashMap::new(),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// The engine for `name`, opening it on first use. Exposed so tests
    /// can inject faults or simulate crashes on a specific peer.
    pub fn engine(&mut self, name: impl Into<Symbol>) -> Result<Arc<Mutex<Engine>>> {
        let name = name.into();
        if let Some(e) = self.engines.get(&name) {
            return Ok(Arc::clone(e));
        }
        let engine = Arc::new(Mutex::new(Engine::open(&self.config, name)?));
        self.engines.insert(name, Arc::clone(&engine));
        Ok(engine)
    }

    /// Whether a committed checkpoint exists on disk for `name`.
    pub fn has_data(&self, name: impl Into<Symbol>) -> bool {
        self.config
            .root
            .join(name.into().as_str())
            .join(MANIFEST_FILE)
            .exists()
    }

    /// Makes `peer` durable: attaches a sink and takes the initial
    /// checkpoint immediately, so the peer's structural state survives a
    /// crash that arrives before its first stage.
    pub fn attach(&mut self, peer: &mut Peer) -> Result<()> {
        let name = peer.name();
        let engine = self.engine(name)?;
        peer.set_durability(Box::new(EngineSink { engine, peer: name }));
        peer.sync_durability().map_err(StoreError::Engine)
    }

    /// Recovers `name` from disk and re-attaches its sink. The recovered
    /// peer immediately re-checkpoints (folding the replayed WAL into
    /// fresh segments), so repeated crash/recover cycles never replay an
    /// ever-growing log.
    pub fn recover(&mut self, name: impl Into<Symbol>) -> Result<Peer> {
        let name = name.into();
        let engine = self.engine(name)?;
        let mut peer = engine.lock().recover()?;
        peer.set_durability(Box::new(EngineSink { engine, peer: name }));
        peer.sync_durability().map_err(StoreError::Engine)?;
        Ok(peer)
    }

    /// Attaches every peer currently in a [`LocalRuntime`].
    pub fn attach_runtime(&mut self, rt: &mut LocalRuntime) -> Result<()> {
        for name in rt.peer_names() {
            let peer = rt.peer_mut(name).expect("peer_names listed it");
            self.attach(peer)?;
        }
        Ok(())
    }

    /// Attaches every peer currently in a [`ShardedRuntime`]. Sinks are
    /// `Send`, so they ride along when peers live on worker threads.
    pub fn attach_sharded(&mut self, rt: &mut ShardedRuntime) -> Result<()> {
        for name in rt.peer_names() {
            let engine = self.engine(name)?;
            let res = rt.with_peer_mut(name, move |peer| {
                peer.set_durability(Box::new(EngineSink { engine, peer: name }));
                peer.sync_durability()
            });
            match res {
                Some(r) => r.map_err(StoreError::Engine)?,
                None => {
                    return Err(StoreError::Engine(wdl_core::WdlError::UnknownPeer(
                        name.to_string(),
                    )))
                }
            }
        }
        Ok(())
    }
}

/// Crash/restart persistence for the simulator, backed by the real
/// storage engine.
pub struct DurablePersistence {
    store: DurableStore,
}

impl DurablePersistence {
    /// Creates the persistence layer over a fresh [`DurableStore`].
    pub fn new(config: DurabilityConfig) -> DurablePersistence {
        DurablePersistence {
            store: DurableStore::new(config),
        }
    }

    /// Access to the underlying store (to attach peers before a run or
    /// reach an engine from a test).
    pub fn store_mut(&mut self) -> &mut DurableStore {
        &mut self.store
    }
}

impl CrashPersistence for DurablePersistence {
    fn crash(
        &mut self,
        mut peer: Peer,
        crash_seed: u64,
    ) -> std::result::Result<(Bytes, Vec<SimOp>), NetError> {
        let name = peer.name();
        peer.clear_durability();
        drop(peer); // the process image is gone; only disk survives
        let engine = self.store.engine(name).map_err(NetError::from)?;
        let lost = engine.lock().simulate_crash(crash_seed);
        let ops = lost
            .into_iter()
            .filter_map(|entry| match entry {
                // A lost watermark is not a client op: the session layer
                // simply re-delivers the frames it covered (they were
                // never acked) and the peer dedups nothing it should not.
                WalEntry::Watermark { .. } => None,
                WalEntry::Fact(rec) if rec.added => Some(SimOp::Insert {
                    rel: rec.rel,
                    tuple: rec.tuple.to_vec(),
                }),
                WalEntry::Fact(rec) => Some(SimOp::Delete {
                    rel: rec.rel,
                    tuple: rec.tuple.to_vec(),
                }),
            })
            .collect();
        Ok((Bytes::from(name.as_str().as_bytes().to_vec()), ops))
    }

    fn restart(&mut self, name: Symbol, _token: &Bytes) -> std::result::Result<Peer, NetError> {
        self.store.recover(name).map_err(NetError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use wdl_core::RelationKind;
    use wdl_datalog::Value;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wdl-store-per-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn attach_recover_round_trip() {
        let root = tmp_root("rt");
        let mut store = DurableStore::new(DurabilityConfig::new(&root));
        let mut p = Peer::new("perp1");
        p.declare("pictures", 1, RelationKind::Extensional).unwrap();
        store.attach(&mut p).unwrap();
        assert!(p.durable());
        assert!(store.has_data("perp1"));

        p.insert_local("pictures", vec![Value::from(7)]).unwrap();
        p.run_stage().unwrap(); // group commit

        drop(p);
        let mut store2 = DurableStore::new(DurabilityConfig::new(&root));
        let q = store2.recover("perp1").unwrap();
        assert_eq!(q.relation_facts("pictures").len(), 1);
        assert!(q.durable());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn local_runtime_attachment_persists_through_ticks() {
        let root = tmp_root("lrt");
        let mut store = DurableStore::new(DurabilityConfig::new(&root));
        let mut rt = LocalRuntime::new();
        let mut p = Peer::new("perp2");
        p.declare("pictures", 1, RelationKind::Extensional).unwrap();
        rt.add_peer(p).unwrap();
        store.attach_runtime(&mut rt).unwrap();

        rt.peer_mut("perp2")
            .unwrap()
            .insert_local("pictures", vec![Value::from(1)])
            .unwrap();
        rt.run_to_quiescence(16).unwrap();

        let mut store2 = DurableStore::new(DurabilityConfig::new(&root));
        let q = store2.recover("perp2").unwrap();
        assert_eq!(q.relation_facts("pictures").len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn sharded_runtime_attachment_persists() {
        let root = tmp_root("srt");
        let mut store = DurableStore::new(DurabilityConfig::new(&root));
        let mut rt = ShardedRuntime::new(2);
        let mut p = Peer::new("perp3");
        p.declare("pictures", 1, RelationKind::Extensional).unwrap();
        rt.add_peer(p).unwrap();
        store.attach_sharded(&mut rt).unwrap();

        rt.insert_local("perp3", "pictures", vec![Value::from(4)])
            .unwrap();
        rt.run_to_quiescence(16).unwrap();
        drop(rt);

        let mut store2 = DurableStore::new(DurabilityConfig::new(&root));
        let q = store2.recover("perp3").unwrap();
        assert_eq!(q.relation_facts("pictures").len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_persistence_recovers_acked_state() {
        let root = tmp_root("cp");
        let mut persist = DurablePersistence::new(DurabilityConfig::new(&root));
        let mut p = Peer::new("perp4");
        p.declare("pictures", 1, RelationKind::Extensional).unwrap();
        persist.store_mut().attach(&mut p).unwrap();
        p.insert_local("pictures", vec![Value::from(1)]).unwrap();
        p.run_stage().unwrap();
        // An unacked mutation right before the crash.
        p.insert_local("pictures", vec![Value::from(2)]).unwrap();

        let (token, lost) = persist.crash(p, 11).unwrap();
        assert_eq!(lost.len(), 1, "the unsynced insert comes back as an op");
        let q = persist.restart(Symbol::intern("perp4"), &token).unwrap();
        assert_eq!(
            q.relation_facts("pictures").len(),
            1,
            "acked state survives, unacked does not resurrect by itself"
        );
        let _ = fs::remove_dir_all(&root);
    }
}
