//! The manifest: the atomic commit point of a checkpoint.
//!
//! A checkpoint writes its meta file, every segment, and a fresh WAL
//! under epoch-unique names, fsyncs them, then writes `MANIFEST.tmp` and
//! renames it over [`MANIFEST_FILE`]. The rename is the commit: before
//! it, recovery sees the old manifest and ignores the half-written new
//! epoch; after it, the new epoch is fully referenced. Stale files from
//! older epochs are deleted only after the rename lands.
//!
//! ```text
//! u32 magic "WMAN" | u8 version | u64 epoch
//! str meta-file
//! u32 #segments | (str rel, str file)*
//! str wal-file
//! u32 CRC-32
//! ```

use crate::error::{Result, StoreError};
use crate::segment::check_envelope;
use bytes::{BufMut, BytesMut};
use wdl_datalog::Symbol;
use wdl_net::codec::{put_str, Reader};

/// Name of the committed manifest inside a peer's storage directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Manifest magic ("WMAN", little-endian).
const MANIFEST_MAGIC: u32 = u32::from_le_bytes(*b"WMAN");

/// What a committed checkpoint consists of.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint epoch; strictly increasing per peer.
    pub epoch: u64,
    /// Meta checkpoint file name (relative to the peer directory).
    pub meta_file: String,
    /// `(unqualified relation, segment file name)`, sorted by relation.
    pub segments: Vec<(Symbol, String)>,
    /// WAL file extending this checkpoint.
    pub wal_file: String,
}

impl Manifest {
    /// Encodes the manifest as a file image.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(128);
        buf.put_u32_le(MANIFEST_MAGIC);
        buf.put_u8(1);
        buf.put_u64_le(self.epoch);
        put_str(&mut buf, &self.meta_file);
        buf.put_u32_le(self.segments.len() as u32);
        for (rel, file) in &self.segments {
            put_str(&mut buf, rel.as_str());
            put_str(&mut buf, file);
        }
        put_str(&mut buf, &self.wal_file);
        let body = buf.freeze().to_vec();
        let mut out = body.clone();
        out.extend_from_slice(&crate::crc32(&body).to_le_bytes());
        out
    }

    /// Decodes and validates a manifest file image.
    pub fn decode(bytes: &[u8], file: &str) -> Result<Manifest> {
        let body = check_envelope(bytes, MANIFEST_MAGIC, "manifest", file)?;
        let mut r = Reader::new(body);
        let err = |e: wdl_net::NetError| StoreError::corrupt(file, e.to_string());
        r.u32().map_err(err)?;
        r.u8().map_err(err)?;
        let epoch = r.u64().map_err(err)?;
        let meta_file = r.str().map_err(err)?.to_string();
        let n = r.len().map_err(err)?;
        let mut segments = Vec::with_capacity(n);
        for _ in 0..n {
            let rel = r.symbol().map_err(err)?;
            let file_name = r.str().map_err(err)?.to_string();
            segments.push((rel, file_name));
        }
        let wal_file = r.str().map_err(err)?.to_string();
        r.expect_end().map_err(err)?;
        Ok(Manifest {
            epoch,
            meta_file,
            segments,
            wal_file,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            epoch: 42,
            meta_file: "meta-000000000000002a.ck".into(),
            segments: vec![
                (Symbol::intern("album"), "rel-000000000000002a-0.seg".into()),
                (
                    Symbol::intern("pictures"),
                    "rel-000000000000002a-1.seg".into(),
                ),
            ],
            wal_file: "wal-000000000000002a.log".into(),
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode(), "MANIFEST").unwrap(), m);
    }

    #[test]
    fn rejects_flips_and_cuts() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::decode(&bad, "MANIFEST").is_err(), "flip {i}");
        }
        for cut in 0..bytes.len() {
            assert!(
                Manifest::decode(&bytes[..cut], "MANIFEST").is_err(),
                "cut {cut}"
            );
        }
    }
}
