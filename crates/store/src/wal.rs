//! The delta write-ahead log.
//!
//! Between checkpoints, every extensional base change (and every session
//! delivery watermark) appends one record:
//!
//! ```text
//! file header:  u32 magic "WWAL" | u8 version | u64 epoch | str peer | u32 CRC
//! record:       u32 payload-len  | u32 payload-CRC | payload
//! fact payload: u8 tag (1=insert, 0=delete) | str rel | u32 arity | values
//! mark payload: u8 tag (2)      | str remote | u8 dir | u64 inc | u64 seq
//! ```
//!
//! The header's epoch and peer name tie the log to the exact checkpoint
//! it extends — a WAL spliced in from another epoch *or another peer's
//! directory* (stale manifest, copied file) is rejected outright, even
//! when every record in it is individually well-formed. Records are framed with their own length and CRC so
//! a scan can tell exactly where durable history ends: the first record
//! that is short, overlong, or fails its CRC marks the **torn tail**, and
//! recovery truncates there. A record is only ever torn if the crash hit
//! mid-append — i.e. before the group commit acked it — so truncation
//! never loses acknowledged state.
//!
//! Relations are stored *unqualified* (the log belongs to one peer; its
//! name is in the meta checkpoint), and values by content, same argument
//! as segments: replay re-interns into whatever the recovering process's
//! interner looks like.

use crate::crc::crc32;
use crate::error::{Result, StoreError};
use bytes::{BufMut, BytesMut};
use wdl_datalog::{Symbol, Tuple, Value};
use wdl_net::codec::{put_str, put_value, Reader};

/// WAL file magic ("WWAL", little-endian).
const WAL_MAGIC: u32 = u32::from_le_bytes(*b"WWAL");
/// WAL format version.
const WAL_VERSION: u8 = 1;
/// Fixed part of the file header: magic + version + epoch (the peer
/// name and CRC follow).
const WAL_FIXED_LEN: usize = 4 + 1 + 8;

/// One logged base change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Unqualified relation name.
    pub rel: Symbol,
    /// The tuple that changed.
    pub tuple: Tuple,
    /// `true` for insert, `false` for delete.
    pub added: bool,
}

/// One logged entry: a base change or a session delivery watermark.
///
/// Watermarks ride in the same log as the facts they cover, so one group
/// commit makes both durable together — the session layer's ack can then
/// never advertise a delivery whose facts were lost, and recovery never
/// dedups a frame whose facts never made it to disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalEntry {
    /// An extensional base change.
    Fact(WalRecord),
    /// A session-layer watermark (see
    /// [`wdl_core::Peer::note_session_watermark`]).
    Watermark {
        /// The remote peer the watermark is about.
        remote: Symbol,
        /// Direction: `0` = delivered-from-remote, `1` = acked-by-remote.
        dir: u8,
        /// The incarnation the sequence number counts under.
        inc: u64,
        /// The cumulative sequence watermark.
        seq: u64,
    },
}

/// Result of scanning a WAL file: the decodable prefix and where (and
/// why) it ends.
#[derive(Debug)]
pub struct WalTail {
    /// Epoch from the header — must match the manifest's.
    pub epoch: u64,
    /// Peer name from the header — must match the directory's owner.
    pub peer: Symbol,
    /// Entries of the valid prefix, in append order.
    pub records: Vec<WalEntry>,
    /// Byte length of the header (where records start).
    pub header_len: usize,
    /// Byte length of the valid prefix (truncate the file to this).
    pub valid_len: usize,
    /// Why the scan stopped early, if it did (torn or corrupt tail).
    pub torn: Option<String>,
}

/// Encodes the file header for a fresh WAL of the given epoch and peer.
pub(crate) fn encode_header(epoch: u64, peer: Symbol) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(WAL_FIXED_LEN + 16);
    buf.put_u32_le(WAL_MAGIC);
    buf.put_u8(WAL_VERSION);
    buf.put_u64_le(epoch);
    put_str(&mut buf, peer.as_str());
    let body = buf.freeze().to_vec();
    let mut out = body.clone();
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Encodes one framed record (length prefix + CRC + payload).
pub(crate) fn encode_record(entry: &WalEntry) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(32);
    match entry {
        WalEntry::Fact(rec) => {
            payload.put_u8(u8::from(rec.added));
            put_str(&mut payload, rec.rel.as_str());
            payload.put_u32_le(rec.tuple.len() as u32);
            for v in rec.tuple.iter() {
                put_value(&mut payload, v);
            }
        }
        WalEntry::Watermark {
            remote,
            dir,
            inc,
            seq,
        } => {
            payload.put_u8(2);
            put_str(&mut payload, remote.as_str());
            payload.put_u8(*dir);
            payload.put_u64_le(*inc);
            payload.put_u64_le(*seq);
        }
    }
    let payload = payload.freeze().to_vec();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8], file: &str) -> Result<WalEntry> {
    let mut r = Reader::new(payload);
    let err = |e: wdl_net::NetError| StoreError::corrupt(file, format!("wal record: {e}"));
    let entry = match r.u8().map_err(err)? {
        tag @ (0 | 1) => {
            let rel = r.symbol().map_err(err)?;
            let arity = r.u32().map_err(err)? as usize;
            let mut values: Vec<Value> = Vec::with_capacity(arity.min(64));
            for _ in 0..arity {
                values.push(r.value().map_err(err)?);
            }
            WalEntry::Fact(WalRecord {
                rel,
                tuple: values.into(),
                added: tag == 1,
            })
        }
        2 => {
            let remote = r.symbol().map_err(err)?;
            let dir = r.u8().map_err(err)?;
            let inc = r.u64().map_err(err)?;
            let seq = r.u64().map_err(err)?;
            WalEntry::Watermark {
                remote,
                dir,
                inc,
                seq,
            }
        }
        t => {
            return Err(StoreError::corrupt(
                file,
                format!("wal record: bad tag {t}"),
            ))
        }
    };
    r.expect_end().map_err(err)?;
    Ok(entry)
}

/// Scans a WAL file image: validates the header, decodes records until
/// the first torn/corrupt one, and reports where the valid prefix ends.
///
/// A bad *header* is unrecoverable corruption (the whole file is
/// untrustworthy) and errors; a bad *record* just ends the tail.
pub(crate) fn scan(bytes: &[u8], file: &str) -> Result<WalTail> {
    if bytes.len() < WAL_FIXED_LEN + 4 {
        return Err(StoreError::corrupt(
            file,
            format!("wal header truncated ({} bytes)", bytes.len()),
        ));
    }
    let magic = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if magic != WAL_MAGIC {
        return Err(StoreError::corrupt(
            file,
            format!("wal magic mismatch: got {magic:#010x}"),
        ));
    }
    if bytes[4] != WAL_VERSION {
        return Err(StoreError::corrupt(
            file,
            format!("wal version mismatch: got {}", bytes[4]),
        ));
    }
    let epoch = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
    let name_len = u32::from_le_bytes(bytes[13..17].try_into().unwrap()) as usize;
    let header_len = WAL_FIXED_LEN + 4 + name_len + 4;
    if bytes.len() < header_len {
        return Err(StoreError::corrupt(
            file,
            format!("wal header truncated ({} bytes)", bytes.len()),
        ));
    }
    let peer = std::str::from_utf8(&bytes[17..17 + name_len])
        .map_err(|_| StoreError::corrupt(file, "wal peer name is not utf-8"))?;
    let peer = Symbol::intern(peer);
    let stored = u32::from_le_bytes(bytes[header_len - 4..header_len].try_into().unwrap());
    let computed = crc32(&bytes[..header_len - 4]);
    if stored != computed {
        return Err(StoreError::corrupt(
            file,
            format!("wal header CRC mismatch: computed {computed:#010x}, stored {stored:#010x}"),
        ));
    }

    let mut records = Vec::new();
    let mut offset = header_len;
    let mut torn = None;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            torn = Some(format!("torn frame header at byte {offset}"));
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if rest.len() < 8 + len {
            torn = Some(format!(
                "torn record at byte {offset}: {len}-byte payload, {} present",
                rest.len() - 8
            ));
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != want_crc {
            torn = Some(format!("record CRC mismatch at byte {offset}"));
            break;
        }
        match decode_payload(payload, file) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                torn = Some(format!("undecodable record at byte {offset}: {e}"));
                break;
            }
        }
        offset += 8 + len;
    }
    Ok(WalTail {
        epoch,
        peer,
        records,
        header_len,
        valid_len: offset,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Vec<WalEntry> {
        vec![
            WalEntry::Fact(WalRecord {
                rel: Symbol::intern("pictures"),
                tuple: vec![Value::from(1), Value::from("a.jpg")].into(),
                added: true,
            }),
            WalEntry::Fact(WalRecord {
                rel: Symbol::intern("album"),
                tuple: vec![Value::bytes(&[9, 9])].into(),
                added: false,
            }),
            WalEntry::Watermark {
                remote: Symbol::intern("walremote"),
                dir: 0,
                inc: 3,
                seq: 41,
            },
        ]
    }

    fn owner() -> Symbol {
        Symbol::intern("walpeer")
    }

    fn header_len() -> usize {
        encode_header(0, owner()).len()
    }

    fn file_image(epoch: u64, records: &[WalEntry]) -> Vec<u8> {
        let mut out = encode_header(epoch, owner());
        for r in records {
            out.extend_from_slice(&encode_record(r));
        }
        out
    }

    #[test]
    fn round_trip() {
        let img = file_image(7, &recs());
        let tail = scan(&img, "w.log").unwrap();
        assert_eq!(tail.epoch, 7);
        assert_eq!(tail.peer, owner());
        assert_eq!(tail.records, recs());
        assert_eq!(tail.header_len, header_len());
        assert_eq!(tail.valid_len, img.len());
        assert!(tail.torn.is_none());
    }

    #[test]
    fn truncation_at_every_byte_never_panics_or_invents() {
        let img = file_image(3, &recs());
        let hlen = header_len();
        let first_len = encode_record(&recs()[0]).len();
        for cut in 0..img.len() {
            match scan(&img[..cut], "w.log") {
                Err(e) => {
                    // Only header damage may hard-error.
                    assert!(cut < hlen, "hard error at cut {cut}: {e}");
                }
                Ok(tail) => {
                    assert!(cut >= hlen);
                    // The valid prefix is a prefix of the true records.
                    assert!(tail.records.len() <= 3);
                    assert_eq!(tail.records, recs()[..tail.records.len()]);
                    assert!(tail.valid_len <= cut);
                    if cut < hlen + first_len {
                        assert!(tail.records.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn mid_record_corruption_truncates_there() {
        let img = file_image(1, &recs());
        let mut bad = img.clone();
        // Flip a bit inside the first record's payload.
        bad[header_len() + 9] ^= 0x80;
        let tail = scan(&bad, "w.log").unwrap();
        assert!(tail.records.is_empty());
        assert_eq!(tail.valid_len, header_len());
        assert!(tail.torn.is_some());
    }

    #[test]
    fn header_corruption_is_a_hard_error() {
        let img = file_image(1, &recs());
        for i in 0..header_len() {
            let mut bad = img.clone();
            bad[i] ^= 0x01;
            assert!(scan(&bad, "w.log").is_err(), "byte {i}");
        }
    }

    #[test]
    fn another_peers_log_is_detected() {
        let mut img = encode_header(1, Symbol::intern("someoneElse"));
        img.extend_from_slice(&encode_record(&recs()[0]));
        let tail = scan(&img, "w.log").unwrap();
        assert_eq!(tail.peer, Symbol::intern("someoneElse"));
        assert_ne!(tail.peer, owner());
    }
}
