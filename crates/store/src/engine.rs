//! The per-peer storage engine: checkpoint + WAL + recovery.
//!
//! One [`Engine`] owns one peer's storage directory
//! (`<root>/<peer-name>/`). Its life cycle mirrors the durability seam:
//!
//! * [`Engine::record`] buffers a base change in memory — free, called
//!   from the hot mutation path.
//! * [`Engine::sync`] is the group commit, called at stage boundaries.
//!   It either appends the buffered batch to the WAL (one write + fsync)
//!   or, when structural state changed or the checkpoint policy fires,
//!   folds everything into a fresh checkpoint.
//! * [`Engine::checkpoint`] writes meta + segments + a fresh WAL under
//!   the next epoch and commits them with an atomic manifest rename.
//! * [`Engine::recover`] rebuilds a peer: manifest → meta → segments →
//!   WAL tail replayed through `insert_local`/`delete_local` (the
//!   incremental-maintenance path), truncating at the first torn record.
//!
//! Crash injection comes in two flavors: [`IoFaults`] fails the engine
//! after a budgeted number of file operations (so a sweep can kill a
//! checkpoint between any two writes), and [`Engine::simulate_crash`]
//! models what an OS-level crash leaves behind — a torn WAL append, the
//! litter of an uncommitted checkpoint — driven by a seed so simulator
//! runs replay exactly.

use crate::error::{Result, StoreError};
use crate::manifest::{Manifest, MANIFEST_FILE};
use crate::segment::{read_meta, read_segment, write_meta_bytes, write_segment_bytes};
use crate::wal::{self, WalEntry, WalRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use wdl_core::Peer;
use wdl_datalog::{Symbol, Tuple, Value};

/// A buffered-but-not-yet-durable entry (alias of the WAL entry — the
/// buffer is exactly the unwritten WAL suffix).
pub type BufferedRecord = WalEntry;

/// Where and how aggressively a peer persists.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory under which each peer gets `<root>/<peer-name>/`.
    pub root: PathBuf,
    /// Checkpoint once the WAL holds this many records.
    pub checkpoint_records: usize,
    /// Checkpoint once the WAL payload reaches this many bytes.
    pub checkpoint_bytes: u64,
}

impl DurabilityConfig {
    /// Config with default checkpoint policy (4096 records / 1 MiB).
    pub fn new(root: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            root: root.into(),
            checkpoint_records: 4096,
            checkpoint_bytes: 1 << 20,
        }
    }

    /// Sets the record-count checkpoint threshold.
    pub fn checkpoint_records(mut self, n: usize) -> DurabilityConfig {
        self.checkpoint_records = n;
        self
    }

    /// Sets the WAL-bytes checkpoint threshold.
    pub fn checkpoint_bytes(mut self, n: u64) -> DurabilityConfig {
        self.checkpoint_bytes = n;
        self
    }
}

/// Budgeted fault injection: every file operation (create, write, fsync,
/// rename) spends one unit; when the budget hits zero the operation
/// fails with [`StoreError::Injected`] instead of touching disk. Sweeping
/// the budget over `0..N` kills the engine between every pair of file
/// operations — including mid-checkpoint, after segments exist but
/// before the manifest rename.
#[derive(Clone, Debug, Default)]
pub struct IoFaults {
    remaining: Option<u64>,
}

impl IoFaults {
    /// No injected faults (the default).
    pub fn none() -> IoFaults {
        IoFaults { remaining: None }
    }

    /// Allow `n` file operations to succeed, then fail every one after.
    pub fn fail_after(n: u64) -> IoFaults {
        IoFaults { remaining: Some(n) }
    }

    fn tick(&mut self) -> Result<()> {
        match &mut self.remaining {
            None => Ok(()),
            Some(0) => Err(StoreError::Injected("i/o fault budget exhausted")),
            Some(n) => {
                *n -= 1;
                Ok(())
            }
        }
    }
}

/// One peer's durable storage: segment checkpoints plus a delta WAL.
#[derive(Debug)]
pub struct Engine {
    dir: PathBuf,
    peer: Symbol,
    checkpoint_records: usize,
    checkpoint_bytes: u64,
    /// Epoch of the committed manifest (0 = never checkpointed).
    epoch: u64,
    /// Append handle for the current WAL, open between checkpoints.
    wal: Option<File>,
    /// Records already durable in the current WAL.
    wal_records: usize,
    /// Payload bytes already durable in the current WAL.
    wal_bytes: u64,
    /// Buffered changes since the last group commit.
    buffer: Vec<WalEntry>,
    faults: IoFaults,
}

impl Engine {
    /// Opens (creating if needed) the storage directory for `peer`.
    /// Reads the committed epoch from the manifest when one exists; does
    /// not load any data — call [`Engine::recover`] for that.
    pub fn open(config: &DurabilityConfig, peer: Symbol) -> Result<Engine> {
        let dir = config.root.join(peer.as_str());
        fs::create_dir_all(&dir)?;
        let epoch = match fs::read(dir.join(MANIFEST_FILE)) {
            Ok(bytes) => Manifest::decode(&bytes, MANIFEST_FILE)
                .map(|m| m.epoch)
                .unwrap_or_else(|_| detect_epoch(&dir)),
            Err(_) => detect_epoch(&dir),
        };
        Ok(Engine {
            dir,
            peer,
            checkpoint_records: config.checkpoint_records,
            checkpoint_bytes: config.checkpoint_bytes,
            epoch,
            wal: None,
            wal_records: 0,
            wal_bytes: 0,
            buffer: Vec::new(),
            faults: IoFaults::none(),
        })
    }

    /// The peer this engine stores.
    pub fn peer_name(&self) -> Symbol {
        self.peer
    }

    /// The storage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Epoch of the last committed checkpoint (0 if none yet).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(records, payload bytes)` durable in the current WAL.
    pub fn wal_stats(&self) -> (usize, u64) {
        (self.wal_records, self.wal_bytes)
    }

    /// Number of buffered (not yet durable) records.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Installs an injected-fault budget (see [`IoFaults`]).
    pub fn set_faults(&mut self, faults: IoFaults) {
        self.faults = faults;
    }

    /// Reads and validates the committed manifest.
    pub fn manifest(&self) -> Result<Manifest> {
        let bytes = self.read_ref(MANIFEST_FILE)?;
        Manifest::decode(&bytes, MANIFEST_FILE)
    }

    /// Buffers one base change. Pure memory; durability is decided at
    /// [`Engine::sync`].
    pub fn record(&mut self, rel: Symbol, tuple: Tuple, added: bool) {
        self.buffer
            .push(WalEntry::Fact(WalRecord { rel, tuple, added }));
    }

    /// Buffers one session delivery watermark. Riding in the same buffer
    /// as the facts means the next group commit makes both durable
    /// atomically — the session layer's dedup floor never gets ahead of
    /// the facts it guards.
    pub fn record_watermark(&mut self, remote: Symbol, dir: u8, inc: u64, seq: u64) {
        self.buffer.push(WalEntry::Watermark {
            remote,
            dir,
            inc,
            seq,
        });
    }

    /// Group commit. Chooses between a WAL append and a full checkpoint:
    /// structural changes (`meta_dirty`), a missing WAL (first sync, or
    /// post-crash), or the checkpoint policy thresholds force the latter.
    pub fn sync(&mut self, peer: &Peer, meta_dirty: bool) -> Result<()> {
        let need_checkpoint = meta_dirty
            || self.wal.is_none()
            || self.wal_records + self.buffer.len() >= self.checkpoint_records
            || self.wal_bytes >= self.checkpoint_bytes;
        if need_checkpoint {
            self.checkpoint(peer)
        } else if self.buffer.is_empty() {
            Ok(())
        } else {
            self.flush_wal()
        }
    }

    /// Appends the buffered batch to the WAL as one write + fsync.
    fn flush_wal(&mut self) -> Result<()> {
        let mut batch = Vec::new();
        for rec in &self.buffer {
            batch.extend_from_slice(&wal::encode_record(rec));
        }
        self.faults.tick()?;
        let wal = self.wal.as_mut().expect("flush_wal requires an open WAL");
        wal.write_all(&batch)?;
        self.faults.tick()?;
        wal.sync_all()?;
        self.wal_records += self.buffer.len();
        self.wal_bytes += batch.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Writes a full checkpoint of `peer` under the next epoch and
    /// commits it. The buffered records are *not* appended — the store
    /// they describe is already inside the segments being written.
    pub fn checkpoint(&mut self, peer: &Peer) -> Result<()> {
        let epoch = self.epoch + 1;

        let mut state = peer.export_state();
        state.facts.clear();
        let meta_file = format!("meta-{epoch:016x}.ck");
        self.write_file(&meta_file, &write_meta_bytes(&state))?;

        let mut segments = Vec::new();
        for (i, (rel, dump)) in peer.export_extensional().iter().enumerate() {
            let file = format!("rel-{epoch:016x}-{i}.seg");
            self.write_file(&file, &write_segment_bytes(*rel, dump))?;
            segments.push((*rel, file));
        }

        let wal_file = format!("wal-{epoch:016x}.log");
        self.write_file(&wal_file, &wal::encode_header(epoch, self.peer))?;

        // The commit point: everything above is fsynced and unreferenced
        // until this rename lands.
        self.commit_manifest(&Manifest {
            epoch,
            meta_file,
            segments,
            wal_file: wal_file.clone(),
        })?;
        // The commit is on disk — advance the in-memory epoch *before*
        // anything that can still fail, or a crash between here and the
        // WAL reopen would treat the committed epoch as uncommitted
        // litter and damage it.
        self.epoch = epoch;
        self.wal_records = 0;
        self.wal_bytes = 0;
        self.buffer.clear();
        self.wal = None;

        self.faults.tick()?;
        self.wal = Some(
            OpenOptions::new()
                .append(true)
                .open(self.dir.join(&wal_file))?,
        );
        self.remove_stale();
        Ok(())
    }

    /// Rebuilds the peer from disk: committed checkpoint plus the valid
    /// WAL prefix, replayed through the incremental-maintenance path.
    /// Truncates a torn WAL tail so subsequent appends are clean.
    pub fn recover(&mut self) -> Result<Peer> {
        self.wal = None;
        self.buffer.clear();

        let manifest = self.manifest()?;
        let meta_bytes = self.read_ref(&manifest.meta_file)?;
        let mut state = read_meta(&meta_bytes, &manifest.meta_file)?;
        if state.name != self.peer {
            return Err(StoreError::corrupt(
                &manifest.meta_file,
                format!(
                    "meta checkpoint is for peer {}, this directory belongs to {}",
                    state.name, self.peer
                ),
            ));
        }
        state.facts.clear();
        let mut peer = Peer::import_state(state)?;

        for (rel, file) in &manifest.segments {
            let bytes = self.read_ref(file)?;
            let (seg_rel, dump) = read_segment(&bytes, file)?;
            if seg_rel != *rel {
                return Err(StoreError::corrupt(
                    file,
                    format!("segment is for {seg_rel}, manifest says {rel}"),
                ));
            }
            peer.import_extensional(*rel, &dump)?;
        }

        let wal_path = self.dir.join(&manifest.wal_file);
        let wal_bytes = self.read_ref(&manifest.wal_file)?;
        let tail = wal::scan(&wal_bytes, &manifest.wal_file)?;
        if tail.epoch != manifest.epoch {
            return Err(StoreError::corrupt(
                &manifest.wal_file,
                format!(
                    "wal is for epoch {}, manifest commits epoch {} (stale manifest or spliced log)",
                    tail.epoch, manifest.epoch
                ),
            ));
        }
        if tail.peer != self.peer {
            return Err(StoreError::corrupt(
                &manifest.wal_file,
                format!(
                    "wal belongs to peer {}, this directory belongs to {} (spliced log)",
                    tail.peer, self.peer
                ),
            ));
        }
        if tail.valid_len < wal_bytes.len() {
            let f = OpenOptions::new().write(true).open(&wal_path)?;
            f.set_len(tail.valid_len as u64)?;
            f.sync_all()?;
        }
        for entry in &tail.records {
            match entry {
                WalEntry::Fact(rec) => {
                    if rec.added {
                        peer.insert_local(rec.rel, rec.tuple.to_vec())?;
                    } else {
                        peer.delete_local(rec.rel, rec.tuple.to_vec())?;
                    }
                }
                WalEntry::Watermark {
                    remote,
                    dir,
                    inc,
                    seq,
                } => {
                    // Straight into the peer's map — going through the
                    // sink would re-log an entry we are replaying.
                    peer.restore_session_watermark(*remote, *dir, *inc, *seq);
                }
            }
        }

        self.wal = Some(OpenOptions::new().append(true).open(&wal_path)?);
        self.epoch = manifest.epoch;
        self.wal_records = tail.records.len();
        self.wal_bytes = (tail.valid_len - tail.header_len) as u64;
        Ok(peer)
    }

    /// Models a process crash, seeded for deterministic replay. The
    /// in-memory buffer is lost (returned so a client-retry layer can
    /// re-submit); the seed decides what half-finished I/O the crash
    /// leaves on disk — a torn WAL append, the litter of an uncommitted
    /// checkpoint, both, or nothing. Only *unacknowledged* bytes are ever
    /// damaged: everything a past `sync` acked stays intact.
    pub fn simulate_crash(&mut self, seed: u64) -> Vec<WalEntry> {
        let lost = std::mem::take(&mut self.buffer);
        self.wal = None;
        let mut rng = StdRng::seed_from_u64(seed);
        let choice: u32 = rng.gen_range(0..4);
        if choice & 1 != 0 {
            self.tear_wal_tail(&mut rng);
        }
        if choice & 2 != 0 {
            self.litter_partial_checkpoint(&mut rng);
        }
        lost
    }

    /// Appends a torn (cut or CRC-broken) record to the current WAL, as
    /// if the crash interrupted an append that was never acked.
    fn tear_wal_tail(&self, rng: &mut StdRng) {
        if self.epoch == 0 {
            return;
        }
        let path = self.dir.join(format!("wal-{:016x}.log", self.epoch));
        let Ok(mut f) = OpenOptions::new().append(true).open(&path) else {
            return;
        };
        let mut fake = wal::encode_record(&WalEntry::Fact(WalRecord {
            rel: Symbol::intern("tornWrite"),
            tuple: vec![Value::from(rng.gen_range(0..1_000_000_i64))].into(),
            added: true,
        }));
        let cut = rng.gen_range(1..=fake.len());
        if cut == fake.len() {
            // Full-length write with a mangled CRC instead of a short one.
            fake[5] ^= 0xff;
        }
        let _ = f.write_all(&fake[..cut]);
    }

    /// Drops the on-disk litter of a checkpoint that died before its
    /// manifest rename: a half-written segment, an uncommitted
    /// `MANIFEST.tmp`, maybe a fragment of the next WAL header. Recovery
    /// must ignore all of it — only the committed manifest is truth.
    fn litter_partial_checkpoint(&self, rng: &mut StdRng) {
        let next = self.epoch + 1;
        let _ = fs::write(
            self.dir.join(format!("rel-{next:016x}-0.seg")),
            b"WS", // half a magic
        );
        let _ = fs::write(self.dir.join("MANIFEST.tmp"), b"uncommitted");
        if rng.gen_range(0..2u32) == 1 {
            let header = wal::encode_header(next, self.peer);
            let cut = rng.gen_range(1..header.len());
            let _ = fs::write(
                self.dir.join(format!("wal-{next:016x}.log")),
                &header[..cut],
            );
        }
    }

    fn write_file(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.faults.tick()?;
        let mut f = File::create(self.dir.join(name))?;
        f.write_all(bytes)?;
        self.faults.tick()?;
        f.sync_all()?;
        Ok(())
    }

    fn commit_manifest(&mut self, m: &Manifest) -> Result<()> {
        let tmp = "MANIFEST.tmp";
        self.write_file(tmp, &m.encode())?;
        self.faults.tick()?;
        fs::rename(self.dir.join(tmp), self.dir.join(MANIFEST_FILE))?;
        // Make the rename itself durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Reads a manifest-referenced file; a missing one is corruption
    /// (stale manifest), not a plain I/O error.
    fn read_ref(&self, file: &str) -> Result<Vec<u8>> {
        fs::read(self.dir.join(file)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::corrupt(file, "referenced file is missing")
            } else {
                StoreError::Io(e)
            }
        })
    }

    /// Best-effort removal of files from superseded epochs.
    fn remove_stale(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(epoch) = parse_epoch(name) {
                if epoch < self.epoch {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// Extracts the epoch from `meta-<hex>.ck` / `rel-<hex>-<i>.seg` /
/// `wal-<hex>.log` file names.
fn parse_epoch(name: &str) -> Option<u64> {
    let rest = name
        .strip_prefix("meta-")
        .or_else(|| name.strip_prefix("rel-"))
        .or_else(|| name.strip_prefix("wal-"))?;
    u64::from_str_radix(rest.get(..16)?, 16).ok()
}

/// Fallback epoch detection when the manifest is unreadable: the highest
/// epoch any file name mentions (so a fresh checkpoint never reuses a
/// possibly-littered epoch).
fn detect_epoch(dir: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().and_then(parse_epoch))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::RelationKind;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wdl-store-eng-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_peer(name: &str) -> Peer {
        let mut p = Peer::new(name);
        p.declare("pictures", 2, RelationKind::Extensional).unwrap();
        p.insert_local("pictures", vec![Value::from(1), Value::from("a.jpg")])
            .unwrap();
        p
    }

    #[test]
    fn checkpoint_then_recover_round_trips() {
        let root = tmp_root("ckpt");
        let cfg = DurabilityConfig::new(&root);
        let name = Symbol::intern("engp1");
        let p = sample_peer("engp1");
        let mut eng = Engine::open(&cfg, name).unwrap();
        eng.checkpoint(&p).unwrap();
        assert_eq!(eng.epoch(), 1);

        let mut eng2 = Engine::open(&cfg, name).unwrap();
        let q = eng2.recover().unwrap();
        assert_eq!(q.relation_facts("pictures"), p.relation_facts("pictures"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wal_appends_replay_on_recovery() {
        let root = tmp_root("wal");
        let cfg = DurabilityConfig::new(&root);
        let name = Symbol::intern("engp2");
        let mut p = sample_peer("engp2");
        let mut eng = Engine::open(&cfg, name).unwrap();
        eng.checkpoint(&p).unwrap();

        p.insert_local("pictures", vec![Value::from(2), Value::from("b.jpg")])
            .unwrap();
        eng.record(
            Symbol::intern("pictures"),
            vec![Value::from(2), Value::from("b.jpg")].into(),
            true,
        );
        eng.record(
            Symbol::intern("pictures"),
            vec![Value::from(1), Value::from("a.jpg")].into(),
            false,
        );
        p.delete_local("pictures", vec![Value::from(1), Value::from("a.jpg")])
            .unwrap();
        eng.sync(&p, false).unwrap();
        assert_eq!(eng.wal_stats().0, 2);

        let mut eng2 = Engine::open(&cfg, name).unwrap();
        let q = eng2.recover().unwrap();
        assert_eq!(q.relation_facts("pictures"), p.relation_facts("pictures"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn watermarks_replay_on_recovery() {
        let root = tmp_root("wm");
        let cfg = DurabilityConfig::new(&root);
        let name = Symbol::intern("engp6");
        let p = sample_peer("engp6");
        let mut eng = Engine::open(&cfg, name).unwrap();
        eng.checkpoint(&p).unwrap();

        let remote = Symbol::intern("engp6remote");
        eng.record_watermark(remote, 0, 2, 17);
        eng.record_watermark(remote, 1, 1, 5);
        eng.sync(&p, false).unwrap();
        assert_eq!(eng.wal_stats().0, 2);

        let mut eng2 = Engine::open(&cfg, name).unwrap();
        let q = eng2.recover().unwrap();
        assert_eq!(q.session_watermarks().get(&(remote, 0)), Some(&(2, 17)));
        assert_eq!(q.session_watermarks().get(&(remote, 1)), Some(&(1, 5)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn meta_dirty_forces_checkpoint() {
        let root = tmp_root("meta");
        let cfg = DurabilityConfig::new(&root);
        let name = Symbol::intern("engp3");
        let p = sample_peer("engp3");
        let mut eng = Engine::open(&cfg, name).unwrap();
        eng.sync(&p, true).unwrap();
        assert_eq!(eng.epoch(), 1);
        eng.sync(&p, true).unwrap();
        assert_eq!(eng.epoch(), 2);
        eng.sync(&p, false).unwrap();
        assert_eq!(eng.epoch(), 2, "clean empty sync is a no-op");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_faults_never_lose_committed_state() {
        let name = Symbol::intern("engp4");
        for budget in 0..24 {
            let root = tmp_root(&format!("fault{budget}"));
            let cfg = DurabilityConfig::new(&root);
            let p = sample_peer("engp4");
            let mut eng = Engine::open(&cfg, name).unwrap();
            eng.checkpoint(&p).unwrap();

            eng.set_faults(IoFaults::fail_after(budget));
            let mut q = sample_peer("engp4");
            q.insert_local("pictures", vec![Value::from(3), Value::from("c.jpg")])
                .unwrap();
            // A later checkpoint may die anywhere; the first one must hold.
            let _ = eng.checkpoint(&q);

            let mut eng2 = Engine::open(&cfg, name).unwrap();
            let r = eng2.recover().expect("recovery after injected crash");
            let got = r.relation_facts("pictures").len();
            assert!(got == 1 || got == 2, "budget {budget}: {got} facts");
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn simulated_crash_tears_are_always_recoverable() {
        let name = Symbol::intern("engp5");
        for seed in 0..32u64 {
            let root = tmp_root(&format!("tear{seed}"));
            let cfg = DurabilityConfig::new(&root);
            let mut p = sample_peer("engp5");
            let mut eng = Engine::open(&cfg, name).unwrap();
            eng.checkpoint(&p).unwrap();
            p.insert_local("pictures", vec![Value::from(9), Value::from("z.jpg")])
                .unwrap();
            eng.record(
                Symbol::intern("pictures"),
                vec![Value::from(9), Value::from("z.jpg")].into(),
                true,
            );
            eng.sync(&p, false).unwrap();

            let lost = eng.simulate_crash(seed);
            assert!(lost.is_empty(), "acked batch is not lost");
            let mut eng2 = Engine::open(&cfg, name).unwrap();
            let q = eng2.recover().expect("recovery after simulated crash");
            assert_eq!(
                q.relation_facts("pictures").len(),
                2,
                "seed {seed} lost acked facts"
            );
            let _ = fs::remove_dir_all(&root);
        }
    }
}
