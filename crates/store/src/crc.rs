//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every on-disk unit — segment, manifest, WAL record — carries a CRC so
//! recovery can tell a torn or bit-flipped tail from valid data. The table
//! is built at compile time; no external crate needed.

/// 256-entry lookup table for the reflected IEEE polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 checksum of `data` (IEEE, as used by zlib/gzip/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"WebdamLog"), crc32(b"WebdamLog"));
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"segment payload");
        let mut flipped = b"segment payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
