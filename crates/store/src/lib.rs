//! # Durable storage engine (`wdl-store`)
//!
//! The paper's users "launch their customized peers on their machines with
//! their own personal data" (§1) — peers own state that must survive both
//! clean restarts and crashes. This crate is the storage engine behind the
//! [`wdl_core::DurabilitySink`] seam:
//!
//! * **Segment files** ([`segment`]) — per-relation checkpoint files: a
//!   versioned header, the slice of the value interner the relation
//!   references (so segments are process-independent; `ValueId`s are
//!   remapped on load), the raw columns as fixed-width little-endian
//!   cells, and a CRC32 trailer. Written whole, fsynced, and committed
//!   atomically by a manifest rename.
//! * **Delta WAL** ([`wal`]) — between checkpoints, extensional base
//!   changes append to a write-ahead log as length-prefixed, CRC'd
//!   records. Appends are group-committed at stage boundaries: a peer
//!   never tells the network about state it could still lose.
//! * **Recovery** ([`Engine::recover`]) — load the manifest's segments,
//!   then replay the WAL tail through the peer's incremental-maintenance
//!   path (`insert_local`/`delete_local`), truncating at the first torn
//!   or corrupt record. Everything acked before the crash survives;
//!   nothing is invented.
//!
//! [`DurableStore`] wires engines onto peers and runtimes;
//! [`DurablePersistence`] plugs the engine into the simulator's
//! crash/restart path so conformance sweeps grade recovered runs. See the
//! README's "Durability" section for the file formats and the
//! crash-safety matrix.

mod crc;
mod engine;
mod error;
mod manifest;
mod persistence;
mod segment;
mod wal;

pub use crc::crc32;
pub use engine::{BufferedRecord, DurabilityConfig, Engine, IoFaults};
pub use error::{Result, StoreError};
pub use manifest::{Manifest, MANIFEST_FILE};
pub use persistence::{DurablePersistence, DurableStore};
pub use segment::{read_meta, read_segment, write_meta_bytes, write_segment_bytes};
pub use wal::{WalEntry, WalRecord, WalTail};
