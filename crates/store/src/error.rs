//! Storage-engine errors.
//!
//! Corruption is a *value*, never a panic: every malformed byte the engine
//! can encounter on disk — torn tails, flipped bits, stale manifests,
//! spliced files — surfaces as [`StoreError::Corrupt`] with the file and
//! what failed, so callers (and the corruption fuzz suite) can rely on
//! clean failure.

use std::fmt;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Everything that can go wrong beneath the durability seam.
#[derive(Debug)]
pub enum StoreError {
    /// Operating-system I/O failure.
    Io(std::io::Error),
    /// On-disk bytes failed validation (bad magic, version, CRC, bounds).
    Corrupt {
        /// File (or logical unit) that failed.
        file: String,
        /// What was wrong.
        detail: String,
    },
    /// The recovered state was rejected by the peer engine.
    Engine(wdl_core::WdlError),
    /// An injected fault from [`crate::IoFaults`] (crash-schedule testing).
    Injected(&'static str),
}

impl StoreError {
    /// Shorthand for a corruption error.
    pub fn corrupt(file: impl Into<String>, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            file: file.into(),
            detail: detail.into(),
        }
    }

    /// Whether this is a corruption (as opposed to I/O or engine) error.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o: {e}"),
            StoreError::Corrupt { file, detail } => {
                write!(f, "corrupt storage ({file}): {detail}")
            }
            StoreError::Engine(e) => write!(f, "recovered state rejected: {e}"),
            StoreError::Injected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<wdl_core::WdlError> for StoreError {
    fn from(e: wdl_core::WdlError) -> StoreError {
        StoreError::Engine(e)
    }
}

impl From<wdl_datalog::DatalogError> for StoreError {
    fn from(e: wdl_datalog::DatalogError) -> StoreError {
        StoreError::Engine(wdl_core::WdlError::Datalog(e))
    }
}

impl From<StoreError> for wdl_core::WdlError {
    fn from(e: StoreError) -> wdl_core::WdlError {
        match e {
            StoreError::Engine(inner) => inner,
            other => wdl_core::WdlError::Durability(other.to_string()),
        }
    }
}

impl From<StoreError> for wdl_net::NetError {
    fn from(e: StoreError) -> wdl_net::NetError {
        match e {
            StoreError::Io(io) => wdl_net::NetError::Io(io),
            other => wdl_net::NetError::Codec(other.to_string()),
        }
    }
}
