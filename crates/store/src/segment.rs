//! Per-relation segment files and the meta checkpoint.
//!
//! A **segment** is one extensional relation frozen at a checkpoint:
//!
//! ```text
//! u32  magic "WSEG"        u8   version
//! str  relation (unqualified)
//! u32  arity               u32  rows
//! u32  #values  then that many codec values   ← the interner slice the
//! u32  #cells   then that many u32 LE cells   ← relation references
//! u32  CRC-32 of everything above
//! ```
//!
//! The value table is the slice of the process interner the relation's
//! tuples reference, in first-use order; the cells are fixed-width
//! little-endian indexes into it (see [`wdl_datalog::ColumnExport`]).
//! Storing values by *content* and ids by *local index* makes segments
//! process-independent: loading re-interns every value, so a snapshot
//! taken in one process loads correctly into another whose global
//! interner assigned entirely different ids.
//!
//! The **meta checkpoint** is the structural rest of the peer — schema,
//! rules, delegations, trust, grants — encoded with the snapshot codec
//! but with the facts left empty (facts live in segments), wrapped in the
//! same magic/version/CRC envelope.

use crate::crc::crc32;
use crate::error::{Result, StoreError};
use bytes::{BufMut, BytesMut};
use wdl_core::PeerState;
use wdl_datalog::{ColumnExport, Symbol};
use wdl_net::codec::{put_str, put_value, Reader};

/// Segment file magic ("WSEG", little-endian).
const SEG_MAGIC: u32 = u32::from_le_bytes(*b"WSEG");
/// Meta checkpoint magic ("WMET").
const META_MAGIC: u32 = u32::from_le_bytes(*b"WMET");
/// On-disk format version for both envelopes.
const FORMAT_VERSION: u8 = 1;

/// Encodes one relation's column dump as a segment file image.
pub fn write_segment_bytes(rel: Symbol, dump: &ColumnExport) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + dump.cells.len() * 4);
    buf.put_u32_le(SEG_MAGIC);
    buf.put_u8(FORMAT_VERSION);
    put_str(&mut buf, rel.as_str());
    buf.put_u32_le(dump.arity as u32);
    buf.put_u32_le(dump.rows as u32);
    buf.put_u32_le(dump.values.len() as u32);
    for v in &dump.values {
        put_value(&mut buf, v);
    }
    buf.put_u32_le(dump.cells.len() as u32);
    for &c in &dump.cells {
        buf.put_u32_le(c);
    }
    finish_with_crc(buf)
}

/// Decodes a segment file image. `file` labels errors.
pub fn read_segment(bytes: &[u8], file: &str) -> Result<(Symbol, ColumnExport)> {
    let body = check_envelope(bytes, SEG_MAGIC, "segment", file)?;
    let mut r = Reader::new(body);
    let inner = |e: wdl_net::NetError| StoreError::corrupt(file, e.to_string());
    // Magic + version were validated by the envelope; skip them.
    r.u32().map_err(inner)?;
    r.u8().map_err(inner)?;
    let rel = r.symbol().map_err(inner)?;
    let arity = r.u32().map_err(inner)? as usize;
    let rows = r.u32().map_err(inner)? as usize;
    let nvalues = r.len().map_err(inner)?;
    let mut values = Vec::with_capacity(nvalues);
    for _ in 0..nvalues {
        values.push(r.value().map_err(inner)?);
    }
    let ncells = r.len().map_err(inner)?;
    if ncells != rows.saturating_mul(arity) {
        return Err(StoreError::corrupt(
            file,
            format!("cell count {ncells} does not match {rows} rows × {arity} columns"),
        ));
    }
    let mut cells = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        cells.push(r.u32().map_err(inner)?);
    }
    r.expect_end().map_err(inner)?;
    Ok((
        rel,
        ColumnExport {
            arity,
            rows,
            values,
            cells,
        },
    ))
}

/// Encodes the peer's structural state (facts cleared) as the meta
/// checkpoint image.
pub fn write_meta_bytes(state: &PeerState) -> Vec<u8> {
    debug_assert!(state.facts.is_empty(), "meta checkpoints carry no facts");
    let snap = wdl_net::snapshot::save_state(state);
    let mut buf = BytesMut::with_capacity(snap.len() + 16);
    buf.put_u32_le(META_MAGIC);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u32_le(snap.len() as u32);
    buf.put_slice(&snap.to_vec());
    finish_with_crc(buf)
}

/// Decodes a meta checkpoint image back into a [`PeerState`].
pub fn read_meta(bytes: &[u8], file: &str) -> Result<PeerState> {
    let body = check_envelope(bytes, META_MAGIC, "meta checkpoint", file)?;
    // 4 magic + 1 version + 4 length.
    let payload_len = u32::from_le_bytes(body[5..9].try_into().unwrap()) as usize;
    let payload = &body[9..];
    if payload.len() != payload_len {
        return Err(StoreError::corrupt(
            file,
            format!(
                "meta payload length {} does not match header {payload_len}",
                payload.len()
            ),
        ));
    }
    wdl_net::snapshot::load_state(payload)
        .map_err(|e| StoreError::corrupt(file, format!("snapshot decode: {e}")))
}

/// Appends the CRC trailer over everything written so far.
fn finish_with_crc(buf: BytesMut) -> Vec<u8> {
    let mut out = buf.freeze().to_vec();
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates magic, version and the CRC trailer; returns the body
/// (everything except the trailer, *including* magic + version).
pub(crate) fn check_envelope<'a>(
    bytes: &'a [u8],
    magic: u32,
    kind: &str,
    file: &str,
) -> Result<&'a [u8]> {
    if bytes.len() < 9 {
        return Err(StoreError::corrupt(
            file,
            format!("{kind} too short ({} bytes)", bytes.len()),
        ));
    }
    let got_magic = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if got_magic != magic {
        return Err(StoreError::corrupt(
            file,
            format!("{kind} magic mismatch: got {got_magic:#010x}, want {magic:#010x}"),
        ));
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(StoreError::corrupt(
            file,
            format!(
                "{kind} version mismatch: got {}, want {FORMAT_VERSION}",
                bytes[4]
            ),
        ));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(trailer.try_into().unwrap());
    let got = crc32(body);
    if got != want {
        return Err(StoreError::corrupt(
            file,
            format!("{kind} CRC mismatch: computed {got:#010x}, stored {want:#010x}"),
        ));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_datalog::Value;

    fn sample_dump() -> ColumnExport {
        ColumnExport {
            arity: 2,
            rows: 2,
            values: vec![Value::from(1), Value::from("a"), Value::from(2)],
            cells: vec![0, 1, 2, 1],
        }
    }

    #[test]
    fn segment_round_trip() {
        let rel = Symbol::intern("pictures");
        let bytes = write_segment_bytes(rel, &sample_dump());
        let (r, dump) = read_segment(&bytes, "t.seg").unwrap();
        assert_eq!(r, rel);
        assert_eq!(dump, sample_dump());
    }

    #[test]
    fn segment_rejects_any_single_bit_flip() {
        let bytes = write_segment_bytes(Symbol::intern("r"), &sample_dump());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                read_segment(&bad, "t.seg").is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn segment_rejects_truncation() {
        let bytes = write_segment_bytes(Symbol::intern("r"), &sample_dump());
        for cut in 0..bytes.len() {
            assert!(read_segment(&bytes[..cut], "t.seg").is_err(), "cut {cut}");
        }
    }

    #[test]
    fn meta_round_trip() {
        let mut p = wdl_core::Peer::new("segmeta");
        p.declare("pictures", 2, wdl_core::RelationKind::Extensional)
            .unwrap();
        let mut state = p.export_state();
        state.facts.clear();
        let bytes = write_meta_bytes(&state);
        let back = read_meta(&bytes, "meta.ck").unwrap();
        assert_eq!(back.name, state.name);
        assert_eq!(back.decls.len(), state.decls.len());
    }
}
