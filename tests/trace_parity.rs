//! Tracing is observationally free: a traced runtime is round-for-round
//! identical to an untraced one.
//!
//! The trace hooks ride inside the stage loop (`Peer::run_stage`), the
//! fixpoint executors, and the runtimes' routing paths — all places where
//! an accidental semantic dependence on the tracer (an extra evaluation,
//! a reordered iteration, a consumed message) would silently corrupt
//! results only when profiling is on. This suite drives a traced and an
//! untraced [`LocalRuntime`] through the same scripted scenarios in
//! lockstep and asserts, after every round:
//!
//! * identical `changed` / routed / undeliverable counters,
//! * identical per-peer stage stats,
//!
//! and, at quiescence, identical contents for every declared relation of
//! every peer — across all five wepic scenario generators × three seeds.
//! It also sanity-checks that the traced side actually *collected*
//! something (a vacuous pass with an inert tracer proves nothing), and
//! that the sharded runtime's traced tick agrees with its untraced twin.

use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::shard::ShardedRuntime;
use webdamlog::datalog::{Symbol, Tuple};
use webdamlog::net::sim::oracle::Scenario;
use webdamlog::net::sim::SimOp;
use wepic::scenarios;

const MAX_ROUNDS: usize = 64;

fn apply_op(rt: &mut LocalRuntime, peer: Symbol, op: &SimOp) {
    match op.clone() {
        SimOp::Insert { rel, tuple } => {
            rt.peer_mut(peer).unwrap().insert_local(rel, tuple).unwrap();
        }
        SimOp::Delete { rel, tuple } => {
            rt.peer_mut(peer).unwrap().delete_local(rel, tuple).unwrap();
        }
    }
}

/// Ticks both runtimes until the untraced one reaches a quiet round,
/// asserting report parity after every round.
fn lockstep_quiesce(plain: &mut LocalRuntime, traced: &mut LocalRuntime, ctx: &str) {
    for round in 0..MAX_ROUNDS {
        let pt = plain.tick().unwrap();
        let tt = traced.tick().unwrap();
        assert_eq!(pt.changed, tt.changed, "{ctx}: changed @ round {round}");
        assert_eq!(pt.messages, tt.messages, "{ctx}: routed @ round {round}");
        assert_eq!(
            pt.undeliverable, tt.undeliverable,
            "{ctx}: undeliverable @ round {round}"
        );
        assert_eq!(
            pt.stats.len(),
            tt.stats.len(),
            "{ctx}: stats coverage @ round {round}"
        );
        for (name, plain_stats) in &pt.stats {
            let traced_stats = tt
                .stats
                .get(name)
                .unwrap_or_else(|| panic!("{ctx}: traced run missing stats for {name}"));
            assert_eq!(
                plain_stats, traced_stats,
                "{ctx}: stats diverge for {name} @ round {round}"
            );
        }
        if !pt.changed && pt.messages == 0 {
            return;
        }
    }
    panic!("{ctx}: no quiescence within {MAX_ROUNDS} rounds");
}

/// Every declared relation of every peer holds the same tuples.
fn assert_same_state(plain: &LocalRuntime, traced: &LocalRuntime, ctx: &str) {
    assert_eq!(
        plain.peer_names(),
        traced.peer_names(),
        "{ctx}: peer sets diverge"
    );
    for name in plain.peer_names() {
        let rels: Vec<Symbol> = plain
            .peer(name)
            .unwrap()
            .schema()
            .iter()
            .map(|decl| decl.rel)
            .collect();
        for rel in rels {
            let mut reference: Vec<Tuple> = plain.peer(name).unwrap().relation_facts(rel);
            let mut observed: Vec<Tuple> = traced.peer(name).unwrap().relation_facts(rel);
            reference.sort();
            observed.sort();
            assert_eq!(reference, observed, "{ctx}: {name}.{rel} diverges");
        }
    }
}

fn run_parity(scenario: &Scenario) {
    let ctx = scenario.name.clone();
    let mut plain = LocalRuntime::new();
    let mut traced = LocalRuntime::new();
    for p in (scenario.build)() {
        plain.add_peer(p).unwrap();
    }
    for p in (scenario.build)() {
        traced.add_peer(p).unwrap();
    }
    traced.set_tracing(true);
    lockstep_quiesce(&mut plain, &mut traced, &ctx);
    for (i, batch) in scenario.batches.iter().enumerate() {
        for (peer, op) in batch {
            apply_op(&mut plain, *peer, op);
            apply_op(&mut traced, *peer, op);
        }
        lockstep_quiesce(&mut plain, &mut traced, &format!("{ctx} batch {i}"));
        assert_same_state(&plain, &traced, &format!("{ctx} batch {i}"));
    }
    let agg = traced.trace().expect("tracing was enabled");
    assert!(
        agg.event_count() > 0,
        "{ctx}: traced run collected no events — the parity pass is vacuous"
    );
    assert!(
        !agg.peers().is_empty(),
        "{ctx}: no per-peer stage aggregates"
    );
}

type Generator = fn(u64) -> Scenario;

#[test]
fn traced_equals_untraced_across_generators_and_seeds() {
    let generators: Vec<(&str, Generator)> = vec![
        ("fanout", scenarios::delegation_fanout),
        ("churn", scenarios::delegation_churn),
        ("acl", scenarios::acl_restricted),
        ("transfer", scenarios::transfer_dispatch),
        ("publish", scenarios::publish_chain),
    ];
    for seed in 1..=3u64 {
        for (name, gen) in &generators {
            eprintln!("trace parity: {name} seed={seed}");
            run_parity(&gen(seed));
        }
    }
}

/// Toggling tracing mid-run (on → off → on) never disturbs execution,
/// and the aggregate stays queryable while tracing is off.
#[test]
fn midrun_toggle_is_transparent() {
    let scenario = scenarios::delegation_churn(7);
    let mut plain = LocalRuntime::new();
    let mut traced = LocalRuntime::new();
    for p in (scenario.build)() {
        plain.add_peer(p).unwrap();
    }
    for p in (scenario.build)() {
        traced.add_peer(p).unwrap();
    }
    lockstep_quiesce(&mut plain, &mut traced, "toggle warmup");
    for (i, batch) in scenario.batches.iter().enumerate() {
        // off for even batches, on for odd ones.
        traced.set_tracing(i % 2 == 1);
        for (peer, op) in batch {
            apply_op(&mut plain, *peer, op);
            apply_op(&mut traced, *peer, op);
        }
        lockstep_quiesce(&mut plain, &mut traced, &format!("toggle batch {i}"));
        assert_same_state(&plain, &traced, &format!("toggle batch {i}"));
        if i % 2 == 1 {
            assert!(traced.trace().is_some_and(|a| a.event_count() > 0));
        }
    }
    // Off again: results collected so far remain queryable.
    traced.set_tracing(false);
    assert!(traced.trace().is_some());
}

/// The sharded runtime's traced tick agrees with its untraced twin, and
/// the coordinator records the scheduling time series.
#[test]
fn sharded_traced_equals_untraced() {
    let scenario = scenarios::publish_burst(21, 64, 5, 2, 2);
    let mut plain = ShardedRuntime::new(3);
    let mut traced = ShardedRuntime::new(3);
    for p in (scenario.build)() {
        plain.add_peer(p).unwrap();
    }
    for p in (scenario.build)() {
        traced.add_peer(p).unwrap();
    }
    traced.set_tracing(true);
    let mut rounds = 0usize;
    loop {
        let pt = plain.tick().unwrap();
        let tt = traced.tick().unwrap();
        assert_eq!(pt.changed, tt.changed, "changed @ round {rounds}");
        assert_eq!(pt.messages, tt.messages, "routed @ round {rounds}");
        assert_eq!(pt.peers_run, tt.peers_run, "peers_run @ round {rounds}");
        rounds += 1;
        assert!(rounds < MAX_ROUNDS, "no quiescence");
        if !pt.changed && pt.messages == 0 {
            break;
        }
    }
    for batch in &scenario.batches {
        for (peer, op) in batch {
            for rt in [&mut plain, &mut traced] {
                match op.clone() {
                    SimOp::Insert { rel, tuple } => {
                        rt.insert_local(*peer, rel, tuple).unwrap();
                    }
                    SimOp::Delete { rel, tuple } => {
                        rt.delete_local(*peer, rel, tuple).unwrap();
                    }
                }
            }
        }
        loop {
            let pt = plain.tick().unwrap();
            let tt = traced.tick().unwrap();
            assert_eq!(pt.changed, tt.changed);
            assert_eq!(pt.messages, tt.messages);
            assert_eq!(pt.peers_run, tt.peers_run);
            rounds += 1;
            assert!(rounds < 4 * MAX_ROUNDS, "no quiescence");
            if !pt.changed && pt.messages == 0 && pt.deferred == 0 {
                break;
            }
        }
    }
    let watch = scenario.watched[0];
    let mut a = plain.relation_facts(watch.0, watch.1).unwrap();
    let mut b = traced.relation_facts(watch.0, watch.1).unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b, "final hub state diverges under tracing");

    let agg = traced.trace().expect("tracing was enabled");
    assert!(agg.event_count() > 0);
    // Every coordinator tick contributes one ShardRound scheduling sample.
    assert_eq!(agg.rounds().len(), rounds, "one round sample per tick");
    assert!(
        agg.rounds().iter().all(|r| r.peers_total > 0),
        "ShardRound carries the fleet size"
    );
}
