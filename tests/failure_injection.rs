//! Failure injection: the engine must stay consistent when the network
//! drops messages. The in-memory transport's deterministic fault plan
//! (`drop_every_nth`) models lossy links.
//!
//! Known limitation, documented in DESIGN.md: like the demo system, the
//! engine does not retransmit — a dropped install/fact is lost until the
//! sender's diff changes again. These tests pin down what IS guaranteed:
//! no crashes, no phantom facts, and delivered state is a subset of the
//! lossless outcome.

use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::net::memory::{FaultPlan, InMemoryNetwork};
use webdamlog::net::node::PeerNode;
use webdamlog::parser::parse_rule;

fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

fn build_pair(
    net: &InMemoryNetwork,
    tag: &str,
    pics: usize,
) -> (
    PeerNode<impl webdamlog::net::Transport>,
    PeerNode<impl webdamlog::net::Transport>,
) {
    let viewer_name = format!("fiViewer{tag}");
    let source_name = format!("fiSource{tag}");
    let mut viewer = open_peer(&viewer_name);
    viewer
        .declare("view", 1, RelationKind::Intensional)
        .unwrap();
    viewer
        .add_rule(
            parse_rule(&format!(
                "view@{viewer_name}($id) :- pictures@{source_name}($id);"
            ))
            .unwrap(),
        )
        .unwrap();
    let mut source = open_peer(&source_name);
    for i in 0..pics {
        source
            .insert_local("pictures", vec![Value::from(i as i64)])
            .unwrap();
    }
    (
        PeerNode::new(viewer, net.endpoint(viewer_name.as_str())),
        PeerNode::new(source, net.endpoint(source_name.as_str())),
    )
}

/// Lossless reference: everything arrives.
#[test]
fn lossless_reference_delivers_all() {
    let net = InMemoryNetwork::new();
    let (mut viewer, mut source) = build_pair(&net, "ref", 10);
    for _ in 0..10 {
        viewer.step().unwrap();
        source.step().unwrap();
    }
    assert_eq!(viewer.peer().relation_facts("view").len(), 10);
}

/// With every 2nd message dropped, the system must not crash or invent
/// facts; whatever arrives is a subset of the reference.
#[test]
fn lossy_network_never_invents_facts() {
    let net = InMemoryNetwork::new();
    net.set_faults(FaultPlan {
        drop_every_nth: Some(2),
    });
    let (mut viewer, mut source) = build_pair(&net, "lossy", 10);
    for _ in 0..20 {
        viewer.step().unwrap();
        source.step().unwrap();
    }
    let got = viewer.peer().relation_facts("view");
    assert!(got.len() <= 10, "no phantom facts");
    for t in &got {
        let id = t[0].as_int().unwrap();
        assert!((0..10).contains(&id), "every delivered fact is genuine");
    }
    let (sent, delivered, dropped) = net.counters();
    assert_eq!(sent, delivered + dropped);
    assert!(dropped > 0, "the fault plan actually fired");
}

/// Fresh data after the faults are lifted still flows: the diff protocol
/// resumes from the sender's current state.
#[test]
fn recovery_after_faults_lift() {
    let net = InMemoryNetwork::new();
    net.set_faults(FaultPlan {
        drop_every_nth: Some(2),
    });
    let (mut viewer, mut source) = build_pair(&net, "rec", 4);
    for _ in 0..8 {
        viewer.step().unwrap();
        source.step().unwrap();
    }
    // Lift the faults; insert fresh facts — their diffs deliver.
    net.set_faults(FaultPlan::default());
    for i in 100..105 {
        source
            .peer_mut()
            .insert_local("pictures", vec![Value::from(i)])
            .unwrap();
    }
    for _ in 0..10 {
        viewer.step().unwrap();
        source.step().unwrap();
    }
    let got = viewer.peer().relation_facts("view");
    let fresh = got.iter().filter(|t| t[0].as_int().unwrap() >= 100).count();
    assert_eq!(fresh, 5, "post-fault traffic is complete");
}
