//! Failure injection: the engine must stay consistent when the network
//! misbehaves. Ported from the in-memory transport's single fault knob
//! onto the deterministic simulator (`wdl_net::sim`), so the same
//! drop-loss scenarios also run under reordering, duplication, delay and
//! crash/restart.
//!
//! ## The failure model, pinned
//!
//! Like the demo system, the engine does **not** retransmit: a dropped
//! install/fact is lost until the sender's diff changes again
//! (`no_retransmit_guarantee_is_pinned`). What IS guaranteed, and what
//! these tests pin down:
//!
//! * no crashes, no phantom facts — whatever arrives is a subset of the
//!   lossless outcome, under drops *and* under reordering/duplication;
//! * fresh traffic after faults lift flows completely (the diff protocol
//!   resumes from the sender's current state);
//! * a crash/restart round-trips the peer through the real snapshot
//!   path: durable state (facts, rules, delegations, grants) survives,
//!   transient diff memory dies, and the restarted peer re-sends its
//!   diffs from scratch — so a crash-safe *source* converges to the same
//!   state as one that never crashed (`crash_recovery_equivalence`).
//!   The asymmetry: a peer holding *received* remote contributions is
//!   not crash-safe, because nobody re-sends them (the crash analogue of
//!   the drop limitation above).

use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::net::sim::oracle::{check_conformance, RunSpec};
use webdamlog::net::sim::{FaultPlan, SimConfig, SimOp, SimRuntime};
use webdamlog::parser::parse_rule;
use wepic::scenarios;

fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

/// The classic pair: a source with `pics` pictures, a viewer whose rule
/// pulls their ids through a delegation.
fn build_pair(tag: &str, pics: usize) -> (Peer, Peer) {
    let viewer_name = format!("fiViewer{tag}");
    let source_name = format!("fiSource{tag}");
    let mut viewer = open_peer(&viewer_name);
    viewer
        .declare("view", 1, RelationKind::Intensional)
        .unwrap();
    viewer
        .add_rule(
            parse_rule(&format!(
                "view@{viewer_name}($id) :- pictures@{source_name}($id);"
            ))
            .unwrap(),
        )
        .unwrap();
    let mut source = open_peer(&source_name);
    for i in 0..pics {
        source
            .insert_local("pictures", vec![Value::from(i as i64)])
            .unwrap();
    }
    (viewer, source)
}

fn run_pair(tag: &str, pics: usize, seed: u64, plan: FaultPlan) -> (SimRuntime, Vec<i64>) {
    let (viewer, source) = build_pair(tag, pics);
    let vname = viewer.name();
    let mut sim = SimRuntime::new(SimConfig::new(seed).plan(plan));
    sim.add_peer(viewer).unwrap();
    sim.add_peer(source).unwrap();
    let r = sim.run_to_quiescence(100_000).unwrap();
    assert!(r.quiescent, "no quiescence: {r:?}");
    let mut ids: Vec<i64> = sim
        .relation_facts(vname, "view")
        .unwrap()
        .iter()
        .map(|t| t[0].as_int().unwrap())
        .collect();
    ids.sort_unstable();
    (sim, ids)
}

/// Lossless reference: everything arrives, even under heavy reordering
/// and duplication.
#[test]
fn lossless_reference_delivers_all() {
    let (_, ids) = run_pair("ref", 10, 1, FaultPlan::lossless());
    assert_eq!(ids, (0..10).collect::<Vec<i64>>());

    let adversarial = FaultPlan::lossless()
        .delay(10, 3_000)
        .duplicate(0.4)
        .reorder(0.5, 3_000);
    let (_, ids) = run_pair("ref2", 10, 2, adversarial);
    assert_eq!(ids, (0..10).collect::<Vec<i64>>(), "lossless ⇒ complete");
}

/// With messages dropped, the system must not crash or invent facts;
/// whatever arrives is a subset of the reference. Runs the drop-loss
/// scenario under plain drops AND under drops combined with reordering
/// and duplication.
#[test]
fn lossy_network_never_invents_facts() {
    // Deterministic drop: exact counting, loss guaranteed.
    let (sim, ids) = run_pair("lossy", 10, 3, FaultPlan::lossless().drop_every_nth(2));
    assert!(ids.len() <= 10, "no phantom facts");
    for id in &ids {
        assert!((0..10).contains(id), "every delivered fact is genuine");
    }
    let c = sim.net().counters();
    assert_eq!(c.sent + c.duplicated, c.delivered + c.dropped);
    assert!(c.dropped > 0, "the fault plan actually fired");

    // Probabilistic drops combined with reordering and duplication: the
    // diff protocol batches facts into few messages, so sweep a handful
    // of seeds — the subset property must hold on every one, and the
    // faults must actually fire on at least one.
    let mut any_dropped = false;
    for seed in 4..12u64 {
        let plan = FaultPlan::lossless()
            .drop(0.3)
            .duplicate(0.3)
            .reorder(0.5, 2_500)
            .delay(10, 2_000);
        let (sim, ids) = run_pair(&format!("lossyMix{seed}"), 10, seed, plan);
        assert!(ids.len() <= 10, "no phantom facts (seed {seed})");
        for id in &ids {
            assert!((0..10).contains(id), "genuine facts only (seed {seed})");
        }
        let c = sim.net().counters();
        assert_eq!(c.sent + c.duplicated, c.delivered + c.dropped);
        any_dropped |= c.dropped > 0;
    }
    assert!(any_dropped, "the probabilistic fault plan never fired");
}

/// Fresh data after the faults are lifted still flows — and what was
/// dropped before stays missing: the engine does not retransmit. This
/// pins the documented no-retransmit guarantee.
#[test]
fn no_retransmit_guarantee_is_pinned() {
    let (viewer, source) = build_pair("noRtx", 10);
    let vname = viewer.name();
    let sname = source.name();
    let mut sim = SimRuntime::new(
        SimConfig::new(7).plan(FaultPlan::lossless().drop_every_nth(2).delay(10, 1_500)),
    );
    sim.add_peer(viewer).unwrap();
    sim.add_peer(source).unwrap();
    let r = sim.run_to_quiescence(100_000).unwrap();
    assert!(r.quiescent);
    let after_loss: Vec<i64> = sim
        .relation_facts(vname, "view")
        .unwrap()
        .iter()
        .map(|t| t[0].as_int().unwrap())
        .collect();
    assert!(after_loss.len() < 10, "some facts were lost (dropped > 0)");

    // Lift the faults; give the system plenty of extra virtual time.
    sim.net().set_plan(FaultPlan::lossless());
    let r = sim.run_to_quiescence(100_000).unwrap();
    assert!(r.quiescent);
    assert_eq!(
        sim.relation_facts(vname, "view").unwrap().len(),
        after_loss.len(),
        "no retransmission: lost facts stay lost while diffs are unchanged"
    );

    // Fresh inserts produce fresh diffs, which deliver completely.
    let now = sim.net().now();
    for i in 100..105 {
        sim.schedule_op(
            now + 200,
            sname,
            SimOp::Insert {
                rel: webdamlog::datalog::Symbol::intern("pictures"),
                tuple: vec![Value::from(i)],
            },
        );
    }
    let r = sim.run_to_quiescence(100_000).unwrap();
    assert!(r.quiescent);
    let got: Vec<i64> = sim
        .relation_facts(vname, "view")
        .unwrap()
        .iter()
        .map(|t| t[0].as_int().unwrap())
        .collect();
    let fresh = got.iter().filter(|&&id| id >= 100).count();
    assert_eq!(fresh, 5, "post-fault traffic is complete");
}

/// Dropped partitions behave like drops (loss), buffered partitions like
/// delay (no loss): the same scenario under both partition modes.
#[test]
fn partition_modes_drop_vs_buffer() {
    let (_, buffered) = run_pair(
        "partBuf",
        8,
        11,
        FaultPlan::lossless().partition("fiViewerpartBuf", "fiSourcepartBuf", 0, 8_000),
    );
    assert_eq!(
        buffered,
        (0..8).collect::<Vec<i64>>(),
        "buffered ⇒ complete"
    );

    let (sim, dropped) = run_pair(
        "partDrop",
        8,
        11,
        FaultPlan::lossless()
            .partition("fiViewerpartDrop", "fiSourcepartDrop", 0, 8_000)
            .drop_partitions(),
    );
    assert!(dropped.len() < 8, "dropped partition loses the early diffs");
    assert!(sim.net().counters().dropped > 0);
}

/// Satellite: snapshot crash-recovery equivalence. A crash-safe source
/// killed mid-exchange and restored from its snapshot converges to
/// exactly the same state as a run where it never crashed — on the same
/// seed and fault plan.
#[test]
fn crash_recovery_equivalence() {
    for seed in 0..8u64 {
        let sc = scenarios::delegation_fanout(seed);
        let plan = FaultPlan::lossless().delay(20, 2_000).duplicate(0.15);

        let baseline = RunSpec::new(seed, plan.clone());
        let (state_no_crash, r1) = sc.run_sim(&baseline).unwrap();
        assert!(r1.quiescent);

        // Crash the first crash-safe attendee mid-exchange (while batches
        // are still being applied), restart 6ms later.
        let victim = sc.crashable[0];
        let crashed = RunSpec::new(seed, plan).crash(2_500, victim, Some(6_000));
        let (state_crash, r2) = sc.run_sim(&crashed).unwrap();
        assert!(r2.quiescent);

        assert_eq!(
            state_no_crash, state_crash,
            "seed {seed}: crash+snapshot-restore of {victim} changed the outcome"
        );

        // And both agree with the lossless reference (the oracle's
        // equality check, end to end).
        let v = check_conformance(&sc, &crashed).unwrap();
        assert!(v.checked_equality, "equality oracle must apply here");
    }
}
