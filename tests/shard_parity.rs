//! Lockstep parity: the sharded runtime is observationally identical to
//! the sequential reference, round for round.
//!
//! `ShardedRuntime` skips quiescent peers, runs shards on worker threads,
//! and merges routing coordinator-side — three opportunities to diverge
//! from `LocalRuntime::tick`. This suite drives both runtimes through the
//! same scripted scenarios and asserts, after every single round:
//!
//! * identical `changed` / routed / undeliverable counters,
//! * identical per-peer stage stats for every peer the sharded runtime
//!   ran (the `stage` counter is normalized: skipped peers don't bump it),
//! * identical message flow into every inbox — the reference peer's inbox
//!   versus the sharded runtime's pending queue, canonicalized (fact
//!   order *within* one payload comes from set differences and is not
//!   deterministic across separately built peers; the sequence of
//!   messages is),
//!
//! and, at quiescence, identical contents for every declared relation of
//! every peer. Scenarios span all wepic generators, seeds, shard counts
//! 1–8, mid-run peer add/remove churn, and finite-admission-budget runs
//! that must converge to the unbudgeted reference outcome.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::shard::ShardedRuntime;
use webdamlog::core::{Message, Payload, Peer};
use webdamlog::datalog::{Symbol, Tuple};
use webdamlog::net::sim::oracle::Scenario;
use webdamlog::net::sim::SimOp;
use wepic::scenarios;

const MAX_ROUNDS: usize = 64;

/// Canonical form of one message: payload fact order is sorted because
/// `HashSet::difference` order varies between separately built peers,
/// while ingestion is set-semantic and order-insensitive.
fn canon_msg(msg: &Message) -> String {
    match &msg.payload {
        Payload::Facts {
            kind,
            additions,
            retractions,
        } => {
            let mut adds: Vec<String> = additions.iter().map(|f| format!("{f:?}")).collect();
            adds.sort();
            let mut rets: Vec<String> = retractions.iter().map(|f| format!("{f:?}")).collect();
            rets.sort();
            format!("{}->{} {kind:?} +{adds:?} -{rets:?}", msg.from, msg.to)
        }
        other => format!("{}->{} {other:?}", msg.from, msg.to),
    }
}

fn apply_op(lr: &mut LocalRuntime, sh: &mut ShardedRuntime, peer: Symbol, op: &SimOp) {
    match op.clone() {
        SimOp::Insert { rel, tuple } => {
            lr.peer_mut(peer)
                .unwrap()
                .insert_local(rel, tuple.clone())
                .unwrap();
            sh.insert_local(peer, rel, tuple).unwrap();
        }
        SimOp::Delete { rel, tuple } => {
            lr.peer_mut(peer)
                .unwrap()
                .delete_local(rel, tuple.clone())
                .unwrap();
            sh.delete_local(peer, rel, tuple).unwrap();
        }
    }
}

/// Ticks both runtimes until the reference reaches a quiet round,
/// asserting observational parity after every round.
fn lockstep_quiesce(lr: &mut LocalRuntime, sh: &mut ShardedRuntime, ctx: &str) {
    for round in 0..MAX_ROUNDS {
        let lt = lr.tick().unwrap();
        let st = sh.tick().unwrap();
        assert_eq!(lt.changed, st.changed, "{ctx}: changed @ round {round}");
        assert_eq!(lt.messages, st.messages, "{ctx}: routed @ round {round}");
        assert_eq!(
            lt.undeliverable, st.undeliverable,
            "{ctx}: undeliverable @ round {round}"
        );
        assert_eq!(st.deferred, 0, "{ctx}: unlimited budget never defers");
        assert!(
            st.peers_run <= st.peers_total,
            "{ctx}: ran more peers than exist"
        );
        for (name, sharded_stats) in &st.stats {
            let mut reference = *lt
                .stats
                .get(name)
                .unwrap_or_else(|| panic!("{ctx}: sharded ran unknown peer {name}"));
            let mut sharded = *sharded_stats;
            // Skipped rounds don't advance a sharded peer's stage counter.
            reference.stage = 0;
            sharded.stage = 0;
            assert_eq!(
                reference, sharded,
                "{ctx}: stats diverge for {name} @ round {round}"
            );
        }
        for name in lr.peer_names() {
            let reference: Vec<String> = lr
                .peer(name)
                .unwrap()
                .inbox()
                .iter()
                .map(canon_msg)
                .collect();
            let sharded: Vec<String> = sh.pending_messages(name).iter().map(canon_msg).collect();
            assert_eq!(
                reference, sharded,
                "{ctx}: message flow into {name} diverges @ round {round}"
            );
        }
        if !lt.changed && lt.messages == 0 {
            return;
        }
    }
    panic!("{ctx}: no quiescence within {MAX_ROUNDS} rounds");
}

/// Every declared relation of every peer holds the same tuples.
fn assert_same_state(lr: &LocalRuntime, sh: &ShardedRuntime, ctx: &str) {
    assert_eq!(lr.peer_names(), sh.peer_names(), "{ctx}: peer sets diverge");
    for name in lr.peer_names() {
        let rels: Vec<Symbol> = lr
            .peer(name)
            .unwrap()
            .schema()
            .iter()
            .map(|decl| decl.rel)
            .collect();
        for rel in rels {
            let mut reference: Vec<Tuple> = lr.peer(name).unwrap().relation_facts(rel);
            let mut sharded = sh
                .relation_facts(name, rel)
                .unwrap_or_else(|| panic!("{ctx}: {name} missing from sharded runtime"));
            reference.sort();
            sharded.sort();
            assert_eq!(reference, sharded, "{ctx}: {name}.{rel} diverges");
        }
    }
}

fn run_parity(scenario: &Scenario, shards: usize) {
    let ctx = format!("{} [shards={shards}]", scenario.name);
    let mut lr = LocalRuntime::new();
    let mut sh = ShardedRuntime::new(shards);
    for p in (scenario.build)() {
        lr.add_peer(p).unwrap();
    }
    for p in (scenario.build)() {
        sh.add_peer(p).unwrap();
    }
    lockstep_quiesce(&mut lr, &mut sh, &ctx);
    for (i, batch) in scenario.batches.iter().enumerate() {
        for (peer, op) in batch {
            apply_op(&mut lr, &mut sh, *peer, op);
        }
        lockstep_quiesce(&mut lr, &mut sh, &format!("{ctx} batch {i}"));
        assert_same_state(&lr, &sh, &format!("{ctx} batch {i}"));
    }
}

type Generator = fn(u64) -> Scenario;

#[test]
fn parity_across_generators_seeds_and_shard_counts() {
    let generators: Vec<(&str, Generator)> = vec![
        ("fanout", scenarios::delegation_fanout),
        ("churn", scenarios::delegation_churn),
        ("acl", scenarios::acl_restricted),
        ("transfer", scenarios::transfer_dispatch),
        ("publish", scenarios::publish_chain),
    ];
    let mut rng = StdRng::seed_from_u64(0x5AD5_ED01);
    for seed in 1..=3u64 {
        for (name, gen) in &generators {
            let shards = rng.gen_range(1..=8usize);
            let scenario = gen(seed);
            eprintln!("parity: {name} seed={seed} shards={shards}");
            run_parity(&scenario, shards);
        }
    }
}

#[test]
fn parity_on_scaled_burst_workload() {
    // The e14 macro-workload shape at test size: many registered peers,
    // few publishers. Exercises skip-scheduling hard — most peers are
    // quiescent from round one.
    for shards in [1, 3, 8] {
        let scenario = scenarios::publish_burst(21, 64, 5, 2, 2);
        run_parity(&scenario, shards);
    }
}

/// A lean publisher peer for churn tests, built identically for both
/// runtimes.
fn burst_publisher(name: &str, hub: &str) -> Peer {
    use webdamlog::core::acl::UntrustedPolicy;
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p.add_rule(wepic::rules::publish_to_sigmod(name, hub).unwrap())
        .unwrap();
    p
}

#[test]
fn parity_with_midrun_peer_churn() {
    let scenario = scenarios::publish_burst(33, 40, 4, 2, 2);
    let ctx = "midrun-churn";
    let mut lr = LocalRuntime::new();
    let mut sh = ShardedRuntime::new(3);
    for p in (scenario.build)() {
        lr.add_peer(p).unwrap();
    }
    for p in (scenario.build)() {
        sh.add_peer(p).unwrap();
    }
    lockstep_quiesce(&mut lr, &mut sh, ctx);

    // Batch 0, then churn: a new publisher joins (with a picture already
    // uploaded), and an idle registered peer leaves — in both runtimes.
    for (peer, op) in &scenario.batches[0] {
        apply_op(&mut lr, &mut sh, *peer, op);
    }
    lockstep_quiesce(&mut lr, &mut sh, ctx);

    let mut corpus = wepic::PictureCorpus::new(77);
    let pics = corpus.pictures("lateJoiner", 2, 8);
    let build_late = || {
        let mut p = burst_publisher("lateJoiner", "burstHub");
        for pic in &pics {
            p.insert_local(
                "pictures",
                vec![
                    webdamlog::datalog::Value::from(pic.id),
                    webdamlog::datalog::Value::from(pic.name.as_str()),
                    webdamlog::datalog::Value::from(pic.owner.as_str()),
                    webdamlog::datalog::Value::bytes(&pic.data),
                ],
            )
            .unwrap();
        }
        p
    };
    lr.add_peer(build_late()).unwrap();
    sh.add_peer(build_late()).unwrap();
    let gone = lr.remove_peer("burstAtt1").unwrap();
    let gone_sh = sh.remove_peer("burstAtt1").unwrap();
    assert_eq!(gone.name(), gone_sh.name());
    lockstep_quiesce(&mut lr, &mut sh, ctx);
    assert_same_state(&lr, &sh, ctx);

    // The removed name is reusable in both, and batch 1 still agrees.
    lr.add_peer(burst_publisher("burstAtt1", "burstHub"))
        .unwrap();
    sh.add_peer(burst_publisher("burstAtt1", "burstHub"))
        .unwrap();
    for (peer, op) in &scenario.batches[1] {
        apply_op(&mut lr, &mut sh, *peer, op);
    }
    lockstep_quiesce(&mut lr, &mut sh, ctx);
    assert_same_state(&lr, &sh, ctx);

    // The late joiner's pre-loaded pictures reached the hub.
    let hub_pics = sh.relation_facts("burstHub", "pictures").unwrap();
    assert!(
        hub_pics
            .iter()
            .any(|t| t[2] == webdamlog::datalog::Value::from("lateJoiner")),
        "late joiner's uploads must reach the registry"
    );
}

/// A finite per-round inbox budget slows the hub down but must converge
/// to the exact unbudgeted outcome, with the carry visible as `deferred`.
#[test]
fn admission_budget_converges_to_reference() {
    let scenario = scenarios::publish_burst(9, 48, 6, 2, 2);
    let reference = scenario.reference().unwrap();
    let watch = scenario.watched[0];

    let mut sh = ShardedRuntime::new(4);
    sh.set_inbox_budget(1);
    for p in (scenario.build)() {
        sh.add_peer(p).unwrap();
    }
    let mut saw_deferred = false;
    let mut budget_rounds = 0usize;
    let quiesce = |sh: &mut ShardedRuntime, saw: &mut bool, rounds: &mut usize| loop {
        let tick = sh.tick().unwrap();
        *saw |= tick.deferred > 0;
        *rounds += 1;
        assert!(*rounds < 512, "budgeted run did not converge");
        if !tick.changed && tick.messages == 0 && tick.deferred == 0 {
            break;
        }
    };
    quiesce(&mut sh, &mut saw_deferred, &mut budget_rounds);
    for batch in &scenario.batches {
        for (peer, op) in batch {
            match op.clone() {
                SimOp::Insert { rel, tuple } => {
                    sh.insert_local(*peer, rel, tuple).unwrap();
                }
                SimOp::Delete { rel, tuple } => {
                    sh.delete_local(*peer, rel, tuple).unwrap();
                }
            }
        }
        quiesce(&mut sh, &mut saw_deferred, &mut budget_rounds);
    }
    assert!(saw_deferred, "budget 1 over a 6-way fan-in must defer");

    let final_state: std::collections::BTreeSet<Tuple> = sh
        .relation_facts(watch.0, watch.1)
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(
        final_state, reference.final_state[&watch],
        "budgeted run must reach the reference fixpoint"
    );
}
