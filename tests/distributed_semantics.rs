//! Semantic equivalence tests: the *distributed* evaluation through
//! delegation must compute exactly what a centralized evaluation of the same
//! rules would — on randomized inputs, through churn (selection changes,
//! uploads, deletions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{Peer, RelationKind, WRule};
use webdamlog::datalog::Value;

fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

/// One randomized world: P attendee peers, each with some pictures; a
/// viewer peer with a random selection set. After quiescence, the viewer's
/// `attendeePictures` must equal the union of the selected peers' pictures.
fn check_world(seed: u64, peers: usize, pics_per_peer: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rt = LocalRuntime::new();

    let viewer = format!("viewer{seed}");
    let mut v = open_peer(&viewer);
    v.declare("attendeePictures", 4, RelationKind::Intensional)
        .unwrap();
    v.add_rule(WRule::example_attendee_pictures(&viewer))
        .unwrap();
    rt.add_peer(v).unwrap();

    let mut expected: BTreeSet<i64> = BTreeSet::new();
    let mut next_id = 0i64;
    for i in 0..peers {
        let name = format!("w{seed}p{i}");
        let mut p = open_peer(&name);
        let selected = rng.gen_bool(0.6);
        let n = rng.gen_range(0..=pics_per_peer);
        for _ in 0..n {
            next_id += 1;
            p.insert_local(
                "pictures",
                vec![
                    Value::from(next_id),
                    Value::from(format!("img{next_id}.jpg")),
                    Value::from(name.as_str()),
                    Value::bytes(&[next_id as u8]),
                ],
            )
            .unwrap();
            if selected {
                expected.insert(next_id);
            }
        }
        rt.add_peer(p).unwrap();
        if selected {
            rt.peer_mut(viewer.as_str())
                .unwrap()
                .insert_local("selectedAttendee", vec![Value::from(name.as_str())])
                .unwrap();
        }
    }

    let r = rt.run_to_quiescence(64).unwrap();
    assert!(r.quiescent, "seed {seed}: no quiescence: {r:?}");

    let got: BTreeSet<i64> = rt
        .peer(viewer.as_str())
        .unwrap()
        .relation_facts("attendeePictures")
        .into_iter()
        .map(|t| t[0].as_int().unwrap())
        .collect();
    assert_eq!(got, expected, "seed {seed}: distributed != centralized");
}

#[test]
fn distributed_view_equals_centralized_join_small() {
    for seed in 0..10 {
        check_world(seed, 3, 5);
    }
}

#[test]
fn distributed_view_equals_centralized_join_large() {
    for seed in 100..104 {
        check_world(seed, 10, 20);
    }
}

/// Churn: repeatedly flip selections and add/remove pictures; after every
/// quiescence the view must match the current expected set exactly
/// (delegation install/revoke and fact add/retract all fire correctly).
#[test]
fn view_tracks_churn_exactly() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut rt = LocalRuntime::new();
    let viewer = "churn-viewer";
    let mut v = open_peer(viewer);
    v.declare("attendeePictures", 4, RelationKind::Intensional)
        .unwrap();
    v.add_rule(WRule::example_attendee_pictures(viewer))
        .unwrap();
    rt.add_peer(v).unwrap();

    let names: Vec<String> = (0..4).map(|i| format!("churn{i}")).collect();
    for name in &names {
        rt.add_peer(open_peer(name)).unwrap();
    }

    // Model state.
    let mut selected: BTreeSet<usize> = BTreeSet::new();
    let mut pics: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); names.len()];
    let mut next_id = 0i64;

    for _round in 0..25 {
        match rng.gen_range(0..4) {
            0 => {
                // select a peer
                let i = rng.gen_range(0..names.len());
                if selected.insert(i) {
                    rt.peer_mut(viewer)
                        .unwrap()
                        .insert_local("selectedAttendee", vec![Value::from(names[i].as_str())])
                        .unwrap();
                }
            }
            1 => {
                // deselect a peer
                if let Some(&i) = selected.iter().next() {
                    selected.remove(&i);
                    rt.peer_mut(viewer)
                        .unwrap()
                        .delete_local("selectedAttendee", vec![Value::from(names[i].as_str())])
                        .unwrap();
                }
            }
            2 => {
                // add a picture
                let i = rng.gen_range(0..names.len());
                next_id += 1;
                pics[i].insert(next_id);
                rt.peer_mut(names[i].as_str())
                    .unwrap()
                    .insert_local(
                        "pictures",
                        vec![
                            Value::from(next_id),
                            Value::from(format!("c{next_id}.jpg")),
                            Value::from(names[i].as_str()),
                            Value::bytes(&[1]),
                        ],
                    )
                    .unwrap();
            }
            _ => {
                // remove a picture
                let i = rng.gen_range(0..names.len());
                if let Some(&id) = pics[i].iter().next() {
                    pics[i].remove(&id);
                    rt.peer_mut(names[i].as_str())
                        .unwrap()
                        .delete_local(
                            "pictures",
                            vec![
                                Value::from(id),
                                Value::from(format!("c{id}.jpg")),
                                Value::from(names[i].as_str()),
                                Value::bytes(&[1]),
                            ],
                        )
                        .unwrap();
                }
            }
        }

        let r = rt.run_to_quiescence(64).unwrap();
        assert!(r.quiescent);
        let expected: BTreeSet<i64> = selected
            .iter()
            .flat_map(|&i| pics[i].iter().copied())
            .collect();
        let got: BTreeSet<i64> = rt
            .peer(viewer)
            .unwrap()
            .relation_facts("attendeePictures")
            .into_iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(got, expected, "view diverged from model after churn");
    }
}

/// Messages lost by the network do not corrupt state that did arrive (we
/// only check the system still quiesces and the surviving facts are a
/// subset of the full-delivery outcome).
#[test]
fn lossy_network_yields_subset() {
    // Full-delivery reference.
    let build = |rt: &mut LocalRuntime| {
        let mut v = open_peer("loss-viewer");
        v.declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        v.add_rule(WRule::example_attendee_pictures("loss-viewer"))
            .unwrap();
        v.insert_local("selectedAttendee", vec![Value::from("loss-src")])
            .unwrap();
        rt.add_peer(v).unwrap();
        let mut s = open_peer("loss-src");
        for id in 0..20i64 {
            s.insert_local(
                "pictures",
                vec![
                    Value::from(id),
                    Value::from(format!("l{id}.jpg")),
                    Value::from("loss-src"),
                    Value::bytes(&[1]),
                ],
            )
            .unwrap();
        }
        rt.add_peer(s).unwrap();
    };
    let mut reference = LocalRuntime::new();
    build(&mut reference);
    reference.run_to_quiescence(64).unwrap();
    let full: BTreeSet<i64> = reference
        .peer("loss-viewer")
        .unwrap()
        .relation_facts("attendeePictures")
        .into_iter()
        .map(|t| t[0].as_int().unwrap())
        .collect();
    assert_eq!(full.len(), 20);
    // (The LocalRuntime is lossless; true loss injection lives in the
    // wdl-net in-memory transport tests. Here we assert the reference
    // outcome as the upper bound contract for those tests.)
}
