//! Property-based round-trip tests: AST → surface syntax → AST, and
//! AST → wire bytes → AST.

use proptest::prelude::*;
use webdamlog::core::{
    Delegation, FactKind, Message, NameTerm, Payload, WAtom, WBodyItem, WFact, WLiteral, WRule,
};
use webdamlog::datalog::{BinOp, CmpOp, Expr, Symbol, Term, Value};
use webdamlog::net::codec;
use webdamlog::parser::{self, pretty};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,8}".prop_map(|s| s)
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        // Strings exercise escaping: printable ASCII, quotes, backslashes,
        // newlines, some unicode.
        "[ -~éλ\\n\\t\"\\\\]{0,12}".prop_map(|s| Value::str(&s)),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(|b| Value::bytes(&b)),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        ident().prop_map(|v| Term::var(v.as_str())),
        value().prop_map(Term::Const),
    ]
}

fn name_term() -> impl Strategy<Value = NameTerm> {
    prop_oneof![
        ident().prop_map(|s| NameTerm::name(s.as_str())),
        ident().prop_map(|s| NameTerm::var(s.as_str())),
    ]
}

fn atom() -> impl Strategy<Value = WAtom> {
    (
        name_term(),
        name_term(),
        prop::collection::vec(term(), 0..4),
    )
        .prop_map(|(rel, peer, args)| WAtom::new(rel, peer, args))
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Concat),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = term().prop_map(Expr::Term);
    leaf.prop_recursive(3, 12, 2, |inner| {
        (bin_op(), inner.clone(), inner).prop_map(|(op, l, r)| Expr::bin(op, l, r))
    })
}

fn body_item() -> impl Strategy<Value = WBodyItem> {
    prop_oneof![
        atom().prop_map(WBodyItem::atom),
        atom().prop_map(WBodyItem::not_atom),
        (cmp_op(), term(), term()).prop_map(|(op, lhs, rhs)| WBodyItem::cmp(op, lhs, rhs)),
        (ident(), expr()).prop_map(|(v, e)| WBodyItem::assign(v.as_str(), e)),
    ]
}

fn rule() -> impl Strategy<Value = WRule> {
    (atom(), prop::collection::vec(body_item(), 1..5))
        .prop_map(|(head, body)| WRule::new(head, body))
}

fn wfact() -> impl Strategy<Value = WFact> {
    (ident(), ident(), prop::collection::vec(value(), 0..5))
        .prop_map(|(rel, peer, vals)| WFact::new(rel.as_str(), peer.as_str(), vals))
}

fn payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        (
            prop_oneof![Just(FactKind::Persistent), Just(FactKind::Derived)],
            prop::collection::vec(wfact(), 0..4),
            prop::collection::vec(wfact(), 0..4),
        )
            .prop_map(|(kind, additions, retractions)| Payload::Facts {
                kind,
                additions,
                retractions
            }),
        prop::collection::vec((ident(), ident(), rule()), 0..3).prop_map(|ds| {
            Payload::Delegate(
                ds.into_iter()
                    .map(|(o, t, r)| Delegation::new(Symbol::intern(&o), Symbol::intern(&t), r))
                    .collect(),
            )
        }),
        prop::collection::vec((ident(), ident(), rule()), 0..4).prop_map(|ds| {
            Payload::Revoke(
                ds.into_iter()
                    .map(|(o, t, r)| Delegation::new(Symbol::intern(&o), Symbol::intern(&t), r).id)
                    .collect(),
            )
        }),
    ]
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pretty → parse is the identity on rules.
    #[test]
    fn rule_pretty_parse_round_trip(r in rule()) {
        let printed = pretty::rule(&r);
        let parsed = parser::parse_rule(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(parsed, r);
    }

    /// pretty → parse is the identity on facts.
    #[test]
    fn fact_pretty_parse_round_trip(f in wfact()) {
        let printed = pretty::fact(&f);
        let parsed = parser::parse_fact(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(parsed, f);
    }

    /// encode → decode is the identity on messages.
    #[test]
    fn codec_round_trip(from in ident(), to in ident(), p in payload()) {
        let msg = Message::new(Symbol::intern(&from), Symbol::intern(&to), p);
        let bytes = codec::encode(&msg);
        let back = codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&bytes);
    }

    /// Truncating a valid frame always errors, never panics or succeeds
    /// with wrong data.
    #[test]
    fn truncation_always_detected(f in wfact(), cut_frac in 0.0f64..1.0) {
        let msg = Message::new(
            Symbol::intern("a"),
            Symbol::intern("b"),
            Payload::Facts { kind: FactKind::Derived, additions: vec![f], retractions: vec![] },
        );
        let bytes = codec::encode(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(codec::decode(&bytes[..cut]).is_err());
        }
    }
}

/// Literal display forms are parseable too (negated atoms).
#[test]
fn negated_literal_round_trips() {
    let lit = WLiteral::neg(WAtom::at("blocked", "me", vec![Term::cst(1)]));
    let rule = WRule::new(
        WAtom::at("out", "me", vec![]),
        vec![
            WAtom::at("in", "me", vec![Term::cst(1)]).into(),
            WBodyItem::Literal(lit),
        ],
    );
    let printed = pretty::rule(&rule);
    assert_eq!(parser::parse_rule(&printed).unwrap(), rule);
}
