//! Property-based round-trip tests: AST → surface syntax → AST, and
//! AST → wire bytes → AST.
//!
//! Hand-rolled generators over a seeded PRNG (the offline environment has
//! no `proptest`): each case is deterministic and replayable by seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webdamlog::core::{
    Delegation, FactKind, Message, NameTerm, Payload, WAtom, WBodyItem, WFact, WLiteral, WRule,
};
use webdamlog::datalog::{BinOp, CmpOp, Expr, Symbol, Term, Value};
use webdamlog::net::codec;
use webdamlog::parser::{self, pretty};

const CASES: u64 = 128;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Lowercase identifier: `[a-z][a-zA-Z0-9_]{0,8}`.
fn ident(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    let mut s = String::new();
    s.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..rng.gen_range(0..=8usize) {
        s.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    s
}

/// Strings exercising escaping: printable ASCII, quotes, backslashes,
/// newlines, some unicode.
fn tricky_string(rng: &mut StdRng) -> String {
    let mut s = String::new();
    for _ in 0..rng.gen_range(0..=12usize) {
        let c = match rng.gen_range(0..8u32) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '\t',
            4 => 'é',
            5 => 'λ',
            _ => char::from(rng.gen_range(0x20..0x7fu8)),
        };
        s.push(c);
    }
    s
}

fn value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4u32) {
        0 => Value::Int(rng.gen::<i64>()),
        1 => Value::Bool(rng.gen::<bool>()),
        2 => Value::str(&tricky_string(rng)),
        _ => {
            let n = rng.gen_range(0..16usize);
            let mut b = vec![0u8; n];
            rng.fill(&mut b[..]);
            Value::bytes(&b)
        }
    }
}

fn term(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.5) {
        Term::var(ident(rng).as_str())
    } else {
        Term::Const(value(rng))
    }
}

fn name_term(rng: &mut StdRng) -> NameTerm {
    if rng.gen_bool(0.5) {
        NameTerm::name(ident(rng).as_str())
    } else {
        NameTerm::var(ident(rng).as_str())
    }
}

fn atom(rng: &mut StdRng) -> WAtom {
    let rel = name_term(rng);
    let peer = name_term(rng);
    let args = (0..rng.gen_range(0..4usize)).map(|_| term(rng)).collect();
    WAtom::new(rel, peer, args)
}

fn cmp_op(rng: &mut StdRng) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.gen_range(0..6usize)]
}

fn bin_op(rng: &mut StdRng) -> BinOp {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Concat,
    ][rng.gen_range(0..6usize)]
}

fn expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        Expr::Term(term(rng))
    } else {
        Expr::bin(bin_op(rng), expr(rng, depth - 1), expr(rng, depth - 1))
    }
}

fn body_item(rng: &mut StdRng) -> WBodyItem {
    match rng.gen_range(0..4u32) {
        0 => WBodyItem::atom(atom(rng)),
        1 => WBodyItem::not_atom(atom(rng)),
        2 => WBodyItem::cmp(cmp_op(rng), term(rng), term(rng)),
        _ => WBodyItem::assign(ident(rng).as_str(), expr(rng, 3)),
    }
}

fn rule(rng: &mut StdRng) -> WRule {
    let head = atom(rng);
    let body = (0..rng.gen_range(1..5usize))
        .map(|_| body_item(rng))
        .collect();
    WRule::new(head, body)
}

fn wfact(rng: &mut StdRng) -> WFact {
    let rel = ident(rng);
    let peer = ident(rng);
    let vals: Vec<Value> = (0..rng.gen_range(0..5usize)).map(|_| value(rng)).collect();
    WFact::new(rel.as_str(), peer.as_str(), vals)
}

fn payload(rng: &mut StdRng) -> Payload {
    match rng.gen_range(0..3u32) {
        0 => {
            let kind = if rng.gen_bool(0.5) {
                FactKind::Persistent
            } else {
                FactKind::Derived
            };
            let additions = (0..rng.gen_range(0..4usize)).map(|_| wfact(rng)).collect();
            let retractions = (0..rng.gen_range(0..4usize)).map(|_| wfact(rng)).collect();
            Payload::Facts {
                kind,
                additions,
                retractions,
            }
        }
        1 => Payload::Delegate(
            (0..rng.gen_range(0..3usize))
                .map(|_| {
                    let o = ident(rng);
                    let t = ident(rng);
                    Delegation::new(Symbol::intern(&o), Symbol::intern(&t), rule(rng))
                })
                .collect(),
        ),
        _ => Payload::Revoke(
            (0..rng.gen_range(0..4usize))
                .map(|_| {
                    let o = ident(rng);
                    let t = ident(rng);
                    Delegation::new(Symbol::intern(&o), Symbol::intern(&t), rule(rng)).id
                })
                .collect(),
        ),
    }
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

/// pretty → parse is the identity on rules.
#[test]
fn rule_pretty_parse_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_0001 + case);
        let r = rule(&mut rng);
        let printed = pretty::rule(&r);
        let parsed = parser::parse_rule(&printed)
            .unwrap_or_else(|e| panic!("case {case}: failed to reparse {printed:?}: {e}"));
        assert_eq!(parsed, r, "case {case}");
    }
}

/// pretty → parse is the identity on facts.
#[test]
fn fact_pretty_parse_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_0002 + case);
        let f = wfact(&mut rng);
        let printed = pretty::fact(&f);
        let parsed = parser::parse_fact(&printed)
            .unwrap_or_else(|e| panic!("case {case}: failed to reparse {printed:?}: {e}"));
        assert_eq!(parsed, f, "case {case}");
    }
}

/// encode → decode is the identity on messages.
#[test]
fn codec_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_0003 + case);
        let from = ident(&mut rng);
        let to = ident(&mut rng);
        let p = payload(&mut rng);
        let msg = Message::new(Symbol::intern(&from), Symbol::intern(&to), p);
        let bytes = codec::encode(&msg);
        let back = codec::decode(&bytes).unwrap();
        assert_eq!(back, msg, "case {case}");
    }
}

/// Decoding arbitrary bytes never panics (it may error).
#[test]
fn decoder_is_total() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_0004 + case);
        let n = rng.gen_range(0..256usize);
        let mut bytes = vec![0u8; n];
        rng.fill(&mut bytes[..]);
        let _ = codec::decode(&bytes);
    }
}

/// Truncating a valid frame always errors, never panics or succeeds
/// with wrong data.
#[test]
fn truncation_always_detected() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_0005 + case);
        let f = wfact(&mut rng);
        let cut_frac: f64 = rng.gen();
        let msg = Message::new(
            Symbol::intern("a"),
            Symbol::intern("b"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![f],
                retractions: vec![],
            },
        );
        let bytes = codec::encode(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            assert!(codec::decode(&bytes[..cut]).is_err(), "case {case}");
        }
    }
}

/// Literal display forms are parseable too (negated atoms).
#[test]
fn negated_literal_round_trips() {
    let lit = WLiteral::neg(WAtom::at("blocked", "me", vec![Term::cst(1)]));
    let rule = WRule::new(
        WAtom::at("out", "me", vec![]),
        vec![
            WAtom::at("in", "me", vec![Term::cst(1)]).into(),
            WBodyItem::Literal(lit),
        ],
    );
    let printed = pretty::rule(&rule);
    assert_eq!(parser::parse_rule(&printed).unwrap(), rule);
}
