//! Seeded property suite for the reliable session layer.
//!
//! Each property drives a pair of [`SessionEndpoint`]s over a scripted
//! lossy wire whose faults (drop / duplicate / reorder) are a pure
//! function of the seed, with a manual clock for timer determinism. On a
//! failure the seed reproduces the run:
//!
//! ```text
//! WDL_SIM_SEED=1234 cargo test --test session_properties <name>
//! ```
//!
//! (`WDL_SIM_SEEDS=lo..hi` widens a sweep, same as `sim_conformance`.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use webdamlog::core::{FactKind, Message, Payload, WFact};
use webdamlog::datalog::{Symbol, Value};
use webdamlog::net::session::{Clock, SessionConfig, SessionEndpoint};
use webdamlog::net::{NetError, Transport, TransportEvent};

// ---------------------------------------------------------------------
// Harness: a scripted lossy wire + manual clock
// ---------------------------------------------------------------------

fn seed_range(default: Range<u64>) -> Range<u64> {
    if let Ok(v) = std::env::var("WDL_SIM_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n..n + 1;
        }
    }
    if let Ok(v) = std::env::var("WDL_SIM_SEEDS") {
        if let Some((lo, hi)) = v.trim().split_once("..") {
            if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                return lo..hi;
            }
        }
    }
    default
}

struct WireState {
    rng: StdRng,
    drop: f64,
    dup: f64,
    reorder: f64,
    inboxes: HashMap<Symbol, VecDeque<Message>>,
}

/// One peer's handle on the shared wire.
struct LossyEnd {
    name: Symbol,
    state: Arc<Mutex<WireState>>,
}

fn wire(seed: u64, drop: f64, dup: f64, reorder: f64) -> Arc<Mutex<WireState>> {
    Arc::new(Mutex::new(WireState {
        rng: StdRng::seed_from_u64(seed ^ 0x1055_713E_u64),
        drop,
        dup,
        reorder,
        inboxes: HashMap::new(),
    }))
}

fn end(name: &str, state: &Arc<Mutex<WireState>>) -> LossyEnd {
    LossyEnd {
        name: Symbol::intern(name),
        state: Arc::clone(state),
    }
}

impl Transport for LossyEnd {
    fn peer_name(&self) -> Symbol {
        self.name
    }

    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        let mut st = self.state.lock().unwrap();
        let WireState {
            rng,
            drop,
            dup,
            reorder,
            inboxes,
        } = &mut *st;
        if *drop > 0.0 && rng.gen_bool(*drop) {
            return Ok(()); // lost in flight; the session layer's problem
        }
        let copies = if *dup > 0.0 && rng.gen_bool(*dup) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let inbox = inboxes.entry(msg.to).or_default();
            if *reorder > 0.0 && !inbox.is_empty() && rng.gen_bool(*reorder) {
                let pos = rng.gen_range(0..inbox.len());
                inbox.insert(pos, msg.clone());
            } else {
                inbox.push_back(msg.clone());
            }
        }
        Ok(())
    }

    fn drain(&mut self) -> Vec<Message> {
        let mut st = self.state.lock().unwrap();
        st.inboxes
            .get_mut(&self.name)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }
}

struct TestClock(Arc<AtomicU64>);

impl Clock for TestClock {
    fn now_micros(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

type Sessioned = SessionEndpoint<LossyEnd>;

fn session(
    ep: LossyEnd,
    incarnation: u64,
    seed: u64,
    clock: &Arc<AtomicU64>,
    max_unacked: usize,
) -> Sessioned {
    let cfg = SessionConfig {
        seed,
        max_unacked,
        ..SessionConfig::default()
    };
    SessionEndpoint::with_clock(ep, incarnation, cfg, Box::new(TestClock(Arc::clone(clock))))
}

fn fact_msg(from: &str, to: &str, kind: FactKind, v: i64) -> Message {
    Message::new(
        Symbol::intern(from),
        Symbol::intern(to),
        Payload::Facts {
            kind,
            additions: vec![WFact::new("r", to, vec![Value::from(v)])],
            retractions: vec![],
        },
    )
}

fn payload_value(m: &Message) -> i64 {
    match &m.payload {
        Payload::Facts { additions, .. } => match additions[0].tuple[0] {
            Value::Int(i) => i,
            _ => panic!("unexpected tuple value"),
        },
        p => panic!("session frame leaked to the application: {p:?}"),
    }
}

/// One scheduler tick: both sides drain (delivering + acking +
/// retransmitting), commit, and the clock advances. Returns `b`'s
/// delivered app messages. `wm` accumulates `b`'s durable watermark notes
/// exactly the way a `PeerNode` + store would.
fn tick(
    a: &mut Sessioned,
    b: &mut Sessioned,
    clock: &Arc<AtomicU64>,
    got: &mut Vec<Message>,
    wm: &mut BTreeMap<(Symbol, u8), (u64, u64)>,
) {
    got.extend(b.drain());
    for note in b.watermarks() {
        let e = wm.entry((note.remote, note.dir)).or_insert((0, 0));
        if (note.inc, note.seq) > *e {
            *e = (note.inc, note.seq);
        }
    }
    b.commit_delivered();
    let leaked = a.drain();
    assert!(
        leaked.is_empty(),
        "acks surfaced as app messages: {leaked:?}"
    );
    a.commit_delivered();
    clock.fetch_add(1_500, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

/// Under seeded drop + duplication + reordering, the application sees
/// every message exactly once, in send order, and the link fully drains.
#[test]
fn exactly_once_in_order_under_seeded_chaos() {
    for seed in seed_range(0..40) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A05);
        let drop = rng.gen::<f64>() * 0.45;
        let dup = rng.gen::<f64>() * 0.45;
        let reorder = rng.gen::<f64>() * 0.8;
        let st = wire(seed, drop, dup, reorder);
        let clock = Arc::new(AtomicU64::new(0));
        let mut a = session(end("pa", &st), 0, seed, &clock, 1024);
        let mut b = session(end("pb", &st), 0, seed, &clock, 1024);

        let total = 40i64;
        let mut sent = 0i64;
        let mut got = Vec::new();
        let mut wm = BTreeMap::new();
        for round in 0..4_000 {
            // Interleave sends with delivery so chaos hits live traffic.
            if sent < total && round % 3 == 0 {
                for _ in 0..4 {
                    if sent < total {
                        a.send(fact_msg("pa", "pb", FactKind::Persistent, sent))
                            .unwrap();
                        sent += 1;
                    }
                }
            }
            tick(&mut a, &mut b, &clock, &mut got, &mut wm);
            if sent == total
                && got.len() == total as usize
                && a.pending_work() == 0
                && b.pending_work() == 0
            {
                break;
            }
        }
        let values: Vec<i64> = got.iter().map(payload_value).collect();
        let expect: Vec<i64> = (0..total).collect();
        assert_eq!(
            values, expect,
            "seed {seed} (drop {drop:.2} dup {dup:.2} reorder {reorder:.2}): \
             reproduce: WDL_SIM_SEED={seed} cargo test --test session_properties \
             exactly_once_in_order_under_seeded_chaos"
        );
        assert_eq!(a.pending_work(), 0, "seed {seed}: sender did not drain");
        assert_eq!(b.pending_work(), 0, "seed {seed}: receiver did not drain");
    }
}

/// Retransmission is bounded by backoff: lossy links converge with a
/// sane retransmit count, and a quiesced link stops retransmitting.
#[test]
fn retransmissions_are_bounded_and_stop_at_quiescence() {
    for seed in seed_range(50..70) {
        let st = wire(seed, 0.5, 0.0, 0.0);
        let clock = Arc::new(AtomicU64::new(0));
        let mut a = session(end("ba", &st), 0, seed, &clock, 1024);
        let mut b = session(end("bb", &st), 0, seed, &clock, 1024);
        let total = 20i64;
        for v in 0..total {
            a.send(fact_msg("ba", "bb", FactKind::Persistent, v))
                .unwrap();
        }
        let mut got = Vec::new();
        let mut wm = BTreeMap::new();
        for _ in 0..4_000 {
            tick(&mut a, &mut b, &clock, &mut got, &mut wm);
            if got.len() == total as usize && a.pending_work() == 0 && b.pending_work() == 0 {
                break;
            }
        }
        assert_eq!(got.len() as i64, total, "seed {seed}: convergence");
        let after_converge = a.stats().retransmits;
        assert!(
            after_converge > 0,
            "seed {seed}: a 50% lossy link must retransmit"
        );
        assert!(
            after_converge <= (total as u64) * 40,
            "seed {seed}: retransmit count {after_converge} exploded past backoff bounds"
        );
        // A fully acked link is silent: no retransmission without traffic.
        for _ in 0..100 {
            tick(&mut a, &mut b, &clock, &mut got, &mut wm);
        }
        assert_eq!(
            a.stats().retransmits,
            after_converge,
            "seed {seed}: quiesced link kept retransmitting"
        );
    }
}

/// Aggressive duplication never suppresses a fresh frame: dedup drops
/// only true duplicates.
#[test]
fn dedup_never_drops_fresh_frames() {
    for seed in seed_range(80..100) {
        let st = wire(seed, 0.0, 0.7, 0.5);
        let clock = Arc::new(AtomicU64::new(0));
        let mut a = session(end("da", &st), 0, seed, &clock, 1024);
        let mut b = session(end("db", &st), 0, seed, &clock, 1024);
        let total = 30i64;
        for v in 0..total {
            a.send(fact_msg("da", "db", FactKind::Persistent, v))
                .unwrap();
        }
        let mut got = Vec::new();
        let mut wm = BTreeMap::new();
        for _ in 0..2_000 {
            tick(&mut a, &mut b, &clock, &mut got, &mut wm);
            if got.len() == total as usize && a.pending_work() == 0 && b.pending_work() == 0 {
                break;
            }
        }
        let values: Vec<i64> = got.iter().map(payload_value).collect();
        let expect: Vec<i64> = (0..total).collect();
        assert_eq!(
            values, expect,
            "seed {seed}: duplicates leaked or dedup ate fresh frames"
        );
        assert!(
            b.stats().dup_drops > 0,
            "seed {seed}: a 70% duplicating wire must exercise dedup"
        );
    }
}

/// A receiver crash/restart is detected (higher incarnation → event) and
/// recovery from durable watermarks restores the dedup floor: traffic
/// committed by the previous life is not re-applied, later traffic flows.
#[test]
fn restart_is_detected_and_watermark_recovery_resumes_delivery() {
    for seed in seed_range(120..140) {
        let st = wire(seed, 0.0, 0.0, 0.0);
        let clock = Arc::new(AtomicU64::new(0));
        let mut a = session(end("wa", &st), 0, seed, &clock, 1024);
        let mut b = session(end("wb", &st), 0, seed, &clock, 1024);
        let mut got = Vec::new();
        let mut wm = BTreeMap::new();
        for v in 0..5 {
            a.send(fact_msg("wa", "wb", FactKind::Persistent, v))
                .unwrap();
        }
        for _ in 0..50 {
            tick(&mut a, &mut b, &clock, &mut got, &mut wm);
            if got.len() == 5 && a.pending_work() == 0 && b.pending_work() == 0 {
                break;
            }
        }
        assert_eq!(got.len(), 5, "seed {seed}: pre-crash convergence");
        assert!(
            wm.contains_key(&(Symbol::intern("wa"), 0)),
            "seed {seed}: delivered watermark was never surfaced for durability"
        );

        // Crash: the old endpoint (and its transient dedup state) is gone.
        // The new life recovers from the durable watermarks only.
        drop(b);
        st.lock().unwrap().inboxes.clear();
        let cfg = SessionConfig {
            seed,
            ..SessionConfig::default()
        };
        let mut b = SessionEndpoint::recover(
            end("wb", &st),
            1,
            cfg,
            Box::new(TestClock(Arc::clone(&clock))),
            &wm,
        );

        for v in 5..10 {
            a.send(fact_msg("wa", "wb", FactKind::Persistent, v))
                .unwrap();
        }
        let mut restarted = false;
        for _ in 0..200 {
            tick(&mut a, &mut b, &clock, &mut got, &mut wm);
            restarted |= a
                .poll_events()
                .iter()
                .any(|e| matches!(e, TransportEvent::PeerRestarted(p) if p.as_str() == "wb"));
            if got.len() == 10 && a.pending_work() == 0 && b.pending_work() == 0 {
                break;
            }
        }
        let values: Vec<i64> = got.iter().map(payload_value).collect();
        let expect: Vec<i64> = (0..10).collect();
        assert_eq!(
            values, expect,
            "seed {seed}: post-restart traffic lost or pre-crash traffic re-applied"
        );
        assert!(restarted, "seed {seed}: sender never observed the restart");
    }
}

/// Liveness: silence with traffic outstanding walks Up → Suspect → Down
/// (with events), and any sign of life restores Up.
#[test]
fn liveness_suspects_then_downs_then_recovers() {
    let seed = 7;
    let st = wire(seed, 0.0, 0.0, 0.0);
    let clock = Arc::new(AtomicU64::new(0));
    let cfg = SessionConfig::default();
    let mut a = session(end("la", &st), 0, seed, &clock, 1024);
    let mut b = session(end("lb", &st), 0, seed, &clock, 1024);
    let lb = Symbol::intern("lb");

    a.send(fact_msg("la", "lb", FactKind::Persistent, 1))
        .unwrap();
    // The receiver goes silent: never drained, never acking.
    let mut events = Vec::new();
    while clock.load(Ordering::SeqCst) < cfg.suspect_after_micros + 2_000 {
        let _ = a.drain();
        events.extend(a.poll_events());
        clock.fetch_add(1_000, Ordering::SeqCst);
    }
    assert!(
        matches!(
            a.health_of(lb),
            Some(webdamlog::net::session::PeerHealth::Suspect)
        ),
        "silent past the suspicion window: {:?}",
        a.health_of(lb)
    );
    while clock.load(Ordering::SeqCst) < cfg.down_after_micros + 5_000 {
        let _ = a.drain();
        events.extend(a.poll_events());
        clock.fetch_add(1_000, Ordering::SeqCst);
    }
    assert!(
        matches!(
            a.health_of(lb),
            Some(webdamlog::net::session::PeerHealth::Down)
        ),
        "silent past the down threshold: {:?}",
        a.health_of(lb)
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, TransportEvent::Suspect(p) if *p == lb)));
    assert!(events
        .iter()
        .any(|e| matches!(e, TransportEvent::Down(p) if *p == lb)));

    // The peer wakes up: one drain/ack cycle restores Up and delivers.
    let mut got = Vec::new();
    let mut wm = BTreeMap::new();
    for _ in 0..50 {
        tick(&mut a, &mut b, &clock, &mut got, &mut wm);
        if got.len() == 1 && a.pending_work() == 0 {
            break;
        }
    }
    assert_eq!(got.len(), 1, "delivery resumes after recovery");
    assert!(
        matches!(
            a.health_of(lb),
            Some(webdamlog::net::session::PeerHealth::Up)
        ),
        "any received frame restores Up: {:?}",
        a.health_of(lb)
    );
}

/// Backpressure: the bounded outbox surfaces `PeerUnreachable` instead of
/// buffering without limit, and frees up as acks arrive.
#[test]
fn backpressure_bounds_the_outbox() {
    let seed = 11;
    let st = wire(seed, 0.0, 0.0, 0.0);
    let clock = Arc::new(AtomicU64::new(0));
    let mut a = session(end("qa", &st), 0, seed, &clock, 8);
    let mut b = session(end("qb", &st), 0, seed, &clock, 8);

    let mut accepted = 0i64;
    let mut refused = 0;
    for v in 0..20 {
        match a.send(fact_msg("qa", "qb", FactKind::Persistent, v)) {
            Ok(()) => accepted += 1,
            Err(NetError::PeerUnreachable(_)) => refused += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(accepted, 8, "outbox admits exactly max_unacked frames");
    assert!(refused > 0, "overflow surfaced as PeerUnreachable");

    // Acks free the window; the refused traffic can be re-offered.
    let mut got = Vec::new();
    let mut wm = BTreeMap::new();
    for _ in 0..50 {
        tick(&mut a, &mut b, &clock, &mut got, &mut wm);
        if a.pending_work() == 0 && b.pending_work() == 0 {
            break;
        }
    }
    assert_eq!(got.len(), 8);
    for v in 8..12 {
        a.send(fact_msg("qa", "qb", FactKind::Persistent, v))
            .unwrap();
    }
    for _ in 0..50 {
        tick(&mut a, &mut b, &clock, &mut got, &mut wm);
        if got.len() == 12 && a.pending_work() == 0 {
            break;
        }
    }
    let values: Vec<i64> = got.iter().map(payload_value).collect();
    let expect: Vec<i64> = (0..12).collect();
    assert_eq!(values, expect, "no gap, no duplicate across the stall");
}
