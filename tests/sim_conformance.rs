//! Simulation conformance: seed sweeps over Wepic scenarios × fault
//! plans, graded by the convergence oracle.
//!
//! Every run is a pure function of its `u64` seed: the fault plan, crash
//! script, latencies, and interleaving all derive from it. On failure the
//! harness prints the seed and the exact reproduction command —
//!
//! ```text
//! WDL_SIM_SEED=1234 cargo test --test sim_conformance <group>
//! ```
//!
//! — which replays the identical event sequence. `WDL_SIM_SEEDS=lo..hi`
//! overrides a group's whole seed range (used by the CI `sim-conformance`
//! job to pin the sweep).
//!
//! The oracle grades each run at the strongest level the plan admits
//! (see `wdl_net::sim::oracle`):
//! * any plan — delivered facts are genuine (universe membership);
//! * monotone scenarios — delivered state ⊆ the lossless outcome;
//! * lossless plans (and ordered ones, for workloads with retractions) —
//!   eventual equality once partitions heal, crashed peers restart, and
//!   buffered messages flush.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::datalog::Symbol;
use webdamlog::net::node::NodeError;
use webdamlog::net::sim::oracle::{
    check_conformance, check_conformance_with, RunSpec, Scenario, Verdict,
};
use webdamlog::net::sim::{FaultPlan, SimOp, SimRuntime};
use webdamlog::store::{DurabilityConfig, DurablePersistence};
use wepic::scenarios;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn seed_range(default: Range<u64>) -> Range<u64> {
    if let Ok(v) = std::env::var("WDL_SIM_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n..n + 1;
        }
    }
    if let Ok(v) = std::env::var("WDL_SIM_SEEDS") {
        if let Some((lo, hi)) = v.trim().split_once("..") {
            if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                return lo..hi;
            }
        }
    }
    default
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Runs `make(seed)` for every seed in the group's range, failing with a
/// replayable seed on the first divergence. `expect` asserts the oracle
/// reached the intended strength (so a misconfigured plan can't silently
/// downgrade a group meant to prove equality).
fn sweep_with(
    group: &str,
    seeds: Range<u64>,
    expect: impl Fn(&Verdict) -> bool,
    make: impl Fn(u64) -> (Scenario, RunSpec),
) {
    let mut checked = 0usize;
    for seed in seed_range(seeds) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (sc, spec) = make(seed);
            check_conformance(&sc, &spec)
        }));
        match outcome {
            Ok(Ok(v)) => {
                assert!(
                    expect(&v),
                    "\n[sim-conformance] group `{group}` seed {seed}: oracle did not reach \
                     the expected strength: {v:?}\n\
                     reproduce: WDL_SIM_SEED={seed} cargo test --test sim_conformance {group}\n"
                );
                checked += 1;
            }
            Ok(Err(e)) => panic!(
                "\n[sim-conformance] group `{group}` FAILED: {e}\n\
                 reproduce: WDL_SIM_SEED={seed} cargo test --test sim_conformance {group}\n"
            ),
            Err(p) => panic!(
                "\n[sim-conformance] group `{group}` seed {seed} panicked: {}\n\
                 reproduce: WDL_SIM_SEED={seed} cargo test --test sim_conformance {group}\n",
                panic_text(p)
            ),
        }
    }
    assert!(checked > 0, "empty seed range");
}

/// [`sweep_with`] without a strength requirement.
fn sweep(group: &str, seeds: Range<u64>, make: impl Fn(u64) -> (Scenario, RunSpec)) {
    sweep_with(group, seeds, |_| true, make)
}

/// Like [`sweep_with`], but every run goes through the real durable
/// storage engine: a [`DurablePersistence`] is installed before events
/// are scheduled, every scenario peer gets a durability sink (with a
/// seed-derived checkpoint policy, so some seeds crash mid-WAL-tail and
/// others right at a checkpoint boundary), and crashed peers restart by
/// genuine recovery from disk — segments + WAL replay — not by snapshot
/// copying. The fault-free reference run stays engine-free, so any state
/// the engine loses or invents fails the oracle's equality check.
fn sweep_durable(
    group: &str,
    seeds: Range<u64>,
    expect: impl Fn(&Verdict) -> bool,
    make: impl Fn(u64) -> (Scenario, RunSpec),
) {
    let mut checked = 0usize;
    for seed in seed_range(seeds) {
        let root = std::env::temp_dir().join(format!(
            "wdl-sim-durable-{group}-{seed}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let setup = |sim: &mut SimRuntime| -> Result<(), NodeError> {
            let mut policy = StdRng::seed_from_u64(seed ^ 0xD0_4AB1E);
            let mut persist = DurablePersistence::new(
                DurabilityConfig::new(&root).checkpoint_records(1 << policy.gen_range(0..6u32)),
            );
            for name in sim.peer_names().to_vec() {
                let peer = sim.peer_mut(name).expect("just listed");
                persist
                    .store_mut()
                    .attach(peer)
                    .map_err(|e| NodeError::Net(e.into()))?;
            }
            sim.set_persistence(Box::new(persist));
            Ok(())
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (sc, spec) = make(seed);
            check_conformance_with(&sc, &spec, &setup)
        }));
        let _ = std::fs::remove_dir_all(&root);
        match outcome {
            Ok(Ok(v)) => {
                assert!(
                    expect(&v),
                    "\n[sim-conformance] group `{group}` seed {seed}: oracle did not reach \
                     the expected strength: {v:?}\n\
                     reproduce: WDL_SIM_SEED={seed} cargo test --test sim_conformance {group}\n"
                );
                checked += 1;
            }
            Ok(Err(e)) => panic!(
                "\n[sim-conformance] group `{group}` FAILED: {e}\n\
                 reproduce: WDL_SIM_SEED={seed} cargo test --test sim_conformance {group}\n"
            ),
            Err(p) => panic!(
                "\n[sim-conformance] group `{group}` seed {seed} panicked: {}\n\
                 reproduce: WDL_SIM_SEED={seed} cargo test --test sim_conformance {group}\n",
                panic_text(p)
            ),
        }
    }
    assert!(checked > 0, "empty seed range");
}

fn names_of(sc: &Scenario) -> Vec<Symbol> {
    (sc.build)().iter().map(|p| p.name()).collect()
}

fn prob(rng: &mut StdRng, max: f64) -> f64 {
    rng.gen::<f64>() * max
}

// ---------------------------------------------------------------------
// Plan generators (all derived from the seed)
// ---------------------------------------------------------------------

/// With probability `p`, cuts a random distinct peer pair for a random
/// window starting in `start` and lasting a duration drawn from `len`.
/// `drop_prob` is the chance the partition destroys traffic instead of
/// buffering it until heal.
fn maybe_partition(
    rng: &mut StdRng,
    names: &[Symbol],
    mut plan: FaultPlan,
    p: f64,
    start: Range<u64>,
    len: Range<u64>,
    drop_prob: f64,
) -> FaultPlan {
    if rng.gen_bool(p) && names.len() >= 2 {
        let a = names[rng.gen_range(0..names.len())];
        let mut b = names[rng.gen_range(0..names.len())];
        while b == a {
            b = names[rng.gen_range(0..names.len())];
        }
        let from = rng.gen_range(start);
        let until = from + rng.gen_range(len);
        plan = plan.partition(a, b, from, until);
        if drop_prob > 0.0 && rng.gen_bool(drop_prob) {
            plan = plan.drop_partitions();
        }
    }
    plan
}

/// Anything goes: drops, duplication, reordering latency, partitions
/// (buffered or dropped), sometimes a crash of a crash-safe peer.
fn mixed_spec(seed: u64, sc: &Scenario) -> RunSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3141_5926);
    let names = names_of(sc);
    let mut plan =
        FaultPlan::lossless().delay(rng.gen_range(0..200u64), rng.gen_range(500..4_000u64));
    if rng.gen_bool(0.5) {
        plan = plan.drop(0.05 + prob(&mut rng, 0.25));
    }
    if rng.gen_bool(0.4) {
        plan = plan.duplicate(0.05 + prob(&mut rng, 0.3));
    }
    if rng.gen_bool(0.4) {
        plan = plan.reorder(0.3, rng.gen_range(500..4_000u64));
    }
    let plan = maybe_partition(&mut rng, &names, plan, 0.5, 1_000..6_000, 2_000..8_000, 0.4);
    let mut spec = RunSpec::new(seed, plan);
    if rng.gen_bool(0.3) && !sc.crashable.is_empty() {
        let victim = sc.crashable[rng.gen_range(0..sc.crashable.len())];
        spec = spec.crash(
            rng.gen_range(1_000..5_000u64),
            victim,
            Some(rng.gen_range(3_000..8_000u64)),
        );
    }
    spec
}

/// Lossless but adversarial: duplication, reordering, wide latency,
/// buffered partitions — the plan class whose runs must converge to the
/// exact fault-free outcome on monotone scenarios.
fn lossless_adversarial_spec(seed: u64, sc: &Scenario) -> RunSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x105_51E55);
    let names = names_of(sc);
    let plan = FaultPlan::lossless()
        .delay(rng.gen_range(0..300u64), rng.gen_range(1_000..5_000u64))
        .duplicate(prob(&mut rng, 0.4))
        .reorder(0.4, rng.gen_range(1_000..5_000u64));
    let plan = maybe_partition(&mut rng, &names, plan, 0.6, 1_000..5_000, 2_000..9_000, 0.0);
    RunSpec::new(seed, plan)
}

/// TCP-like: per-link FIFO, no duplication, no loss, buffered partitions.
/// The only plan class where retraction streams must replay exactly.
fn ordered_spec(seed: u64, sc: &Scenario) -> RunSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0FD0_FD0F);
    let names = names_of(sc);
    let plan = FaultPlan::lossless()
        .delay(rng.gen_range(0..500u64), rng.gen_range(1_000..6_000u64))
        .fifo();
    let plan = maybe_partition(&mut rng, &names, plan, 0.5, 1_000..6_000, 2_000..8_000, 0.0);
    RunSpec::new(seed, plan)
}

/// Lossless + a crash/restart of a crash-safe peer.
fn crash_spec(seed: u64, sc: &Scenario) -> RunSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5);
    let mut spec = lossless_adversarial_spec(seed, sc);
    if !sc.crashable.is_empty() {
        let victim = sc.crashable[rng.gen_range(0..sc.crashable.len())];
        spec = spec.crash(
            rng.gen_range(1_000..5_000u64),
            victim,
            Some(rng.gen_range(3_000..9_000u64)),
        );
        if sc.crashable.len() > 1 && rng.gen_bool(0.4) {
            let second = sc.crashable[rng.gen_range(0..sc.crashable.len())];
            if second != victim {
                spec = spec.crash(rng.gen_range(6_000..10_000u64), second, Some(4_000));
            }
        }
    }
    spec
}

/// Lossy, duplicating, reordering, partitioned — but with the reliable
/// session layer underneath, which upgrades all of it back to
/// exactly-once in-order delivery. No crash in the plan.
fn session_lossy_spec(seed: u64, sc: &Scenario) -> RunSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E_5510);
    let names = names_of(sc);
    let mut plan = FaultPlan::lossless()
        .delay(rng.gen_range(0..200u64), rng.gen_range(500..3_000u64))
        .drop(0.05 + prob(&mut rng, 0.30));
    if rng.gen_bool(0.5) {
        plan = plan.duplicate(0.05 + prob(&mut rng, 0.30));
    }
    if rng.gen_bool(0.5) {
        plan = plan.reorder(0.4, rng.gen_range(500..3_000u64));
    }
    let plan = maybe_partition(&mut rng, &names, plan, 0.4, 1_000..5_000, 2_000..6_000, 0.5);
    RunSpec::new(seed, plan).with_sessions()
}

/// Sessions + crashes of ANY peer — including ones the scenario does not
/// list as crash-safe. Every crash restarts; durable watermarks plus
/// restart-triggered resync must make the whole network converge anyway.
fn session_crash_spec(seed: u64, sc: &Scenario) -> RunSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCE55_C4A5);
    let names = names_of(sc);
    let plan = FaultPlan::lossless()
        .delay(rng.gen_range(0..300u64), rng.gen_range(1_000..4_000u64))
        .duplicate(prob(&mut rng, 0.3));
    let mut spec = RunSpec::new(seed, plan).with_sessions();
    let victim = names[rng.gen_range(0..names.len())];
    let at = rng.gen_range(1_000..5_000u64);
    spec = spec.crash(at, victim, Some(at + rng.gen_range(2_000..5_000u64)));
    if names.len() > 1 && rng.gen_bool(0.4) {
        let second = names[rng.gen_range(0..names.len())];
        if second != victim {
            spec = spec.crash(rng.gen_range(10_000..14_000u64), second, Some(16_000));
        }
    }
    spec
}

// ---------------------------------------------------------------------
// The sweeps (group name == test name)
// ---------------------------------------------------------------------

#[test]
fn fanout_mixed_faults() {
    sweep("fanout_mixed_faults", 0..60, |seed| {
        let sc = scenarios::delegation_fanout(seed);
        let spec = mixed_spec(seed, &sc);
        (sc, spec)
    });
}

#[test]
fn fanout_lossless_adversarial() {
    sweep_with(
        "fanout_lossless_adversarial",
        100..150,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::delegation_fanout(seed);
            let spec = lossless_adversarial_spec(seed, &sc);
            (sc, spec)
        },
    );
}

#[test]
fn fanout_crash_restart() {
    sweep_with(
        "fanout_crash_restart",
        200..240,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::delegation_fanout(seed);
            let spec = crash_spec(seed, &sc);
            (sc, spec)
        },
    );
}

#[test]
fn churn_ordered_tcp() {
    sweep_with(
        "churn_ordered_tcp",
        300..340,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::delegation_churn(seed);
            let spec = ordered_spec(seed, &sc);
            (sc, spec)
        },
    );
}

#[test]
fn churn_lossy() {
    sweep("churn_lossy", 400..430, |seed| {
        let sc = scenarios::delegation_churn(seed);
        let spec = mixed_spec(seed, &sc);
        (sc, spec)
    });
}

#[test]
fn acl_mixed_faults() {
    sweep("acl_mixed_faults", 500..525, |seed| {
        let sc = scenarios::acl_restricted(seed);
        let spec = mixed_spec(seed, &sc);
        (sc, spec)
    });
}

#[test]
fn transfer_lossless_adversarial() {
    sweep_with(
        "transfer_lossless_adversarial",
        600..620,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::transfer_dispatch(seed);
            let spec = lossless_adversarial_spec(seed, &sc);
            (sc, spec)
        },
    );
}

#[test]
fn publish_chain_mixed() {
    sweep("publish_chain_mixed", 700..735, |seed| {
        let sc = scenarios::publish_chain(seed);
        let spec = mixed_spec(seed, &sc);
        (sc, spec)
    });
}

// ---------------------------------------------------------------------
// Durable storage: the same oracle, but crashes destroy the process
// image and restarts recover from the real on-disk engine.
// ---------------------------------------------------------------------

#[test]
fn durable_crash_restart() {
    sweep_durable(
        "durable_crash_restart",
        900..1000,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::delegation_fanout(seed);
            let spec = crash_spec(seed, &sc);
            (sc, spec)
        },
    );
}

/// Durability with no crash in the plan must be entirely invisible: the
/// engine's checkpoints and WAL appends ride along but the outcome is
/// byte-identical to the fault-free reference.
#[test]
fn durable_transparent_without_crashes() {
    sweep_durable(
        "durable_transparent_without_crashes",
        1000..1020,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::transfer_dispatch(seed);
            let spec = lossless_adversarial_spec(seed, &sc);
            (sc, spec)
        },
    );
}

// ---------------------------------------------------------------------
// Reliable sessions: lossy plans and arbitrary crashes that previously
// only earned weaker grades must now reach full eventual equality.
// ---------------------------------------------------------------------

/// Retraction-heavy churn over a genuinely lossy, duplicating,
/// reordering network: without sessions this sweep could only assert
/// universe membership; with them the oracle demands exact equality with
/// the fault-free reference for every peer.
#[test]
fn session_lossy_eventual_equality() {
    sweep_with(
        "session_lossy_eventual_equality",
        1100..1160,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::delegation_churn(seed);
            let spec = session_lossy_spec(seed, &sc);
            (sc, spec)
        },
    );
}

/// Crashes of ANY peer — crash-safe or not — over the durable storage
/// engine. Restarts recover from disk (segments + WAL, including session
/// watermarks); the sender's restart detection re-sends the full derived
/// state. The oracle grades full eventual equality for all peers.
#[test]
fn session_crash_all_peers() {
    sweep_durable(
        "session_crash_all_peers",
        1200..1260,
        |v| v.checked_equality,
        |seed| {
            let sc = scenarios::delegation_fanout(seed);
            let spec = session_crash_spec(seed, &sc);
            (sc, spec)
        },
    );
}

// ---------------------------------------------------------------------
// Exact replayability: the acceptance criterion that a printed seed
// reproduces its run bit-for-bit.
// ---------------------------------------------------------------------

#[test]
fn seed_replay_is_exact() {
    for seed in [17u64, 90_210] {
        let run = || {
            let sc = scenarios::delegation_fanout(seed);
            let spec = mixed_spec(seed, &sc);
            sc.run_sim(&spec).unwrap()
        };
        let (state_a, report_a) = run();
        let (state_b, report_b) = run();
        assert_eq!(state_a, state_b, "same seed, same final state");
        assert_eq!(
            (
                report_a.events,
                report_a.steps,
                report_a.virtual_time,
                report_a.counters
            ),
            (
                report_b.events,
                report_b.steps,
                report_b.virtual_time,
                report_b.counters
            ),
            "same seed, same trajectory"
        );
    }
    // And different seeds genuinely explore different trajectories.
    let sc = scenarios::delegation_fanout(17);
    let a = sc.run_sim(&mixed_spec(17, &sc)).unwrap().1;
    let sc2 = scenarios::delegation_fanout(17);
    let b = sc2.run_sim(&mixed_spec(18, &sc2)).unwrap().1;
    assert_ne!(
        (a.events, a.virtual_time),
        (b.events, b.virtual_time),
        "different seeds diverge"
    );
}

// ---------------------------------------------------------------------
// Random-schedule equivalence on the single-peer stepping hook: any fair
// interleaving of `LocalRuntime::step_peer` reaches the lossless outcome
// ("any admissible outcome" includes every scheduler choice).
// ---------------------------------------------------------------------

fn shuffled(rng: &mut StdRng, names: &[Symbol]) -> Vec<Symbol> {
    let mut v = names.to_vec();
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

fn random_quiesce(rt: &mut LocalRuntime, rng: &mut StdRng, names: &[Symbol]) {
    let mut quiet = 0;
    for _ in 0..200 {
        let mut active = false;
        for n in shuffled(rng, names) {
            let reps = if rng.gen_bool(0.3) { 2 } else { 1 };
            for _ in 0..reps {
                let r = rt.step_peer(n).unwrap();
                active |= r.changed || r.messages > 0;
            }
        }
        quiet = if active { 0 } else { quiet + 1 };
        if quiet >= 2 {
            return;
        }
    }
    panic!("random schedule failed to quiesce");
}

#[test]
fn random_schedules_reach_the_lossless_outcome() {
    for seed in seed_range(800..820) {
        let sc = scenarios::delegation_churn(seed);
        let reference = sc.reference().unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C4ED);
        let mut rt = LocalRuntime::new();
        let names: Vec<Symbol> = (sc.build)()
            .into_iter()
            .map(|p| {
                let n = p.name();
                rt.add_peer(p).unwrap();
                n
            })
            .collect();
        random_quiesce(&mut rt, &mut rng, &names);
        for batch in &sc.batches {
            for (peer, op) in batch {
                let p = rt.peer_mut(*peer).unwrap();
                match op {
                    SimOp::Insert { rel, tuple } => {
                        p.insert_local(*rel, tuple.clone()).unwrap();
                    }
                    SimOp::Delete { rel, tuple } => {
                        p.delete_local(*rel, tuple.clone()).unwrap();
                    }
                }
            }
            random_quiesce(&mut rt, &mut rng, &names);
        }
        for &(peer, rel) in &sc.watched {
            let got: std::collections::BTreeSet<_> = rt
                .peer(peer)
                .unwrap()
                .relation_facts(rel)
                .into_iter()
                .collect();
            assert_eq!(
                &got,
                reference.final_state.get(&(peer, rel)).unwrap(),
                "seed {seed}: schedule-dependent outcome at {rel}@{peer}\n\
                 reproduce: WDL_SIM_SEED={seed} cargo test --test sim_conformance \
                 random_schedules_reach_the_lossless_outcome"
            );
        }
    }
}
