//! Pins the tentpole's cost contract: with no sink installed, the trace
//! hooks are a handful of `is_some` branches — **zero allocations** and
//! no clock reads on the stage hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator for this
//! test binary; the probe drives a converged peer's [`Peer::run_stage`]
//! directly (the runtime's tick wrapper allocates its own report
//! structures and is not the contract) and compares allocation deltas
//! against the **never-traced baseline** — the stage loop itself owns a
//! small fixed allocation budget per stage (output structures, fixpoint
//! scratch) that predates tracing. With no sink installed the hooks must
//! add *zero* on top of that baseline; with a sink installed they must
//! add some (the events have to live somewhere), which proves the
//! counter actually observes the loop — guarding against a vacuous pass.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{BufferSink, Peer};
use webdamlog::datalog::Value;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Builds a two-peer network with one derivation rule, converged so
/// further stages are pure bookkeeping.
fn converged_runtime() -> LocalRuntime {
    let mut rt = LocalRuntime::new();
    for name in ["a", "b"] {
        let mut p = Peer::new(name);
        p.acl_mut()
            .set_untrusted_policy(webdamlog::core::acl::UntrustedPolicy::Accept);
        rt.add_peer(p).unwrap();
    }
    let a = rt.peer_mut("a").unwrap();
    a.declare("out", 1, webdamlog::core::RelationKind::Intensional)
        .unwrap();
    a.add_rule(webdamlog::parser::parse_rule("out@a($x) :- item@a($x);").unwrap())
        .unwrap();
    a.insert_local("item", vec![Value::from(1)]).unwrap();
    assert!(rt.run_to_quiescence(16).unwrap().quiescent);
    rt
}

/// Runs 16 quiet stages on peer `a`, returning the allocation delta.
fn stage_allocs(rt: &mut LocalRuntime) -> u64 {
    let peer = rt.peer_mut("a").unwrap();
    // Warmup: let any lazy caches (plan compilation, hash growth,
    // interner spill) settle before measuring.
    for _ in 0..4 {
        peer.run_stage().unwrap();
    }
    let before = allocs();
    for _ in 0..16 {
        peer.run_stage().unwrap();
    }
    allocs() - before
}

#[test]
fn disabled_tracing_adds_zero_allocations_per_stage() {
    let mut rt = converged_runtime();
    let baseline = stage_allocs(&mut rt);

    // Control: the same stages with a sink installed *do* allocate on
    // top of the baseline, so the counter demonstrably observes the
    // hook sites.
    rt.peer_mut("a")
        .unwrap()
        .set_trace_sink(Box::new(BufferSink::new()));
    let traced = stage_allocs(&mut rt);
    assert!(
        traced > baseline,
        "control failed: traced stages should allocate event buffers \
         (traced {traced} vs baseline {baseline} over 16 stages)"
    );

    // The contract: clearing the sink restores the exact baseline — the
    // disabled hooks are `is_some` branches, zero event allocations.
    rt.peer_mut("a").unwrap().clear_trace_sink();
    let disabled = stage_allocs(&mut rt);
    assert_eq!(
        disabled, baseline,
        "disabled tracing must add zero allocations per stage"
    );
}

/// The runtime-level knob behaves the same: enabling then disabling
/// tracing leaves no allocation residue on the stage hot loop.
#[test]
fn disabling_tracing_restores_the_free_path() {
    let mut baseline_rt = converged_runtime();
    let baseline = stage_allocs(&mut baseline_rt);

    let mut rt = converged_runtime();
    rt.set_tracing(true);
    for _ in 0..4 {
        rt.tick().unwrap();
    }
    rt.set_tracing(false);
    let after_toggle = stage_allocs(&mut rt);
    assert_eq!(
        after_toggle, baseline,
        "disabled tracing must restore the baseline allocation count \
         (got {after_toggle} vs baseline {baseline} over 16 stages)"
    );
}
