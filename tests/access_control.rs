//! Integration tests for the paper's access-control model (§2 sketch +
//! §3 demo policy): relation write grants, delegated-rule read grants, the
//! provenance-derived view policy, and declassification.

use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::parser::parse_rule;

fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

/// Write grants gate explicit remote updates.
#[test]
fn write_grants_gate_updates() {
    let mut rt = LocalRuntime::new();
    let mut target = open_peer("wgTarget");
    target
        .declare("inbox", 1, RelationKind::Extensional)
        .unwrap();
    target.grants_mut().grant_write("inbox", "wgFriend");
    rt.add_peer(target).unwrap();
    rt.add_peer(open_peer("wgFriend")).unwrap();
    rt.add_peer(open_peer("wgStranger")).unwrap();

    rt.peer_mut("wgFriend")
        .unwrap()
        .insert_remote("wgTarget", "inbox", vec![Value::from("hi")]);
    rt.peer_mut("wgStranger").unwrap().insert_remote(
        "wgTarget",
        "inbox",
        vec![Value::from("spam")],
    );
    rt.run_to_quiescence(16).unwrap();

    let inbox = rt.peer("wgTarget").unwrap().relation_facts("inbox");
    assert_eq!(inbox.len(), 1, "only the granted writer got through");
    assert_eq!(inbox[0][0], Value::from("hi"));
}

/// Read grants gate what a delegated rule may consume.
#[test]
fn read_grants_gate_delegated_rules() {
    let mut rt = LocalRuntime::new();

    // The data owner restricts `pictures` to nobody (initially).
    let mut owner = open_peer("rgOwner");
    owner
        .insert_local("pictures", vec![Value::from(1)])
        .unwrap();
    owner.grants_mut().restrict_read("pictures");
    rt.add_peer(owner).unwrap();

    // A reader installs a view rule by delegation.
    let mut reader = open_peer("rgReader");
    reader
        .declare("view", 1, RelationKind::Intensional)
        .unwrap();
    reader
        .add_rule(parse_rule("view@rgReader($x) :- pictures@rgOwner($x);").unwrap())
        .unwrap();
    rt.add_peer(reader).unwrap();

    rt.run_to_quiescence(16).unwrap();
    assert!(
        rt.peer("rgReader")
            .unwrap()
            .relation_facts("view")
            .is_empty(),
        "restricted relation leaks nothing"
    );

    // Granting read access lets the already-installed rule flow.
    rt.peer_mut("rgOwner")
        .unwrap()
        .grants_mut()
        .grant_read("pictures", "rgReader");
    // Touch the owner's data so the runtime re-derives (grants are not
    // change-tracked; any stage re-runs installed rules).
    rt.peer_mut("rgOwner")
        .unwrap()
        .insert_local("pictures", vec![Value::from(2)])
        .unwrap();
    rt.run_to_quiescence(16).unwrap();
    assert_eq!(
        rt.peer("rgReader").unwrap().relation_facts("view").len(),
        2,
        "after the grant, the delegated rule reads freely"
    );
}

/// The provenance-derived default policy: a view over a restricted base is
/// itself restricted; declassifying the view opens it.
#[test]
fn provenance_view_policy_and_declassification() {
    let mut rt = LocalRuntime::new();

    // Owner: private base relation + a public-looking view over it.
    let mut owner = open_peer("pvOwner");
    owner
        .insert_local("salaries", vec![Value::from(100_000)])
        .unwrap();
    owner
        .declare("stats", 1, RelationKind::Intensional)
        .unwrap();
    owner
        .add_rule(parse_rule("stats@pvOwner($x) :- salaries@pvOwner($x);").unwrap())
        .unwrap();
    owner.grants_mut().restrict_read("salaries");
    rt.add_peer(owner).unwrap();

    // Reader tries to read the *view* by delegation.
    let mut reader = open_peer("pvReader");
    reader.declare("out", 1, RelationKind::Intensional).unwrap();
    reader
        .add_rule(parse_rule("out@pvReader($x) :- stats@pvOwner($x);").unwrap())
        .unwrap();
    rt.add_peer(reader).unwrap();

    rt.run_to_quiescence(16).unwrap();
    assert!(
        rt.peer("pvReader")
            .unwrap()
            .relation_facts("out")
            .is_empty(),
        "view inherits the base restriction through provenance"
    );

    // The owner declassifies the view ("effectively declassifying some
    // data", §2) — without touching the base restriction.
    rt.peer_mut("pvOwner")
        .unwrap()
        .grants_mut()
        .declassify("stats");
    rt.peer_mut("pvOwner")
        .unwrap()
        .insert_local("salaries", vec![Value::from(90_000)])
        .unwrap();
    rt.run_to_quiescence(16).unwrap();
    assert_eq!(
        rt.peer("pvReader").unwrap().relation_facts("out").len(),
        2,
        "declassified view is readable"
    );

    // The base itself stays unreadable by delegation.
    let mut rt2 = LocalRuntime::new();
    let mut owner2 = open_peer("pv2Owner");
    owner2
        .insert_local("salaries", vec![Value::from(1)])
        .unwrap();
    owner2.grants_mut().restrict_read("salaries");
    owner2.grants_mut().declassify("stats");
    rt2.add_peer(owner2).unwrap();
    let mut reader2 = open_peer("pv2Reader");
    reader2
        .declare("leak", 1, RelationKind::Intensional)
        .unwrap();
    reader2
        .add_rule(parse_rule("leak@pv2Reader($x) :- salaries@pv2Owner($x);").unwrap())
        .unwrap();
    rt2.add_peer(reader2).unwrap();
    rt2.run_to_quiescence(16).unwrap();
    assert!(rt2
        .peer("pv2Reader")
        .unwrap()
        .relation_facts("leak")
        .is_empty());
}

/// The owner's own rules are never gated by grants (discretionary model:
/// you always see your own data).
#[test]
fn owner_rules_unaffected_by_restrictions() {
    let mut rt = LocalRuntime::new();
    let mut p = open_peer("selfOwner");
    p.insert_local("private", vec![Value::from(5)]).unwrap();
    p.declare("mine", 1, RelationKind::Intensional).unwrap();
    p.add_rule(parse_rule("mine@selfOwner($x) :- private@selfOwner($x);").unwrap())
        .unwrap();
    p.grants_mut().restrict_read("private");
    rt.add_peer(p).unwrap();
    rt.run_to_quiescence(16).unwrap();
    assert_eq!(
        rt.peer("selfOwner").unwrap().relation_facts("mine").len(),
        1
    );
}

/// Blocked reads are observable in stage stats.
#[test]
fn blocked_reads_are_counted() {
    let mut owner = open_peer("cntOwner");
    owner.insert_local("secret", vec![Value::from(1)]).unwrap();
    owner.grants_mut().restrict_read("secret");
    // Install a delegation by hand through the message path.
    let d = webdamlog::core::Delegation::new(
        webdamlog::datalog::Symbol::intern("cntReader"),
        webdamlog::datalog::Symbol::intern("cntOwner"),
        parse_rule("out@cntReader($x) :- secret@cntOwner($x);").unwrap(),
    );
    owner.enqueue(webdamlog::core::Message::new(
        webdamlog::datalog::Symbol::intern("cntReader"),
        webdamlog::datalog::Symbol::intern("cntOwner"),
        webdamlog::core::Payload::Delegate(vec![d]),
    ));
    let out = owner.run_stage().unwrap();
    assert_eq!(out.stats.reads_blocked, 1);
}
