//! Property-based tests on the datalog kernel's core invariants.

use proptest::prelude::*;
use webdamlog::datalog::{
    Atom, BodyItem, Database, EvalStrategy, Fact, Program, Relation, Rule, Subst, Symbol, Term,
    Value,
};

/// Random edge lists for transitive-closure programs.
fn edges() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..12, 0i64..12), 0..60)
}

fn tc_program() -> Program {
    let atom = |p: &str, vs: &[&str]| Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect());
    Program::new(vec![
        Rule::new(
            atom("path", &["x", "y"]),
            vec![atom("edge", &["x", "y"]).into()],
        ),
        Rule::new(
            atom("path", &["x", "z"]),
            vec![
                atom("edge", &["x", "y"]).into(),
                atom("path", &["y", "z"]).into(),
            ],
        ),
    ])
    .unwrap()
}

fn db_from_edges(edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)]))
            .unwrap();
    }
    db
}

/// Reference transitive closure, independently computed.
fn reference_tc(edges: &[(i64, i64)]) -> std::collections::BTreeSet<(i64, i64)> {
    let mut closure: std::collections::BTreeSet<(i64, i64)> = edges.iter().copied().collect();
    loop {
        let mut added = false;
        let snapshot: Vec<(i64, i64)> = closure.iter().copied().collect();
        for &(a, b) in edges {
            for &(c, d) in &snapshot {
                if b == c && closure.insert((a, d)) {
                    added = true;
                }
            }
        }
        if !added {
            return closure;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seminaive and naive agree with each other AND with an independent
    /// reference implementation on random graphs.
    #[test]
    fn seminaive_equals_naive_equals_reference(edges in edges()) {
        let program = tc_program();
        let db = db_from_edges(&edges);
        let (semi, _) = program.eval_with(&db, EvalStrategy::Seminaive).unwrap();
        let (naive, _) = program.eval_with(&db, EvalStrategy::Naive).unwrap();
        let reference = reference_tc(&edges);

        let collect = |d: &Database| -> std::collections::BTreeSet<(i64, i64)> {
            d.relation("path")
                .map(|r| {
                    r.iter()
                        .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
                        .collect()
                })
                .unwrap_or_default()
        };
        prop_assert_eq!(collect(&semi), reference.clone());
        prop_assert_eq!(collect(&naive), reference);
    }

    /// Evaluation is monotone in the input: adding facts never removes
    /// derived facts.
    #[test]
    fn evaluation_is_monotone(base in edges(), extra in edges()) {
        let program = tc_program();
        let small = program.eval(&db_from_edges(&base)).unwrap();
        let mut all = base.clone();
        all.extend(extra.iter().copied());
        let big = program.eval(&db_from_edges(&all)).unwrap();
        if let Some(small_path) = small.relation("path") {
            let big_path = big.relation("path").unwrap();
            for t in small_path.iter() {
                prop_assert!(big_path.contains(t));
            }
        }
    }

    /// Evaluation is idempotent: re-running on the saturated database adds
    /// nothing.
    #[test]
    fn evaluation_is_idempotent(edges in edges()) {
        let program = tc_program();
        let once = program.eval(&db_from_edges(&edges)).unwrap();
        let twice = program.eval(&once).unwrap();
        prop_assert_eq!(once.fact_count(), twice.fact_count());
    }

    /// Relation storage behaves like a set under random insert/remove
    /// sequences, and indexed lookups always agree with full scans.
    #[test]
    fn storage_matches_set_model(
        ops in prop::collection::vec((prop::bool::ANY, 0i64..20, 0i64..20), 0..200),
    ) {
        let mut rel = Relation::new(2);
        let mut model: std::collections::HashSet<(i64, i64)> = Default::default();
        for (insert, a, b) in ops {
            let tuple: Box<[Value]> = vec![Value::from(a), Value::from(b)].into();
            if insert {
                prop_assert_eq!(rel.insert(tuple).unwrap(), model.insert((a, b)));
            } else {
                prop_assert_eq!(rel.remove(&tuple), model.remove(&(a, b)));
            }
        }
        prop_assert_eq!(rel.len(), model.len());
        // Indexed lookup on column 0 agrees with the model.
        for probe in 0..20i64 {
            let hits = rel.matches(0b01, &[Value::from(probe)]);
            let expected = model.iter().filter(|(a, _)| *a == probe).count();
            prop_assert_eq!(hits.len(), expected);
        }
    }

    /// Substitution unification is consistent: binding then reading back
    /// returns the bound value; conflicting unification fails.
    #[test]
    fn subst_unification(pairs in prop::collection::vec(("[a-e]", 0i64..10), 0..20)) {
        let mut s = Subst::new();
        let mut model: std::collections::HashMap<String, i64> = Default::default();
        for (name, val) in pairs {
            let sym = Symbol::intern(&name);
            let expected = match model.get(&name) {
                Some(&existing) => existing == val,
                None => { model.insert(name.clone(), val); true }
            };
            prop_assert_eq!(s.unify_var(sym, &Value::from(val)), expected);
        }
        for (name, val) in &model {
            prop_assert_eq!(s.get(Symbol::intern(name)), Some(&Value::from(*val)));
        }
    }

    /// Negation: `unreach = node − reach`, on random graphs.
    #[test]
    fn stratified_negation_is_complement(
        edges in edges(),
        src in 0i64..12,
    ) {
        let atom = |p: &str, vs: &[&str]| Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect());
        let program = Program::new(vec![
            Rule::new(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
            Rule::new(
                atom("reach", &["y"]),
                vec![atom("reach", &["x"]).into(), atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("unreach", &["x"]),
                vec![
                    atom("node", &["x"]).into(),
                    BodyItem::not_atom(atom("reach", &["x"])),
                ],
            ),
        ])
        .unwrap();
        let mut db = db_from_edges(&edges);
        for n in 0..12 {
            db.insert(Fact::new("node", vec![Value::from(n)])).unwrap();
        }
        db.insert(Fact::new("src", vec![Value::from(src)])).unwrap();
        let out = program.eval(&db).unwrap();
        let reach = out.relation("reach").map(|r| r.len()).unwrap_or(0);
        let unreach = out.relation("unreach").map(|r| r.len()).unwrap_or(0);
        prop_assert_eq!(reach + unreach, 12);
    }
}
