//! Property-based tests on the datalog kernel's core invariants.
//!
//! Hand-rolled generators over a seeded PRNG (the offline environment has
//! no `proptest`): every case is deterministic, and failures print the case
//! seed so they can be replayed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webdamlog::datalog::{
    Atom, BodyItem, Database, EvalStrategy, Fact, Program, Relation, Rule, Subst, Symbol, Term,
    Value,
};

const CASES: u64 = 64;

/// Random edge list: up to 60 edges over 12 nodes.
fn edges(rng: &mut StdRng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(0..60usize);
    (0..n)
        .map(|_| (rng.gen_range(0..12i64), rng.gen_range(0..12i64)))
        .collect()
}

fn tc_program() -> Program {
    let atom = |p: &str, vs: &[&str]| Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect());
    Program::new(vec![
        Rule::new(
            atom("path", &["x", "y"]),
            vec![atom("edge", &["x", "y"]).into()],
        ),
        Rule::new(
            atom("path", &["x", "z"]),
            vec![
                atom("edge", &["x", "y"]).into(),
                atom("path", &["y", "z"]).into(),
            ],
        ),
    ])
    .unwrap()
}

fn db_from_edges(edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)]))
            .unwrap();
    }
    db
}

/// Reference transitive closure, independently computed.
fn reference_tc(edges: &[(i64, i64)]) -> std::collections::BTreeSet<(i64, i64)> {
    let mut closure: std::collections::BTreeSet<(i64, i64)> = edges.iter().copied().collect();
    loop {
        let mut added = false;
        let snapshot: Vec<(i64, i64)> = closure.iter().copied().collect();
        for &(a, b) in edges {
            for &(c, d) in &snapshot {
                if b == c && closure.insert((a, d)) {
                    added = true;
                }
            }
        }
        if !added {
            return closure;
        }
    }
}

/// Seminaive and naive agree with each other AND with an independent
/// reference implementation on random graphs.
#[test]
fn seminaive_equals_naive_equals_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0001 + case);
        let edges = edges(&mut rng);
        let program = tc_program();
        let db = db_from_edges(&edges);
        let (semi, _) = program.eval_with(&db, EvalStrategy::Seminaive).unwrap();
        let (naive, _) = program.eval_with(&db, EvalStrategy::Naive).unwrap();
        let reference = reference_tc(&edges);

        let collect = |d: &Database| -> std::collections::BTreeSet<(i64, i64)> {
            d.relation("path")
                .map(|r| {
                    r.iter()
                        .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
                        .collect()
                })
                .unwrap_or_default()
        };
        assert_eq!(collect(&semi), reference, "case {case}");
        assert_eq!(collect(&naive), reference, "case {case}");
    }
}

/// Evaluation is monotone in the input: adding facts never removes
/// derived facts.
#[test]
fn evaluation_is_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0002 + case);
        let base = edges(&mut rng);
        let extra = edges(&mut rng);
        let program = tc_program();
        let small = program.eval(&db_from_edges(&base)).unwrap();
        let mut all = base.clone();
        all.extend(extra.iter().copied());
        let big = program.eval(&db_from_edges(&all)).unwrap();
        if let Some(small_path) = small.relation("path") {
            let big_path = big.relation("path").unwrap();
            for t in small_path.iter() {
                assert!(big_path.contains(&t), "case {case}: lost {t:?}");
            }
        }
    }
}

/// Evaluation is idempotent: re-running on the saturated database adds
/// nothing.
#[test]
fn evaluation_is_idempotent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0003 + case);
        let edges = edges(&mut rng);
        let program = tc_program();
        let once = program.eval(&db_from_edges(&edges)).unwrap();
        let twice = program.eval(&once).unwrap();
        assert_eq!(once.fact_count(), twice.fact_count(), "case {case}");
    }
}

/// Relation storage behaves like a set under random insert/remove
/// sequences, and indexed lookups always agree with full scans.
#[test]
fn storage_matches_set_model() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0004 + case);
        let mut rel = Relation::new(2);
        let mut model: std::collections::HashSet<(i64, i64)> = Default::default();
        let ops = rng.gen_range(0..200usize);
        for _ in 0..ops {
            let insert = rng.gen_bool(0.5);
            let a = rng.gen_range(0..20i64);
            let b = rng.gen_range(0..20i64);
            let tuple: Box<[Value]> = vec![Value::from(a), Value::from(b)].into();
            if insert {
                assert_eq!(rel.insert(tuple).unwrap(), model.insert((a, b)));
            } else {
                assert_eq!(rel.remove(&tuple), model.remove(&(a, b)));
            }
        }
        assert_eq!(rel.len(), model.len(), "case {case}");
        // Indexed lookup on column 0 agrees with the model.
        for probe in 0..20i64 {
            let hits = rel.matches(0b01, &[Value::from(probe)]);
            let expected = model.iter().filter(|(a, _)| *a == probe).count();
            assert_eq!(hits.len(), expected, "case {case} probe {probe}");
        }
    }
}

/// Substitution unification is consistent: binding then reading back
/// returns the bound value; conflicting unification fails.
#[test]
fn subst_unification() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0005 + case);
        let mut s = Subst::new();
        let mut model: std::collections::HashMap<String, i64> = Default::default();
        let pairs = rng.gen_range(0..20usize);
        for _ in 0..pairs {
            let name = char::from(b'a' + rng.gen_range(0..5u8)).to_string();
            let val = rng.gen_range(0..10i64);
            let sym = Symbol::intern(&name);
            let expected = match model.get(&name) {
                Some(&existing) => existing == val,
                None => {
                    model.insert(name.clone(), val);
                    true
                }
            };
            assert_eq!(s.unify_var(sym, &Value::from(val)), expected, "case {case}");
        }
        for (name, val) in &model {
            assert_eq!(s.get(Symbol::intern(name)), Some(&Value::from(*val)));
        }
    }
}

/// Negation: `unreach = node − reach`, on random graphs.
#[test]
fn stratified_negation_is_complement() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0006 + case);
        let edges = edges(&mut rng);
        let src = rng.gen_range(0..12i64);
        let atom = |p: &str, vs: &[&str]| Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect());
        let program = Program::new(vec![
            Rule::new(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
            Rule::new(
                atom("reach", &["y"]),
                vec![
                    atom("reach", &["x"]).into(),
                    atom("edge", &["x", "y"]).into(),
                ],
            ),
            Rule::new(
                atom("unreach", &["x"]),
                vec![
                    atom("node", &["x"]).into(),
                    BodyItem::not_atom(atom("reach", &["x"])),
                ],
            ),
        ])
        .unwrap();
        let mut db = db_from_edges(&edges);
        for n in 0..12 {
            db.insert(Fact::new("node", vec![Value::from(n)])).unwrap();
        }
        db.insert(Fact::new("src", vec![Value::from(src)])).unwrap();
        let out = program.eval(&db).unwrap();
        let reach = out.relation("reach").map(|r| r.len()).unwrap_or(0);
        let unreach = out.relation("unreach").map(|r| r.len()).unwrap_or(0);
        assert_eq!(reach + unreach, 12, "case {case}");
    }
}
