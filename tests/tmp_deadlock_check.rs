//! Temporary review check: nested probes of the same relation with
//! different binding masks, where the inner mask's index is not yet built.
use wdl_datalog::{Atom, Database, Fact, Program, Rule, Term, Value};

fn atom(pred: &str, vars: &[&str]) -> Atom {
    Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
}

#[test]
fn nested_same_relation_probe_with_fresh_mask() {
    let mut db = Database::new();
    db.insert(Fact::new("a", vec![Value::from(1), Value::from(2)]))
        .unwrap();
    for (x, y, w) in [(1, 2, 3), (4, 2, 3), (5, 2, 3)] {
        db.insert(Fact::new(
            "e",
            vec![Value::from(x), Value::from(y), Value::from(w)],
        ))
        .unwrap();
    }
    // q(z) :- a(x, y), e(x, y, w), e(z, y, w)
    // outer e probe: mask 0b011; inner e probe: mask 0b110 (fresh index).
    let rules = vec![Rule::new(
        atom("q", &["z"]),
        vec![
            atom("a", &["x", "y"]).into(),
            atom("e", &["x", "y", "w"]).into(),
            atom("e", &["z", "y", "w"]).into(),
        ],
    )];
    let program = Program::new(rules).unwrap();
    let out = program.eval(&db).unwrap();
    assert_eq!(out.relation("q").unwrap().len(), 3);
}
