//! Property test for the incremental maintenance engine (ISSUE 1): for
//! random interleaved insert/delete sequences, `MaterializedView::apply`
//! must leave the materialization equal to a from-scratch seminaive
//! recomputation over the final base — including across strata with
//! negation — and the returned deltas must be exactly the membership
//! changes.
//!
//! Hand-rolled generators over a seeded PRNG (no `proptest` offline);
//! failures name the case seed for replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use webdamlog::datalog::incremental::{Delta, MaterializedView};
use webdamlog::datalog::{Atom, BodyItem, Database, Fact, Program, Rule, Term, Value};

fn atom(pred: &str, vars: &[&str]) -> Atom {
    Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
}

fn fact(pred: &str, vals: &[i64]) -> Fact {
    Fact::new(pred, vals.iter().map(|&v| Value::from(v)))
}

/// Transitive closure: one recursive stratum (exercises DRed).
fn tc_program() -> Program {
    Program::new(vec![
        Rule::new(
            atom("path", &["x", "y"]),
            vec![atom("edge", &["x", "y"]).into()],
        ),
        Rule::new(
            atom("path", &["x", "z"]),
            vec![
                atom("edge", &["x", "y"]).into(),
                atom("path", &["y", "z"]).into(),
            ],
        ),
    ])
    .unwrap()
}

/// Three strata: recursive reach, negation on top of it, and a counting
/// layer joining through the negation — the "across strata with negation"
/// shape the issue calls for.
fn reach_program() -> Program {
    Program::new(vec![
        Rule::new(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
        Rule::new(
            atom("reach", &["y"]),
            vec![
                atom("reach", &["x"]).into(),
                atom("edge", &["x", "y"]).into(),
            ],
        ),
        Rule::new(
            atom("unreach", &["x"]),
            vec![
                atom("node", &["x"]).into(),
                BodyItem::not_atom(atom("reach", &["x"])),
            ],
        ),
        Rule::new(
            atom("alert", &["x", "y"]),
            vec![
                atom("unreach", &["x"]).into(),
                atom("watch", &["x", "y"]).into(),
            ],
        ),
    ])
    .unwrap()
}

/// The candidate base-fact pool for a program (small domains make
/// collisions — repeated insert/delete of the same fact — likely).
fn pool(program: usize, rng: &mut StdRng) -> Fact {
    match program {
        0 => fact("edge", &[rng.gen_range(0..8), rng.gen_range(0..8)]),
        _ => match rng.gen_range(0..4u32) {
            0 => fact("edge", &[rng.gen_range(0..6), rng.gen_range(0..6)]),
            1 => fact("src", &[rng.gen_range(0..6)]),
            2 => fact("node", &[rng.gen_range(0..6)]),
            _ => fact("watch", &[rng.gen_range(0..6), rng.gen_range(0..10)]),
        },
    }
}

fn databases_equal(a: &Database, b: &Database) -> bool {
    a.facts().all(|f| b.contains(&f)) && b.facts().all(|f| a.contains(&f))
}

/// Core property: after every applied batch, the maintained database
/// equals the from-scratch evaluation over the current base, and the
/// reported delta equals the observed membership change.
fn check_interleavings(program_id: usize, make_program: fn() -> Program, cases: u64, seed0: u64) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed0 + case);
        // Random initial base.
        let mut base = Database::new();
        for _ in 0..rng.gen_range(0..20usize) {
            let _ = base.insert(pool(program_id, &mut rng));
        }
        let mut view = MaterializedView::new(make_program(), base).unwrap();

        let batches = rng.gen_range(1..8usize);
        for batch_no in 0..batches {
            // Random interleaved batch: inserts and deletes, possibly of
            // the same fact, possibly no-ops.
            let mut delta = Delta::new();
            for _ in 0..rng.gen_range(1..10usize) {
                let f = pool(program_id, &mut rng);
                if rng.gen_bool(0.5) {
                    delta.insert(f);
                } else {
                    delta.delete(f);
                }
            }

            let before: HashSet<Fact> = view.database().facts().collect();
            let out = view.apply(&delta).unwrap();
            let after: HashSet<Fact> = view.database().facts().collect();

            // 1. Equivalence with from-scratch seminaive recomputation.
            let reference = view.recompute().unwrap();
            assert!(
                databases_equal(view.database(), &reference),
                "program {program_id} case {case} batch {batch_no}: \
                 incremental != recompute after {delta:?}"
            );

            // 2. The returned delta is exactly the membership change.
            let expect_ins: HashSet<Fact> = after.difference(&before).cloned().collect();
            let expect_del: HashSet<Fact> = before.difference(&after).cloned().collect();
            let got_ins: HashSet<Fact> = out.inserts.iter().cloned().collect();
            let got_del: HashSet<Fact> = out.deletes.iter().cloned().collect();
            assert_eq!(
                got_ins, expect_ins,
                "program {program_id} case {case} batch {batch_no}: insert delta"
            );
            assert_eq!(
                got_del, expect_del,
                "program {program_id} case {case} batch {batch_no}: delete delta"
            );
        }
    }
}

#[test]
fn recursive_program_matches_recompute_under_interleaving() {
    check_interleavings(0, tc_program, 48, 0x19C0_0000);
}

#[test]
fn stratified_negation_matches_recompute_under_interleaving() {
    check_interleavings(1, reach_program, 48, 0xD4ED_0001);
}

/// Single-fact churn on a larger database: repeated delete/re-insert of
/// the same fact always returns to the identical materialization.
#[test]
fn churn_is_reversible() {
    let mut base = Database::new();
    for i in 0..40i64 {
        base.insert(fact("edge", &[i % 10, (i * 7) % 10])).unwrap();
    }
    let mut view = MaterializedView::new(tc_program(), base).unwrap();
    let initial: HashSet<Fact> = view.database().facts().collect();
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..30 {
        let f = fact("edge", &[rng.gen_range(0..10), rng.gen_range(0..10)]);
        let present = view.database().contains(&f);
        if present {
            view.apply(&Delta::deletion(f.clone())).unwrap();
            view.apply(&Delta::insertion(f)).unwrap();
        } else {
            view.apply(&Delta::insertion(f.clone())).unwrap();
            view.apply(&Delta::deletion(f)).unwrap();
        }
        let now: HashSet<Fact> = view.database().facts().collect();
        assert_eq!(now, initial, "delete/re-insert round trip drifted");
    }
}
