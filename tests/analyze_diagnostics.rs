//! Golden tests for the static analyzer: one deliberately-broken program
//! per diagnostic code, each asserting that *exactly* its code fires, plus
//! install-time rejection semantics (`Peer::install` must reject before
//! mutating anything).

use webdamlog::analyze::{model_from_program, Analyzer, StaticChecker};
use webdamlog::core::{DiagCode, Peer, ProgramBatch, RelationKind, Severity, Span, WdlError};
use webdamlog::parser::{parse_fact, parse_program_spanned, parse_rule};

/// Parses, models and analyzes a `.wdl` source, returning the diagnostic
/// codes that fired (deduplicated, in report order).
fn codes(src: &str) -> Vec<DiagCode> {
    let stmts = parse_program_spanned(src).expect("program must parse");
    let (models, build_diags) = model_from_program(&stmts);
    let report = Analyzer::new(models).analyze();
    let mut out = Vec::new();
    for d in build_diags.iter().chain(report.diagnostics.iter()) {
        if !out.contains(&d.code) {
            out.push(d.code);
        }
    }
    out
}

#[test]
fn wdl001_unbound_head_variable() {
    let src = "extensional w@p/1;\n\
               intensional v@p/1;\n\
               v@p($x) :- w@p($y);";
    assert_eq!(codes(src), vec![DiagCode::UnboundHeadVar]);
}

#[test]
fn wdl002_unbound_negated_variable() {
    let src = "extensional w@p/1;\n\
               extensional u@p/1;\n\
               intensional v@p/1;\n\
               v@p($x) :- w@p($x), not u@p($y);";
    assert_eq!(codes(src), vec![DiagCode::UnboundNegatedVar]);
}

#[test]
fn wdl003_unbound_name_variable() {
    let src = "extensional w@p/1;\n\
               intensional v@p/1;\n\
               v@p($x) :- r@$q($x), w@p($x);";
    assert_eq!(codes(src), vec![DiagCode::UnboundNameVar]);
}

#[test]
fn wdl004_unstratifiable_negation() {
    let src = "extensional q@me/1;\n\
               intensional p@me/1;\n\
               intensional r@me/1;\n\
               p@me($x) :- q@me($x), not r@me($x);\n\
               r@me($x) :- q@me($x), not p@me($x);";
    assert_eq!(codes(src), vec![DiagCode::UnstratifiableNegation]);
}

#[test]
fn wdl005_unbounded_delegation() {
    // Two rules whose installs cross in both directions: p installs at q,
    // q installs at p — a cycle fed by two distinct rules.
    let src = "extensional tick@p/1;\n\
               extensional relay@q/1;\n\
               extensional tock@q/1;\n\
               extensional echo@p/1;\n\
               intensional ping@q/1;\n\
               intensional pong@p/1;\n\
               ping@q($x) :- tick@p($x), relay@q($x);\n\
               pong@p($x) :- tock@q($x), echo@p($x);";
    assert_eq!(codes(src), vec![DiagCode::UnboundedDelegation]);
}

#[test]
fn wdl006_arity_mismatch() {
    let src = "extensional r@p/2;\n\
               intensional v@p/1;\n\
               v@p($x) :- r@p($x);";
    assert_eq!(codes(src), vec![DiagCode::ArityMismatch]);
}

#[test]
fn wdl007_ungranted_write() {
    // Built from peer models directly: grants are not expressible in the
    // surface syntax.
    use webdamlog::analyze::PeerModel;
    let mut q = PeerModel::new("q");
    q.schema
        .declare("s".into(), 1, RelationKind::Extensional)
        .unwrap();
    q.grants.restrict_write("s");
    let mut p = PeerModel::new("p");
    p.schema
        .declare("w".into(), 1, RelationKind::Extensional)
        .unwrap();
    let p = p.with_rule(parse_rule("s@q($x) :- w@p($x);").unwrap());
    let report = Analyzer::new(vec![p, q]).analyze();
    let codes: Vec<DiagCode> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![DiagCode::UngrantedWrite]);

    // Granting the writer silences it.
    let mut q2 = PeerModel::new("q");
    q2.schema
        .declare("s".into(), 1, RelationKind::Extensional)
        .unwrap();
    q2.grants.restrict_write("s");
    q2.grants.grant_write("s", "p");
    let mut p2 = PeerModel::new("p");
    p2.schema
        .declare("w".into(), 1, RelationKind::Extensional)
        .unwrap();
    let p2 = p2.with_rule(parse_rule("s@q($x) :- w@p($x);").unwrap());
    assert!(Analyzer::new(vec![p2, q2]).analyze().is_clean());
}

#[test]
fn wdl008_dead_rule() {
    let src = "extensional w@p/1;\n\
               intensional d@p/1;\n\
               intensional v@p/1;\n\
               v@p($x) :- d@p($x), w@p($x);";
    assert_eq!(codes(src), vec![DiagCode::DeadRule]);
}

#[test]
fn wdl009_unreachable_relation() {
    let src = "extensional w@p/1;\n\
               intensional orphan@p/1;\n\
               w@p(1);";
    assert_eq!(codes(src), vec![DiagCode::UnreachableRelation]);
}

#[test]
fn severities_split_as_documented() {
    for code in [
        DiagCode::UnboundHeadVar,
        DiagCode::UnboundNegatedVar,
        DiagCode::UnboundNameVar,
        DiagCode::UnstratifiableNegation,
        DiagCode::ArityMismatch,
        DiagCode::UngrantedWrite,
    ] {
        assert_eq!(code.severity(), Severity::Error, "{code:?}");
    }
    for code in [
        DiagCode::UnboundedDelegation,
        DiagCode::DeadRule,
        DiagCode::UnreachableRelation,
    ] {
        assert_eq!(code.severity(), Severity::Warning, "{code:?}");
    }
}

#[test]
fn diagnostics_carry_rule_spans() {
    let src = "extensional w@p/1;\n\
               intensional v@p/1;\n\
               v@p($x) :- w@p($y);";
    let stmts = parse_program_spanned(src).unwrap();
    let (models, _) = model_from_program(&stmts);
    let report = Analyzer::new(models).analyze();
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].rule_span, Some(Span::new(3, 1)));
}

#[test]
fn install_rejects_before_any_mutation() {
    let mut peer = Peer::new("p");
    peer.declare("w", 1, RelationKind::Extensional).unwrap();
    let mut batch = ProgramBatch::new();
    batch.facts.push(parse_fact("w@p(1);").unwrap());
    batch
        .rules
        .push((parse_rule("v@p($x) :- w@p($y);").unwrap(), None));
    let err = peer.install(batch, &StaticChecker).unwrap_err();
    match err {
        WdlError::Rejected(diags) => {
            assert!(diags.iter().any(|d| d.code == DiagCode::UnboundHeadVar));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Nothing was applied: no rules, no facts.
    assert!(peer.rules().is_empty());
    assert!(peer.relation_facts("w").is_empty());
}

#[test]
fn install_applies_clean_batches_and_reports_warnings() {
    let mut peer = Peer::new("p");
    let mut batch = ProgramBatch::new();
    batch
        .declarations
        .push(("w".into(), 1, RelationKind::Extensional));
    batch
        .declarations
        .push(("v".into(), 1, RelationKind::Intensional));
    batch
        .declarations
        .push(("orphan".into(), 1, RelationKind::Intensional));
    batch
        .rules
        .push((parse_rule("v@p($x) :- w@p($x);").unwrap(), None));
    batch.facts.push(parse_fact("w@p(7);").unwrap());
    let report = peer.install(batch, &StaticChecker).unwrap();
    assert_eq!(report.declarations, 3);
    assert_eq!(report.rules.len(), 1);
    assert_eq!(report.facts, 1);
    // The orphan intensional declaration is a warning, not a rejection.
    assert!(report
        .warnings
        .iter()
        .any(|d| d.code == DiagCode::UnreachableRelation));
    assert_eq!(peer.relation_facts("w").len(), 1);
}

#[test]
fn load_program_checked_rejects_with_position() {
    use webdamlog::parser::{load_program_checked, LoadError};
    let mut peer = Peer::new("p");
    let src = "extensional w@p/1;\n\
               intensional v@p/1;\n\
               v@p($x) :- w@p($y);";
    let err = load_program_checked(&mut peer, src, &StaticChecker).unwrap_err();
    match err {
        LoadError::Engine(WdlError::Rejected(diags)) => {
            assert_eq!(diags[0].rule_span, Some(Span::new(3, 1)));
        }
        other => panic!("expected Engine(Rejected), got {other:?}"),
    }

    let clean = "extensional w@p/1;\n\
                 intensional v@p/1;\n\
                 v@p($x) :- w@p($x);\n\
                 w@p(1);";
    let report = load_program_checked(&mut peer, clean, &StaticChecker).unwrap();
    assert_eq!(report.rules.len(), 1);
    assert_eq!(report.facts, 1);
}
