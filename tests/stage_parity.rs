//! Stage-parity property suite: **compiled stage evaluation ≡ the `Subst`
//! reference interpreter** — outcomes (relation contents), delegations,
//! blocked-read counts, and the full per-stage counter set — over
//! randomly generated Wepic-style distributed programs and over the simnet
//! conformance scenario generators.
//!
//! Each seed builds the *same* multi-peer system twice — once with
//! `Peer::set_compiled_stage(true)` (the default register-file prefix
//! plans) and once with `false` (the symbol-keyed interpreter) — drives
//! both through identical stage/routing schedules and mutation batches,
//! and requires identical observable behaviour at every step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdl_core::acl::UntrustedPolicy;
use wdl_core::{
    Delegation, Message, NameTerm, Payload, Peer, RelationKind, StageStats, WAtom, WBodyItem, WRule,
};
use wdl_datalog::{CmpOp, Expr, Symbol, Term, Value};
use wdl_net::sim::SimOp;

// ---------------------------------------------------------------------
// Harness: run two engine variants of the same system in lockstep
// ---------------------------------------------------------------------

/// Canonical, order-independent rendering of one stage's outgoing
/// messages. Per-message *internal* list order (e.g. the delegations
/// inside one `Payload::Delegate`) follows hash-map iteration and is not
/// part of the semantics, so each list is sorted before comparison.
fn canon_messages(msgs: &[Message]) -> Vec<String> {
    let mut out: Vec<String> = msgs
        .iter()
        .map(|m| match &m.payload {
            Payload::Facts {
                kind,
                additions,
                retractions,
            } => {
                let mut a: Vec<String> = additions.iter().map(|f| f.to_string()).collect();
                let mut r: Vec<String> = retractions.iter().map(|f| f.to_string()).collect();
                a.sort();
                r.sort();
                format!("{}->{} facts {kind:?} +{a:?} -{r:?}", m.from, m.to)
            }
            Payload::Delegate(ds) => {
                let mut d: Vec<String> = ds
                    .iter()
                    .map(|d| format!("{}=>{}: {}", d.origin, d.target, d.rule))
                    .collect();
                d.sort();
                format!("{}->{} delegate {d:?}", m.from, m.to)
            }
            Payload::Revoke(ids) => {
                let mut v: Vec<String> = ids.iter().map(|id| format!("{id:?}")).collect();
                v.sort();
                format!("{}->{} revoke {v:?}", m.from, m.to)
            }
            Payload::Session(bytes) => {
                format!("{}->{} session {} bytes", m.from, m.to, bytes.len())
            }
        })
        .collect();
    out.sort();
    out
}

/// Full observable state of one peer: every declared relation's contents,
/// sorted.
fn peer_state(p: &Peer) -> Vec<String> {
    let mut out = Vec::new();
    let mut decls: Vec<_> = p.schema().iter().collect();
    decls.sort_by_key(|d| d.rel.as_str());
    for d in decls {
        let mut rows: Vec<String> = p
            .relation_facts(d.rel)
            .iter()
            .map(|t| format!("{t:?}"))
            .collect();
        rows.sort();
        out.push(format!("{}({}): {rows:?}", d.rel, d.arity));
    }
    out
}

/// One system under test: peers in fixed order, manual message routing.
struct System {
    peers: Vec<Peer>,
}

impl System {
    fn new(peers: Vec<Peer>) -> System {
        System { peers }
    }

    fn peer_mut(&mut self, name: Symbol) -> &mut Peer {
        self.peers
            .iter_mut()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("unknown peer {name}"))
    }

    /// Runs one synchronous round: every peer stages (in order), then all
    /// messages are routed. Returns per-peer (stats, canonical messages,
    /// changed).
    fn round(&mut self) -> Vec<(StageStats, Vec<String>, bool)> {
        let mut reports = Vec::new();
        let mut pending: Vec<Message> = Vec::new();
        for p in &mut self.peers {
            let out = p.run_stage().expect("stage succeeds");
            reports.push((out.stats, canon_messages(&out.messages), out.changed));
            pending.extend(out.messages);
        }
        for msg in pending {
            if let Some(p) = self.peers.iter_mut().find(|p| p.name() == msg.to) {
                p.enqueue(msg);
            }
        }
        reports
    }

    fn quiesce(&mut self, max_rounds: usize) -> Vec<Vec<(StageStats, Vec<String>, bool)>> {
        let mut log = Vec::new();
        for _ in 0..max_rounds {
            let reports = self.round();
            let quiet = reports
                .iter()
                .all(|(_, msgs, changed)| msgs.is_empty() && !changed);
            log.push(reports);
            if quiet {
                break;
            }
        }
        log
    }

    fn state(&self) -> Vec<Vec<String>> {
        self.peers.iter().map(peer_state).collect()
    }
}

/// Asserts two engine variants stay identical through `rounds` synchronous
/// rounds, comparing per-stage counters, canonicalized messages, change
/// flags, and final relation contents.
fn assert_lockstep(compiled: &mut System, interp: &mut System, rounds: usize, label: &str) {
    for round in 0..rounds {
        let rc = compiled.round();
        let ri = interp.round();
        assert_eq!(rc.len(), ri.len(), "{label}: peer count, round {round}");
        for (pi, ((sc, mc, cc), (si, mi, ci))) in rc.iter().zip(&ri).enumerate() {
            assert_eq!(
                sc, si,
                "{label}: stage stats diverge (peer #{pi}, round {round})"
            );
            assert_eq!(
                mc, mi,
                "{label}: messages diverge (peer #{pi}, round {round})"
            );
            assert_eq!(cc, ci, "{label}: changed flag (peer #{pi}, round {round})");
        }
    }
    assert_eq!(
        compiled.state(),
        interp.state(),
        "{label}: final relation contents diverge"
    );
}

// ---------------------------------------------------------------------
// Random Wepic-style program generator
// ---------------------------------------------------------------------

const PEERS: [&str; 3] = ["pp0", "pp1", "pp2"];

fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

/// Builds one random system. Pure function of the seed: both engine
/// variants call this with the same seed and only differ in
/// `set_compiled_stage`.
fn random_system(seed: u64, compiled: bool) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut peers: Vec<Peer> = PEERS.iter().map(|n| open_peer(n)).collect();

    // Schema + base facts.
    for p in peers.iter_mut() {
        for v in ["v0", "v1", "v2", "mirror"] {
            p.declare(v, 1, RelationKind::Intensional).unwrap();
        }
        p.declare("pair", 2, RelationKind::Intensional).unwrap();
        p.declare("arch", 1, RelationKind::Extensional).unwrap();
        let n_e = rng.gen_range(2..=6usize);
        for _ in 0..n_e {
            let (a, b) = (rng.gen_range(0..5i64), rng.gen_range(0..5i64));
            p.insert_local("e", vec![Value::from(a), Value::from(b)])
                .unwrap();
        }
        let n_item = rng.gen_range(1..=5usize);
        for _ in 0..n_item {
            p.insert_local("item", vec![Value::from(rng.gen_range(0..6i64))])
                .unwrap();
        }
        if rng.gen_range(0..2) == 1 {
            p.insert_local("blocked", vec![Value::from(rng.gen_range(0..6i64))])
                .unwrap();
        } else {
            // Keep the relation declared so negation is well-formed either way.
            p.declare("blocked", 1, RelationKind::Extensional).unwrap();
        }
        // Selector relations holding peer names (for variable-peer atoms)
        // and relation names (for variable-relation atoms).
        let n_sel = rng.gen_range(0..=2usize);
        for _ in 0..n_sel {
            let target = PEERS[rng.gen_range(0..PEERS.len())];
            p.insert_local("sel", vec![Value::from(target)]).unwrap();
        }
        p.declare("sel", 1, RelationKind::Extensional).ok();
        p.insert_local(
            "relname",
            vec![Value::from(if rng.gen_range(0..2) == 0 {
                "v0"
            } else {
                "v1"
            })],
        )
        .unwrap();
    }

    // Random rules per peer.
    for pi in 0..peers.len() {
        let me = PEERS[pi];
        let other = PEERS[(pi + 1) % PEERS.len()];
        let n_rules = rng.gen_range(1..=4usize);
        for _ in 0..n_rules {
            let rule = match rng.gen_range(0..7u32) {
                // Local filter + negation.
                0 => WRule::new(
                    WAtom::at("v0", me, vec![Term::var("x")]),
                    vec![
                        WAtom::at("item", me, vec![Term::var("x")]).into(),
                        WBodyItem::not_atom(WAtom::at("blocked", me, vec![Term::var("x")])),
                    ],
                ),
                // Local join + comparison + assignment.
                1 => WRule::new(
                    WAtom::at("pair", me, vec![Term::var("x"), Term::var("w")]),
                    vec![
                        WAtom::at("e", me, vec![Term::var("x"), Term::var("y")]).into(),
                        WAtom::at("e", me, vec![Term::var("y"), Term::var("z")]).into(),
                        WBodyItem::cmp(CmpOp::Ge, Term::var("z"), Term::var("x")),
                        WBodyItem::assign(
                            "w",
                            Expr::bin(
                                wdl_datalog::BinOp::Add,
                                Expr::term(Term::var("z")),
                                Expr::term(Term::cst(1)),
                            ),
                        ),
                    ],
                ),
                // Remote head over a local body (derived fact shipping).
                2 => WRule::new(
                    WAtom::at("mirror", other, vec![Term::var("x")]),
                    vec![WAtom::at("item", me, vec![Term::var("x")]).into()],
                ),
                // Static remote body atom: delegation to `other`.
                3 => WRule::new(
                    WAtom::at("v1", me, vec![Term::var("x")]),
                    vec![
                        WAtom::at("item", me, vec![Term::var("x")]).into(),
                        WAtom::at("item", other, vec![Term::var("x")]).into(),
                    ],
                ),
                // Variable peer: delegates (or stays local) per `sel` row.
                4 => WRule::new(
                    WAtom::at("v2", me, vec![Term::var("x")]),
                    vec![
                        WAtom::at("sel", me, vec![Term::var("p")]).into(),
                        WAtom::new(
                            NameTerm::name("item"),
                            NameTerm::var("p"),
                            vec![Term::var("x")],
                        )
                        .into(),
                    ],
                ),
                // Variable relation name in the head (protocol dispatch).
                5 => WRule::new(
                    WAtom::new(NameTerm::var("r"), NameTerm::name(me), vec![Term::var("x")]),
                    vec![
                        WAtom::at("relname", me, vec![Term::var("r")]).into(),
                        WAtom::at("item", me, vec![Term::var("x")]).into(),
                    ],
                ),
                // Extensional head: buffered self-updates.
                _ => WRule::new(
                    WAtom::at("arch", me, vec![Term::var("x")]),
                    vec![WAtom::at("item", me, vec![Term::var("x")]).into()],
                ),
            };
            // Both variants generate the identical rule sequence; a safety
            // rejection (none expected for these templates) would hit both.
            peers[pi].add_rule(rule).unwrap();
        }
        // Random ACL restriction, *before* delegations evaluate: delegated
        // reads of the restricted relation get blocked and counted.
        if rng.gen_range(0..3) == 0 {
            let rel = ["item", "e", "blocked"][rng.gen_range(0..3usize)];
            peers[pi].grants_mut().restrict_read(rel);
        }
        // Random pre-installed delegation (as if a remote peer delegated
        // here), including the empty-local-prefix and fully-local shapes.
        if rng.gen_range(0..2) == 0 {
            let origin = PEERS[(pi + 2) % PEERS.len()];
            let rule = match rng.gen_range(0..3u32) {
                // Fully local body, remote head back to the origin.
                0 => WRule::new(
                    WAtom::at("mirror", origin, vec![Term::var("x")]),
                    vec![WAtom::at("item", me, vec![Term::var("x")]).into()],
                ),
                // Local prefix, then onward non-local atom.
                1 => WRule::new(
                    WAtom::at("v2", origin, vec![Term::var("x")]),
                    vec![
                        WAtom::at("item", me, vec![Term::var("x")]).into(),
                        WAtom::at("item", other, vec![Term::var("x")]).into(),
                    ],
                ),
                // Empty local prefix: the body starts non-local.
                _ => WRule::new(
                    WAtom::at("v2", origin, vec![Term::var("x")]),
                    vec![WAtom::at("item", other, vec![Term::var("x")]).into()],
                ),
            };
            let d = Delegation::new(Symbol::intern(origin), Symbol::intern(me), rule);
            peers[pi].install_delegation(d);
        }
    }

    for p in peers.iter_mut() {
        p.set_compiled_stage(compiled);
    }
    System::new(peers)
}

/// Deterministic mid-run mutations: deletions (retraction propagation),
/// fresh inserts, and a grants restriction — applied identically to both
/// variants.
fn mutate(sys: &mut System, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    for pi in 0..sys.peers.len() {
        let p = &mut sys.peers[pi];
        for _ in 0..rng.gen_range(0..=2usize) {
            let v = rng.gen_range(0..6i64);
            let _ = p.delete_local("item", vec![Value::from(v)]);
        }
        for _ in 0..rng.gen_range(0..=2usize) {
            let v = rng.gen_range(0..6i64);
            p.insert_local("item", vec![Value::from(v)]).unwrap();
        }
        if rng.gen_range(0..4) == 0 {
            p.grants_mut().restrict_read("item");
        }
    }
}

#[test]
fn random_programs_compiled_equals_interpreted() {
    let seeds: Vec<u64> = match std::env::var("WDL_PARITY_SEED") {
        Ok(s) => vec![s.parse().expect("WDL_PARITY_SEED must be a u64")],
        Err(_) => (0..25).collect(),
    };
    for seed in seeds {
        let mut compiled = random_system(seed, true);
        let mut interp = random_system(seed, false);
        let label = format!("seed {seed} (rerun: WDL_PARITY_SEED={seed})");
        assert_lockstep(&mut compiled, &mut interp, 4, &label);
        // Mid-run churn: deletions, inserts, grants changes.
        mutate(&mut compiled, seed);
        mutate(&mut interp, seed);
        assert_lockstep(
            &mut compiled,
            &mut interp,
            4,
            &format!("{label} after churn"),
        );
    }
}

// ---------------------------------------------------------------------
// Simnet conformance scenarios
// ---------------------------------------------------------------------

/// Runs every simnet conformance scenario generator under both engines,
/// applying the scripted mutation batches between quiescence runs, and
/// requires identical stage behaviour and final states.
#[test]
fn simnet_scenarios_compiled_equals_interpreted() {
    type Gen = fn(u64) -> wdl_net::sim::oracle::Scenario;
    let gens: [(&str, Gen); 5] = [
        ("delegation_fanout", wepic::scenarios::delegation_fanout),
        ("delegation_churn", wepic::scenarios::delegation_churn),
        ("acl_restricted", wepic::scenarios::acl_restricted),
        ("transfer_dispatch", wepic::scenarios::transfer_dispatch),
        ("publish_chain", wepic::scenarios::publish_chain),
    ];
    for (name, gen) in gens {
        for seed in 0..3u64 {
            let scenario = gen(seed);
            let build = |compiled: bool| {
                let mut peers = (scenario.build)();
                for p in peers.iter_mut() {
                    p.set_compiled_stage(compiled);
                }
                System::new(peers)
            };
            let mut compiled = build(true);
            let mut interp = build(false);
            let label = format!("{name}/{seed} ({})", scenario.name);
            for (bi, batch) in scenario.batches.iter().enumerate() {
                for sys in [&mut compiled, &mut interp] {
                    for (peer, op) in batch {
                        let p = sys.peer_mut(*peer);
                        match op {
                            SimOp::Insert { rel, tuple } => {
                                p.insert_local(*rel, tuple.clone()).unwrap();
                            }
                            SimOp::Delete { rel, tuple } => {
                                let _ = p.delete_local(*rel, tuple.clone()).unwrap();
                            }
                        }
                    }
                }
                let lc = compiled.quiesce(24);
                let li = interp.quiesce(24);
                assert_eq!(lc, li, "{label}: stage logs diverge after batch {bi}");
                assert_eq!(
                    compiled.state(),
                    interp.state(),
                    "{label}: states diverge after batch {bi}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Regression pins (ISSUE 5 satellites)
// ---------------------------------------------------------------------

/// A delegated rule whose local prefix is **empty** (the body starts with
/// a non-local atom) behaves identically under compiled and interpreted
/// stage evaluation: one onward delegation, no local reads, no blocked
/// reads.
#[test]
fn delegated_rule_with_empty_local_prefix_parity() {
    let build = |compiled: bool| {
        let mut p = open_peer("hopper");
        p.set_compiled_stage(compiled);
        p.declare("out", 1, RelationKind::Intensional).unwrap();
        p.install_delegation(Delegation::new(
            Symbol::intern("origin-peer"),
            Symbol::intern("hopper"),
            WRule::new(
                WAtom::at("out", "origin-peer", vec![Term::var("x")]),
                vec![WAtom::at("src", "third-peer", vec![Term::var("x")]).into()],
            ),
        ));
        p
    };
    let mut outs = Vec::new();
    for compiled in [true, false] {
        let mut p = build(compiled);
        let out = p.run_stage().unwrap();
        assert_eq!(out.stats.delegations_out, 1, "compiled={compiled}");
        assert_eq!(out.stats.reads_blocked, 0, "compiled={compiled}");
        outs.push((out.stats, canon_messages(&out.messages), peer_state(&p)));
    }
    assert_eq!(outs[0], outs[1]);
}

/// A delegated rule whose body is **fully local** behaves identically:
/// same derivations, same shipped facts, stage for stage.
#[test]
fn fully_local_delegated_rule_parity() {
    let build = |compiled: bool| {
        let mut p = open_peer("worker");
        p.set_compiled_stage(compiled);
        p.declare("feed", 1, RelationKind::Intensional).unwrap();
        for i in 0..4 {
            p.insert_local("src", vec![Value::from(i)]).unwrap();
        }
        // Local head (feeds the peer's own view)...
        p.install_delegation(Delegation::new(
            Symbol::intern("origin-peer"),
            Symbol::intern("worker"),
            WRule::new(
                WAtom::at("feed", "worker", vec![Term::var("x")]),
                vec![WAtom::at("src", "worker", vec![Term::var("x")]).into()],
            ),
        ));
        // ...and a remote head (ships derived facts back).
        p.install_delegation(Delegation::new(
            Symbol::intern("origin-peer"),
            Symbol::intern("worker"),
            WRule::new(
                WAtom::at("mirror", "origin-peer", vec![Term::var("x")]),
                vec![WAtom::at("src", "worker", vec![Term::var("x")]).into()],
            ),
        ));
        p
    };
    let mut logs = Vec::new();
    for compiled in [true, false] {
        let mut p = build(compiled);
        let mut log = Vec::new();
        for _ in 0..3 {
            let out = p.run_stage().unwrap();
            log.push((out.stats, canon_messages(&out.messages), out.changed));
        }
        assert_eq!(p.relation_facts("feed").len(), 4, "compiled={compiled}");
        log.push((StageStats::default(), peer_state(&p), false));
        logs.push(log);
    }
    assert_eq!(logs[0], logs[1]);
}
