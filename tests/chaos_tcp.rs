//! Chaos TCP conformance: the full peer stack over *real* sockets with a
//! hostile proxy in the middle.
//!
//! Every ordered peer pair talks through its own [`ChaosProxy`], which
//! drops frames, delays them, severs connections between frames, and
//! tears frames mid-body — all decided by a seeded RNG. The session layer
//! underneath each peer must upgrade that wreckage back to exactly-once
//! in-order delivery, so the run's final state must equal the fault-free
//! reference computed without any network at all.
//!
//! Seed contract (mirrors `sim_conformance`): the pinned default seeds
//! can be overridden with
//!
//! ```text
//! WDL_CHAOS_SEEDS=5,6,7 cargo test --test chaos_tcp        # a list
//! WDL_CHAOS_SEEDS=10..14 cargo test --test chaos_tcp       # a range
//! ```
//!
//! and a failure prints the `WDL_CHAOS_SEEDS=<seed>` line that replays
//! the same fault decisions (modulo kernel scheduling of real sockets —
//! the frame-level fault sequence per connection is seed-exact).

use std::time::{Duration, Instant};
use webdamlog::core::Peer;
use webdamlog::net::chaos::{ChaosConfig, ChaosProxy};
use webdamlog::net::node::PeerNode;
use webdamlog::net::session::{SessionConfig, SessionEndpoint};
use webdamlog::net::sim::SimOp;
use webdamlog::net::tcp::TcpEndpoint;
use webdamlog::net::Transport;
use wepic::scenarios;

/// Default pinned seeds — small because each run exercises real sockets
/// and wall-clock retransmission timers. CI sweeps a wider pin.
const PINNED: &[u64] = &[1, 2, 3];

fn seeds() -> Vec<u64> {
    if let Ok(v) = std::env::var("WDL_CHAOS_SEEDS") {
        let v = v.trim();
        if let Some((lo, hi)) = v.split_once("..") {
            if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                return (lo..hi).collect();
            }
        }
        let list: Vec<u64> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
        if !list.is_empty() {
            return list;
        }
    }
    PINNED.to_vec()
}

type ChaosNode = PeerNode<SessionEndpoint<TcpEndpoint>>;

/// Steps every node until the whole network is quiet (no stage changes,
/// no traffic, nothing unacked) for a sustained streak, or panics with
/// the reproduction line.
fn quiesce(nodes: &mut [ChaosNode], seed: u64, label: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut streak = 0;
    while Instant::now() < deadline {
        let mut active = false;
        for node in nodes.iter_mut() {
            let r = node.step().expect("step");
            active |= r.changed || r.received > 0 || r.sent > 0 || r.deferred > 0;
            active |= node.transport().pending_work() > 0;
        }
        streak = if active { 0 } else { streak + 1 };
        if streak >= 25 {
            return;
        }
        // Real wall-clock timers drive retransmission; give them room.
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!(
        "\n[chaos-tcp] seed {seed}: network failed to quiesce at {label}\n\
         reproduce: WDL_CHAOS_SEEDS={seed} cargo test --test chaos_tcp\n"
    );
}

fn run_seed(seed: u64) -> u64 {
    let sc = scenarios::delegation_fanout(seed);
    let reference = sc.reference().expect("fault-free reference");

    // Real endpoints, one per peer.
    let peers: Vec<Peer> = (sc.build)();
    let names: Vec<_> = peers.iter().map(|p| p.name()).collect();
    let mut endpoints: Vec<TcpEndpoint> = names
        .iter()
        .map(|n| TcpEndpoint::bind(*n, "127.0.0.1:0").expect("bind"))
        .collect();

    // A hostile chaos proxy per ordered pair — data one way, acks the
    // other, both through independently faulty wires.
    let mut proxies = Vec::new();
    for i in 0..names.len() {
        for j in 0..names.len() {
            if i == j {
                continue;
            }
            let pair_seed = seed ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9E37_79B9);
            let proxy =
                ChaosProxy::spawn(endpoints[j].local_addr(), ChaosConfig::hostile(pair_seed))
                    .expect("spawn proxy");
            endpoints[i].register(names[j], proxy.local_addr());
            proxies.push(proxy);
        }
    }

    let mut nodes: Vec<ChaosNode> = peers
        .into_iter()
        .zip(endpoints.drain(..))
        .map(|(peer, ep)| {
            let cfg = SessionConfig {
                seed,
                ..SessionConfig::default()
            };
            PeerNode::new(peer, SessionEndpoint::new(ep, 0, cfg))
        })
        .collect();

    quiesce(&mut nodes, seed, "initial rules");
    for (bi, batch) in sc.batches.iter().enumerate() {
        for (peer, op) in batch {
            let node = nodes
                .iter_mut()
                .find(|n| n.peer().name() == *peer)
                .expect("scenario names a known peer");
            match op {
                SimOp::Insert { rel, tuple } => {
                    node.peer_mut().insert_local(*rel, tuple.clone()).unwrap();
                }
                SimOp::Delete { rel, tuple } => {
                    node.peer_mut().delete_local(*rel, tuple.clone()).unwrap();
                }
            }
        }
        quiesce(&mut nodes, seed, &format!("batch {bi}"));
    }

    let mut faults_seen = 0u64;
    for proxy in &proxies {
        let s = proxy.stats();
        faults_seen += s.dropped.load(std::sync::atomic::Ordering::Relaxed)
            + s.severed.load(std::sync::atomic::Ordering::Relaxed)
            + s.split.load(std::sync::atomic::Ordering::Relaxed)
            + s.delayed.load(std::sync::atomic::Ordering::Relaxed);
    }

    for &(peer, rel) in &sc.watched {
        let node = nodes.iter().find(|n| n.peer().name() == peer).unwrap();
        let got: std::collections::BTreeSet<_> =
            node.peer().relation_facts(rel).into_iter().collect();
        assert_eq!(
            &got,
            reference.final_state.get(&(peer, rel)).unwrap(),
            "\n[chaos-tcp] seed {seed}: {rel}@{peer} diverged from the fault-free \
             reference ({faults_seen} injected faults)\n\
             reproduce: WDL_CHAOS_SEEDS={seed} cargo test --test chaos_tcp\n"
        );
    }
    faults_seen
}

#[test]
fn chaotic_tcp_converges_to_the_fault_free_reference() {
    let mut faults = 0u64;
    for seed in seeds() {
        faults += run_seed(seed);
    }
    // The sweep must actually have hurt: a silently transparent proxy
    // would make this test prove nothing.
    assert!(
        faults > 0,
        "chaos proxies injected no faults across the sweep"
    );
}
