//! Peer restarts mid-conference: snapshot → drop → restore → reconverge.
//! The paper's vision (§1): users run their peers on their own machines
//! with their own data — so machines reboot and peers must come back.

use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::net::snapshot;
use webdamlog::parser::{load_program, parse_rule};

fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

/// Full restart cycle: the restored peer still serves its delegated rules.
#[test]
fn restored_peer_resumes_serving_delegations() {
    let mut rt = LocalRuntime::new();

    let mut viewer = open_peer("prViewer");
    viewer
        .declare("attendeePictures", 4, RelationKind::Intensional)
        .unwrap();
    viewer
        .add_rule(
            parse_rule(
                "attendeePictures@prViewer($id,$n,$o,$d) :- \
                 selectedAttendee@prViewer($a), pictures@$a($id,$n,$o,$d);",
            )
            .unwrap(),
        )
        .unwrap();
    viewer
        .insert_local("selectedAttendee", vec![Value::from("prSource")])
        .unwrap();
    rt.add_peer(viewer).unwrap();

    let mut source = open_peer("prSource");
    load_program(
        &mut source,
        r#"pictures@prSource(1, "a.jpg", "prSource", 0x01);"#,
    )
    .unwrap();
    rt.add_peer(source).unwrap();

    rt.run_to_quiescence(32).unwrap();
    assert_eq!(
        rt.peer("prViewer")
            .unwrap()
            .relation_facts("attendeePictures")
            .len(),
        1
    );
    assert_eq!(
        rt.peer("prSource").unwrap().installed_delegations().len(),
        1
    );

    // "Reboot" the source: snapshot, remove, restore from bytes.
    let bytes = snapshot::save(rt.peer("prSource").unwrap());
    rt.remove_peer("prSource").unwrap();
    let restored = snapshot::load(&bytes).unwrap();
    assert_eq!(
        restored.installed_delegations().len(),
        1,
        "delegation survived"
    );
    rt.add_peer(restored).unwrap();

    // New data at the restored peer still flows through the delegation.
    rt.peer_mut("prSource")
        .unwrap()
        .insert_local(
            "pictures",
            vec![
                Value::from(2),
                Value::from("b.jpg"),
                Value::from("prSource"),
                Value::bytes(&[2]),
            ],
        )
        .unwrap();
    let r = rt.run_to_quiescence(32).unwrap();
    assert!(r.quiescent);
    assert_eq!(
        rt.peer("prViewer")
            .unwrap()
            .relation_facts("attendeePictures")
            .len(),
        2,
        "restored peer resumed pushing view diffs"
    );
}

/// Snapshots preserve the whole programmable surface: schema, facts,
/// rules, trust, grants — verified by behavioural equivalence after reload.
#[test]
fn snapshot_behavioural_equivalence() {
    let mut original = open_peer("beq");
    load_program(
        &mut original,
        r#"
        extensional rate@beq/2;
        intensional high@beq/1;
        rate@beq(1, 5);
        rate@beq(2, 2);
        high@beq($id) :- rate@beq($id, $r), $r >= 4;
        "#,
    )
    .unwrap();
    original.grants_mut().restrict_read("rate");

    let mut copy = snapshot::load(&snapshot::save(&original)).unwrap();
    let mut original = original;
    original.run_stage().unwrap();
    copy.run_stage().unwrap();
    assert_eq!(original.relation_facts("high"), copy.relation_facts("high"));
    assert_eq!(original.grants().export(), copy.grants().export());
}

/// File-based round trip inside a temp dir.
#[test]
fn snapshot_file_lifecycle() {
    let dir = std::env::temp_dir().join("wdl-persist-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("it-peer.snap");

    let mut p = open_peer("filePeer");
    load_program(&mut p, r#"notes@filePeer("remember this");"#).unwrap();
    snapshot::save_to_file(&p, &path).unwrap();

    let q = snapshot::load_from_file(&path).unwrap();
    assert_eq!(q.relation_facts("notes").len(), 1);
    std::fs::remove_file(&path).ok();
}
