//! Property tests for the parallel evaluation subsystem (ISSUE 2): every
//! parallel schedule must compute exactly what the sequential one does.
//!
//! Two determinism contracts are checked over seeded random cases
//! (hand-rolled generators — no `proptest` offline; failures name the case
//! seed for replay):
//!
//! * **Sharded seminaive ≡ serial.** `Program::eval` with
//!   `workers ∈ {2, 3, 4}` over random databases — recursion, stratified
//!   negation, comparisons and assignments — produces the same relations
//!   *and the same `EvalStats` counters* as `workers = 1`. Randomizing the
//!   data randomizes the hash sharding, so shard boundaries fall
//!   differently in every case.
//! * **`par_tick` ≡ `tick`.** A ring of peers — compiled views with
//!   negation, a recursive (DRed-maintained) closure, remote-head rules
//!   shipping derived facts (and their retractions) around the ring — is
//!   built twice and driven to quiescence, sequentially in one world and
//!   concurrently (random worker count, randomly shuffled peer insertion
//!   order) in the other, through random churn batches that exercise the
//!   incremental-maintenance path from PR 1. The quiescent states must
//!   agree peer by peer, relation by relation. In lockstep (same insertion
//!   order) the two runtimes must also emit identical per-round message
//!   counts — the peer-to-peer diffs are the same, round for round.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{Peer, RelationKind, WAtom, WBodyItem, WRule};
use webdamlog::datalog::{
    Atom, BodyItem, Database, EvalStrategy, Fact, Program, Rule, Term, Value,
};

fn atom(pred: &str, vars: &[&str]) -> Atom {
    Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
}

/// Transitive closure: one recursive stratum.
fn tc_program() -> Program {
    Program::new(vec![
        Rule::new(
            atom("path", &["x", "y"]),
            vec![atom("edge", &["x", "y"]).into()],
        ),
        Rule::new(
            atom("path", &["x", "z"]),
            vec![
                atom("edge", &["x", "y"]).into(),
                atom("path", &["y", "z"]).into(),
            ],
        ),
    ])
    .unwrap()
}

/// Recursion, negation on top, and a join through the negation — plus a
/// comparison filter, so the delta-rewritten bodies mix every item kind.
fn reach_program() -> Program {
    Program::new(vec![
        Rule::new(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
        Rule::new(
            atom("reach", &["y"]),
            vec![
                atom("reach", &["x"]).into(),
                atom("edge", &["x", "y"]).into(),
            ],
        ),
        Rule::new(
            atom("unreach", &["x"]),
            vec![
                atom("node", &["x"]).into(),
                BodyItem::not_atom(atom("reach", &["x"])),
            ],
        ),
        Rule::new(
            atom("alert", &["x", "y"]),
            vec![
                atom("unreach", &["x"]).into(),
                atom("watch", &["x", "y"]).into(),
                BodyItem::cmp(
                    webdamlog::datalog::CmpOp::Lt,
                    Term::var("x"),
                    Term::var("y"),
                ),
            ],
        ),
    ])
    .unwrap()
}

fn random_graph_db(rng: &mut StdRng, nodes: i64, edges: usize) -> Database {
    let mut db = Database::new();
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        db.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)]))
            .unwrap();
    }
    for n in 0..nodes {
        db.insert(Fact::new("node", vec![Value::from(n)])).unwrap();
        if rng.gen_bool(0.3) {
            db.insert(Fact::new("watch", vec![Value::from(n), Value::from(n + 1)]))
                .unwrap();
        }
    }
    db.insert(Fact::new("src", vec![Value::from(0)])).unwrap();
    db
}

fn assert_dbs_equal(a: &Database, b: &Database, ctx: &str) {
    assert_eq!(a.fact_count(), b.fact_count(), "{ctx}: fact counts differ");
    for fact in a.facts() {
        assert!(
            b.contains(&fact),
            "{ctx}: {fact} missing from serial result"
        );
    }
}

#[test]
fn sharded_seminaive_equals_serial_on_random_cases() {
    for case in 0u64..20 {
        let mut rng = StdRng::seed_from_u64(0xE11_000 + case);
        let nodes = rng.gen_range(4..24);
        let edges = rng.gen_range(4..60);
        let db = random_graph_db(&mut rng, nodes, edges);
        for program in [tc_program(), reach_program()] {
            let (serial, serial_stats) = program.eval_with(&db, EvalStrategy::Seminaive).unwrap();
            for workers in 2..=4 {
                let par_program = program.clone().with_workers(workers);
                let (par, par_stats) = par_program.eval_with(&db, EvalStrategy::Seminaive).unwrap();
                let ctx = format!("case {case}, workers {workers}");
                assert_dbs_equal(&par, &serial, &ctx);
                assert_eq!(par_stats, serial_stats, "{ctx}: stats differ");
            }
        }
    }
}

// ---------------------------------------------------------------------
// par_tick ≡ tick
// ---------------------------------------------------------------------

const RING: usize = 4;
const VALS: i64 = 10;

fn peer_name(i: usize) -> String {
    format!("ring{i}")
}

/// One churn operation, addressed by peer *name* so the same script can be
/// replayed into runtimes with different peer insertion orders.
#[derive(Clone, Debug)]
enum Op {
    InsertItem(usize, i64),
    DeleteItem(usize, i64),
    InsertHidden(usize, i64),
    DeleteHidden(usize, i64),
    InsertEdge(usize, i64, i64),
    DeleteEdge(usize, i64, i64),
}

fn random_ops(rng: &mut StdRng, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| {
            let p = rng.gen_range(0..RING);
            match rng.gen_range(0..6) {
                0 => Op::InsertItem(p, rng.gen_range(0..VALS)),
                1 => Op::DeleteItem(p, rng.gen_range(0..VALS)),
                2 => Op::InsertHidden(p, rng.gen_range(0..VALS)),
                3 => Op::DeleteHidden(p, rng.gen_range(0..VALS)),
                4 => Op::InsertEdge(p, rng.gen_range(0..6), rng.gen_range(0..6)),
                _ => Op::DeleteEdge(p, rng.gen_range(0..6), rng.gen_range(0..6)),
            }
        })
        .collect()
}

fn apply_op(rt: &mut LocalRuntime, op: &Op) {
    let (idx, rel, vals) = match op {
        Op::InsertItem(p, v) | Op::DeleteItem(p, v) => (*p, "item", vec![Value::from(*v)]),
        Op::InsertHidden(p, v) | Op::DeleteHidden(p, v) => (*p, "hidden", vec![Value::from(*v)]),
        Op::InsertEdge(p, a, b) | Op::DeleteEdge(p, a, b) => {
            (*p, "edge", vec![Value::from(*a), Value::from(*b)])
        }
    };
    let peer = rt.peer_mut(peer_name(idx).as_str()).unwrap();
    match op {
        Op::InsertItem(..) | Op::InsertHidden(..) | Op::InsertEdge(..) => {
            peer.insert_local(rel, vals).unwrap();
        }
        _ => {
            let _ = peer.delete_local(rel, vals).unwrap_or(false);
        }
    }
}

/// Builds one ring peer: a compiled negation view, a recursive closure
/// (DRed under deletion), a compiled consumer of remote contributions, and
/// a remote-head rule shipping the view to the next peer in the ring.
fn ring_peer(i: usize, rng: &mut StdRng) -> Peer {
    let me = peer_name(i);
    let next = peer_name((i + 1) % RING);
    let mut p = Peer::new(me.as_str());
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    for rel in ["visible", "mirror", "echo"] {
        p.declare(rel, 1, RelationKind::Intensional).unwrap();
    }
    p.declare("path", 2, RelationKind::Intensional).unwrap();
    let local = |pred: &str, vars: &[&str]| {
        WAtom::at(
            pred,
            me.as_str(),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    };
    // visible(x) :- item(x), not hidden(x)   [compiled, counting]
    p.add_rule(WRule::new(
        local("visible", &["x"]),
        vec![
            local("item", &["x"]).into(),
            WBodyItem::not_atom(local("hidden", &["x"])),
        ],
    ))
    .unwrap();
    // path closure                            [compiled, DRed]
    p.add_rule(WRule::new(
        local("path", &["x", "y"]),
        vec![local("edge", &["x", "y"]).into()],
    ))
    .unwrap();
    p.add_rule(WRule::new(
        local("path", &["x", "z"]),
        vec![
            local("edge", &["x", "y"]).into(),
            local("path", &["y", "z"]).into(),
        ],
    ))
    .unwrap();
    // echo(x) :- mirror(x)                    [compiled over remote contribs]
    p.add_rule(WRule::new(
        local("echo", &["x"]),
        vec![local("mirror", &["x"]).into()],
    ))
    .unwrap();
    // mirror@next(x) :- visible(x)            [dynamic: remote head]
    p.add_rule(WRule::new(
        WAtom::at("mirror", next.as_str(), vec![Term::var("x")]),
        vec![local("visible", &["x"]).into()],
    ))
    .unwrap();
    for _ in 0..rng.gen_range(2..8) {
        let _ = p.insert_local("item", vec![Value::from(rng.gen_range(0..VALS))]);
    }
    if rng.gen_bool(0.5) {
        let _ = p.insert_local("hidden", vec![Value::from(rng.gen_range(0..VALS))]);
    }
    for _ in 0..rng.gen_range(1..6) {
        let _ = p.insert_local(
            "edge",
            vec![
                Value::from(rng.gen_range(0..6i64)),
                Value::from(rng.gen_range(0..6i64)),
            ],
        );
    }
    p
}

/// Builds the ring with peers *inserted* in `order` (facts and rules do not
/// depend on the order; only the runtime's scheduling does).
fn build_ring(seed: u64, order: &[usize]) -> LocalRuntime {
    let mut peers: Vec<Option<Peer>> = (0..RING)
        .map(|i| {
            // Per-peer RNG so content is identical whatever the order.
            let mut rng = StdRng::seed_from_u64(seed ^ (0xbeef + i as u64));
            Some(ring_peer(i, &mut rng))
        })
        .collect();
    let mut rt = LocalRuntime::new();
    for &i in order {
        rt.add_peer(peers[i].take().unwrap()).unwrap();
    }
    rt
}

fn quiescent_state(rt: &LocalRuntime) -> Vec<(String, String, Vec<Vec<Value>>)> {
    let mut out = Vec::new();
    for i in 0..RING {
        let name = peer_name(i);
        let peer = rt.peer(name.as_str()).unwrap();
        for rel in [
            "item", "hidden", "edge", "visible", "path", "mirror", "echo",
        ] {
            let mut tuples: Vec<Vec<Value>> = peer
                .relation_facts(rel)
                .into_iter()
                .map(|t| t.to_vec())
                .collect();
            tuples.sort();
            out.push((name.clone(), rel.to_string(), tuples));
        }
    }
    out
}

#[test]
fn par_tick_matches_tick_under_random_schedules() {
    for case in 0u64..12 {
        let mut rng = StdRng::seed_from_u64(0x9A7_000 + case);
        let workers = rng.gen_range(2..=4);
        // Random peer insertion order for the parallel world.
        let mut order: Vec<usize> = (0..RING).collect();
        for i in (1..RING).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }

        let mut seq = build_ring(case, &[0, 1, 2, 3]);
        let mut par = build_ring(case, &order);
        par.set_workers(workers);

        let r = seq.run_to_quiescence(64).unwrap();
        assert!(r.quiescent, "case {case}: sequential did not quiesce");
        let r = par.par_run_to_quiescence(64).unwrap();
        assert!(r.quiescent, "case {case}: parallel did not quiesce");
        assert_eq!(
            quiescent_state(&seq),
            quiescent_state(&par),
            "case {case}: initial quiescent states diverge (workers {workers}, order {order:?})"
        );

        // Churn batches: deletions drive the incremental path (counting
        // retractions, DRed, cross-peer retraction of shipped facts).
        for batch in 0..3 {
            let ops = random_ops(&mut rng, 6);
            for op in &ops {
                apply_op(&mut seq, op);
                apply_op(&mut par, op);
            }
            let r = seq.run_to_quiescence(64).unwrap();
            assert!(r.quiescent, "case {case} batch {batch}: seq stuck");
            let r = par.par_run_to_quiescence(64).unwrap();
            assert!(r.quiescent, "case {case} batch {batch}: par stuck");
            assert_eq!(
                quiescent_state(&seq),
                quiescent_state(&par),
                "case {case} batch {batch}: states diverge after churn \
                 (workers {workers}, order {order:?}, ops {ops:?})"
            );
        }
    }
}

/// With identical insertion orders, `par_tick` is *observationally
/// identical* to `tick` round by round: same per-round message and
/// undeliverable counts, same changed flag — the peer-to-peer diffs match
/// exactly, not just at quiescence.
#[test]
fn par_tick_emits_identical_per_round_diffs_in_lockstep() {
    for case in 0u64..6 {
        let mut seq = build_ring(0xD1FF + case, &[0, 1, 2, 3]);
        let mut par = build_ring(0xD1FF + case, &[0, 1, 2, 3]);
        par.set_workers(3);
        for round in 0..24 {
            let a = seq.tick().unwrap();
            let b = par.par_tick().unwrap();
            assert_eq!(
                (a.messages, a.undeliverable, a.changed),
                (b.messages, b.undeliverable, b.changed),
                "case {case}: round {round} diverged"
            );
            for (peer, stats) in &a.stats {
                assert_eq!(
                    Some(stats),
                    b.stats.get(peer),
                    "case {case}: round {round} stats diverged at {peer}"
                );
            }
            if !a.changed && a.messages == 0 {
                break;
            }
        }
        assert_eq!(quiescent_state(&seq), quiescent_state(&par));
    }
}
