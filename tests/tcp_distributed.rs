//! The paper's deployment, for real: three peers in separate threads
//! speaking the binary wire protocol over TCP sockets, running the Wepic
//! scenario of Figure 2 end to end.

use std::time::Duration;
use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::Peer;
use webdamlog::datalog::Value;
use webdamlog::net::node::{NodeHandle, PeerNode};
use webdamlog::net::tcp::TcpEndpoint;
use webdamlog::wepic::{ops, rules, schema, Picture};

fn attendee(name: &str, sigmod: &str) -> Peer {
    let mut p = Peer::new(name);
    schema::declare_attendee(&mut p).unwrap();
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p.add_rule(rules::attendee_pictures(name).unwrap()).unwrap();
    p.add_rule(rules::transfer(name).unwrap()).unwrap();
    p.add_rule(rules::publish_to_sigmod(name, sigmod).unwrap())
        .unwrap();
    p
}

#[test]
fn three_peer_wepic_over_tcp() {
    // Bind all three endpoints on ephemeral loopback ports.
    let sigmod_ep = TcpEndpoint::bind("tcpSigmod", "127.0.0.1:0").unwrap();
    let emilien_ep = TcpEndpoint::bind("tcpEmilien", "127.0.0.1:0").unwrap();
    let jules_ep = TcpEndpoint::bind("tcpJules", "127.0.0.1:0").unwrap();
    let addrs = [
        ("tcpSigmod", sigmod_ep.local_addr()),
        ("tcpEmilien", emilien_ep.local_addr()),
        ("tcpJules", jules_ep.local_addr()),
    ];
    for ep in [&sigmod_ep, &emilien_ep, &jules_ep] {
        for (name, addr) in addrs {
            ep.register(name, addr);
        }
    }

    // sigmod: the cloud registry.
    let mut sigmod = Peer::new("tcpSigmod");
    schema::declare_sigmod(&mut sigmod).unwrap();
    sigmod
        .acl_mut()
        .set_untrusted_policy(UntrustedPolicy::Accept);

    // Émilien has pictures; Jules selects Émilien.
    let mut emilien = attendee("tcpEmilien", "tcpSigmod");
    ops::upload_picture(
        &mut emilien,
        &Picture {
            id: 1,
            name: "sea.jpg".into(),
            owner: "tcpEmilien".into(),
            data: vec![0x64, 0, 0],
        },
    )
    .unwrap();
    let mut jules = attendee("tcpJules", "tcpSigmod");
    ops::select_attendee(&mut jules, "tcpEmilien").unwrap();

    // Launch all three free-running.
    let hs = NodeHandle::spawn(PeerNode::new(sigmod, sigmod_ep), Duration::from_millis(2));
    let he = NodeHandle::spawn(PeerNode::new(emilien, emilien_ep), Duration::from_millis(2));
    let hj = NodeHandle::spawn(PeerNode::new(jules, jules_ep), Duration::from_millis(2));

    // Give the mesh time to converge (delegation + facts, several hops).
    std::thread::sleep(Duration::from_millis(800));

    let jules = hj.stop().unwrap();
    let emilien = he.stop().unwrap();
    let sigmod = hs.stop().unwrap();

    // Jules pulled Émilien's picture through a delegated rule over TCP.
    assert_eq!(
        jules.peer().relation_facts("attendeePictures").len(),
        1,
        "delegation round trip over TCP"
    );
    // The delegated rules are installed at Émilien (both the view rule and
    // the transfer rule delegate once Émilien is selected).
    assert_eq!(emilien.peer().installed_delegations().len(), 2);
    // The upload also propagated to the sigmod peer.
    assert_eq!(
        sigmod.peer().relation_facts("pictures").len(),
        1,
        "publish-to-sigmod over TCP"
    );
}

#[test]
fn late_tcp_peer_discovers_and_publishes() {
    let sigmod_ep = TcpEndpoint::bind("tcp2Sigmod", "127.0.0.1:0").unwrap();
    let sigmod_addr = sigmod_ep.local_addr();
    let mut sigmod = Peer::new("tcp2Sigmod");
    schema::declare_sigmod(&mut sigmod).unwrap();
    sigmod
        .acl_mut()
        .set_untrusted_policy(UntrustedPolicy::Accept);
    let hs = NodeHandle::spawn(PeerNode::new(sigmod, sigmod_ep), Duration::from_millis(2));

    // The audience peer starts later, knows only sigmod's address.
    std::thread::sleep(Duration::from_millis(100));
    let late_ep = TcpEndpoint::bind("tcp2Late", "127.0.0.1:0").unwrap();
    late_ep.register("tcp2Sigmod", sigmod_addr);
    let mut late = attendee("tcp2Late", "tcp2Sigmod");
    late.insert_remote("tcp2Sigmod", "attendees", vec![Value::from("tcp2Late")]);
    ops::upload_picture(
        &mut late,
        &Picture {
            id: 9,
            name: "late.jpg".into(),
            owner: "tcp2Late".into(),
            data: vec![9],
        },
    )
    .unwrap();
    let hl = NodeHandle::spawn(PeerNode::new(late, late_ep), Duration::from_millis(2));

    std::thread::sleep(Duration::from_millis(500));
    let sigmod = hs.stop().unwrap();
    let _ = hl.stop().unwrap();

    assert_eq!(sigmod.peer().relation_facts("attendees").len(), 1);
    assert_eq!(sigmod.peer().relation_facts("pictures").len(), 1);
}
