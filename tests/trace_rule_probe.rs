//! Regression: fully-local maintained-view rules must emit `RuleEval`
//! trace events on *both* evaluation paths — the from-scratch view
//! construction (where a freshly added rule does all of its first-stage
//! work) and the differential maintenance passes that follow. The build
//! path was once silent: `profile on` + one insert + `run` in the REPL
//! left `top` empty because every derivation happened inside
//! `MaterializedView::new`, outside the profiled apply.

use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::{Symbol, Value};

#[test]
fn local_rule_emits_rule_eval_events() {
    let mut rt = LocalRuntime::new();
    let mut p = Peer::new("bob");
    p.acl_mut()
        .set_untrusted_policy(webdamlog::core::acl::UntrustedPolicy::Accept);
    rt.add_peer(p).unwrap();
    let bob = rt.peer_mut("bob").unwrap();
    bob.declare("out", 1, RelationKind::Intensional).unwrap();
    bob.add_rule(webdamlog::parser::parse_rule("out@bob($x) :- item@bob($x);").unwrap())
        .unwrap();
    rt.set_tracing(true);
    rt.peer_mut("bob")
        .unwrap()
        .insert_local("item", vec![Value::from(7)])
        .unwrap();
    rt.run_to_quiescence(8).unwrap();

    let label = Symbol::intern("out@bob");
    let build_calls = {
        let agg = rt.trace().unwrap();
        assert_eq!(
            rt.peer("bob").unwrap().relation_facts("out").len(),
            1,
            "rule must fire"
        );
        let stat = agg.rules().get(&label).unwrap_or_else(|| {
            panic!(
                "no RuleEval for {label} after view build; {} events total",
                agg.event_count()
            )
        });
        assert!(stat.derived >= 1, "build must report the derived tuple");
        stat.hist.count()
    };

    // The delete flows through the differential maintenance pass
    // (`apply_profiled`), which must add further samples under the same
    // head label.
    rt.peer_mut("bob")
        .unwrap()
        .delete_local("item", vec![Value::from(7)])
        .unwrap();
    rt.run_to_quiescence(8).unwrap();
    let agg = rt.trace().unwrap();
    assert!(
        rt.peer("bob").unwrap().relation_facts("out").is_empty(),
        "derived fact must retract"
    );
    let stat = &agg.rules()[&label];
    assert!(
        stat.hist.count() > build_calls,
        "differential maintenance pass must record further RuleEval \
         samples (build: {build_calls}, now: {})",
        stat.hist.count()
    );
}
