//! Crash-recovery property suite for the durable storage engine.
//!
//! The central property: **a peer that crashes and recovers is
//! indistinguishable from one that never crashed**, given the same
//! client behavior (a client whose op was not yet acked retries it).
//! Each seed derives a random interleaving of inserts, deletes, group
//! commits, forced checkpoints, and crashes; after the schedule the
//! recovered subject must equal an oracle peer that executed the same
//! ops in memory.
//!
//! On failure the harness prints the seed and the reproduction command:
//!
//! ```text
//! WDL_STORE_SEED=1234 cargo test --test store_recovery <test-name>
//! ```
//!
//! `WDL_STORE_SEEDS=lo..hi` overrides a sweep's whole range (used by the
//! CI `store-recovery` job).

use std::fs;
use std::ops::Range;
use std::path::PathBuf;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::{Symbol, Value};
use webdamlog::net::sim::SimOp;
use webdamlog::store::{DurabilityConfig, DurablePersistence, IoFaults};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdl_net::sim::CrashPersistence;

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn seed_range(default: Range<u64>) -> Range<u64> {
    if let Ok(v) = std::env::var("WDL_STORE_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n..n + 1;
        }
    }
    if let Ok(v) = std::env::var("WDL_STORE_SEEDS") {
        if let Some((lo, hi)) = v.trim().split_once("..") {
            if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                return lo..hi;
            }
        }
    }
    default
}

fn tmp_root(tag: &str, seed: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wdl-recovery-{tag}-{seed}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs `body(seed)` over the sweep range, labeling any panic with the
/// seed and the single-command reproduction line.
fn sweep(test: &str, seeds: Range<u64>, body: impl Fn(u64)) {
    for seed in seed_range(seeds) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(seed)));
        if let Err(p) = outcome {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!(
                "\n[store-recovery] {test} seed {seed}: {msg}\n\
                 reproduce: WDL_STORE_SEED={seed} cargo test --test store_recovery {test}\n"
            );
        }
    }
}

const RELS: [&str; 3] = ["album", "pictures", "tags"];

fn build_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    for rel in RELS {
        p.declare(rel, 2, RelationKind::Extensional).unwrap();
    }
    p
}

fn random_tuple(rng: &mut StdRng) -> Vec<Value> {
    vec![
        Value::from(rng.gen_range(0..12i64)),
        match rng.gen_range(0..3u32) {
            0 => Value::from(rng.gen_range(0..6i64)),
            1 => Value::from(["x", "y", "z"][rng.gen_range(0..3usize)]),
            _ => Value::bytes(&[rng.gen_range(0..4u8)]),
        },
    ]
}

fn apply_op(p: &mut Peer, op: &SimOp) {
    match op {
        SimOp::Insert { rel, tuple } => {
            p.insert_local(*rel, tuple.clone()).unwrap();
        }
        SimOp::Delete { rel, tuple } => {
            p.delete_local(*rel, tuple.clone()).unwrap();
        }
    }
}

fn assert_same_state(subject: &Peer, oracle: &Peer, context: &str) {
    for rel in RELS {
        let mut a = subject.relation_facts(rel);
        let mut b = oracle.relation_facts(rel);
        a.sort();
        b.sort();
        assert_eq!(a, b, "{context}: relation {rel} diverged");
    }
}

// ---------------------------------------------------------------------
// Property 1: random schedules — recovered ≡ never-crashed.
// ---------------------------------------------------------------------

#[test]
fn random_crash_schedules_recover_exactly() {
    sweep("random_crash_schedules_recover_exactly", 0..100, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let root = tmp_root("sched", seed);
        let name = format!("recp{seed}");
        let sym = Symbol::intern(&name);
        let cfg = DurabilityConfig::new(&root)
            .checkpoint_records(rng.gen_range(2..24))
            .checkpoint_bytes(rng.gen_range(256..4096));
        let mut persist = DurablePersistence::new(cfg);

        let mut subject = build_peer(&name);
        persist.store_mut().attach(&mut subject).unwrap();
        let mut oracle = build_peer(&name);

        let steps = rng.gen_range(30..90);
        let mut crashes = 0;
        for _ in 0..steps {
            match rng.gen_range(0..100u32) {
                // Mutation, mirrored on both peers.
                0..=54 => {
                    let rel = Symbol::intern(RELS[rng.gen_range(0..RELS.len())]);
                    let tuple = random_tuple(&mut rng);
                    let op = if rng.gen_range(0..10u32) < 7 {
                        SimOp::Insert { rel, tuple }
                    } else {
                        SimOp::Delete { rel, tuple }
                    };
                    apply_op(&mut subject, &op);
                    apply_op(&mut oracle, &op);
                }
                // Stage boundary = group commit.
                55..=79 => {
                    subject.run_stage().unwrap();
                    oracle.run_stage().unwrap();
                }
                // Forced full checkpoint.
                80..=87 => {
                    let engine = persist.store_mut().engine(sym).unwrap();
                    let mut engine = engine.lock();
                    engine.checkpoint(&subject).unwrap();
                }
                // Crash + recover + client retry of lost ops.
                _ => {
                    crashes += 1;
                    let crash_seed = rng.gen();
                    let (token, lost) = persist.crash(subject, crash_seed).unwrap();
                    subject = persist.restart(sym, &token).unwrap();
                    for op in &lost {
                        apply_op(&mut subject, op);
                    }
                }
            }
        }
        // Final crash so every seed exercises at least one recovery.
        let crash_seed = rng.gen();
        let (token, lost) = persist.crash(subject, crash_seed).unwrap();
        subject = persist.restart(sym, &token).unwrap();
        for op in &lost {
            apply_op(&mut subject, op);
        }
        subject.run_stage().unwrap();
        oracle.run_stage().unwrap();

        assert_same_state(
            &subject,
            &oracle,
            &format!("after {steps} steps, {} crashes", crashes + 1),
        );
        let _ = fs::remove_dir_all(&root);
    });
}

// ---------------------------------------------------------------------
// Property 2: killing the engine after any number of file operations
// (mid-checkpoint, mid-append, mid-rename) leaves a recoverable store
// that equals one of the two legal states: before or after the dying
// commit.
// ---------------------------------------------------------------------

#[test]
fn fault_budget_sweep_recovers_before_or_after() {
    sweep(
        "fault_budget_sweep_recovers_before_or_after",
        0..40,
        |budget| {
            let root = tmp_root("budget", budget);
            let name = format!("budp{budget}");
            let sym = Symbol::intern(&name);
            let cfg = DurabilityConfig::new(&root).checkpoint_records(4);
            let mut persist = DurablePersistence::new(cfg);

            let mut subject = build_peer(&name);
            persist.store_mut().attach(&mut subject).unwrap();
            subject
                .insert_local("album", vec![Value::from(1), Value::from(1)])
                .unwrap();
            subject.run_stage().unwrap(); // acked baseline

            // Arm the fault budget, then attempt a burst of work whose file
            // operations will die at operation #budget.
            {
                let engine = persist.store_mut().engine(sym).unwrap();
                engine.lock().set_faults(IoFaults::fail_after(budget));
            }
            let mut attempted = Vec::new();
            let mut failed = false;
            'burst: for round in 0..6i64 {
                for k in 0..3i64 {
                    let t = vec![Value::from(round), Value::from(k)];
                    subject.insert_local("pictures", t.clone()).unwrap();
                    attempted.push(t);
                }
                if subject.run_stage().is_err() {
                    failed = true;
                    break 'burst;
                }
            }

            // Crash (disarms nothing — recovery opens fresh handles) and
            // recover on a clean engine.
            let crash_seed = budget.wrapping_mul(0x9E37);
            let (token, _lost) = persist.crash(subject, crash_seed).unwrap();
            {
                let engine = persist.store_mut().engine(sym).unwrap();
                engine.lock().set_faults(IoFaults::none());
            }
            let recovered = persist.restart(sym, &token).unwrap();

            // The acked baseline always survives.
            assert_eq!(
                recovered.relation_facts("album").len(),
                1,
                "acked baseline lost (budget {budget}, failed={failed})"
            );
            // Whatever subset of the burst recovered must be a prefix-closed
            // subset of what was attempted — never an invented fact.
            let got = recovered.relation_facts("pictures");
            for t in &got {
                assert!(
                    attempted.iter().any(|a| a[..] == t[..]),
                    "recovered invented fact {t:?} (budget {budget})"
                );
            }
            let _ = fs::remove_dir_all(&root);
        },
    );
}

// ---------------------------------------------------------------------
// Property 3: truncating the WAL at every byte offset of the last
// (unacked) record never panics and never resurrects an
// acked-then-deleted fact.
// ---------------------------------------------------------------------

#[test]
fn wal_truncation_never_resurrects_deleted_facts() {
    let root = tmp_root("trunc", 0);
    let name = "truncp";
    let sym = Symbol::intern(name);
    // Thresholds high enough that nothing below checkpoints on its own.
    let cfg = DurabilityConfig::new(&root)
        .checkpoint_records(10_000)
        .checkpoint_bytes(u64::MAX);
    let mut persist = DurablePersistence::new(cfg);

    let mut p = build_peer(name);
    p.insert_local("pictures", vec![Value::from(1), Value::from(1)])
        .unwrap();
    persist.store_mut().attach(&mut p).unwrap(); // checkpoint holds the fact

    let engine = persist.store_mut().engine(sym).unwrap();
    let wal_file = engine.lock().manifest().unwrap().wal_file;
    let wal_path = engine.lock().dir().join(&wal_file);

    // Acked delete of the checkpointed fact…
    p.delete_local("pictures", vec![Value::from(1), Value::from(1)])
        .unwrap();
    p.sync_durability().unwrap();
    let acked_len = fs::metadata(&wal_path).unwrap().len() as usize;

    // …followed by one more record whose append the crash may tear.
    p.insert_local("album", vec![Value::from(2), Value::from(2)])
        .unwrap();
    p.sync_durability().unwrap();
    let full = fs::read(&wal_path).unwrap();
    assert!(full.len() > acked_len, "second record landed");
    drop(p);

    for cut in acked_len..=full.len() {
        fs::write(&wal_path, &full[..cut]).unwrap();
        let recovered = persist
            .restart(sym, &bytes::Bytes::from(name.as_bytes().to_vec()))
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        assert!(
            recovered.relation_facts("pictures").is_empty(),
            "cut {cut}: acked delete was undone — fact resurrected"
        );
        let album = recovered.relation_facts("album").len();
        assert!(album <= 1, "cut {cut}: invented facts");
        // Recovery checkpoints; restore the scenario for the next cut.
        let _ = fs::remove_dir_all(&root);
        let mut q = build_peer(name);
        q.insert_local("pictures", vec![Value::from(1), Value::from(1)])
            .unwrap();
        persist = DurablePersistence::new(
            DurabilityConfig::new(&root)
                .checkpoint_records(10_000)
                .checkpoint_bytes(u64::MAX),
        );
        persist.store_mut().attach(&mut q).unwrap();
        q.delete_local("pictures", vec![Value::from(1), Value::from(1)])
            .unwrap();
        q.sync_durability().unwrap();
        q.insert_local("album", vec![Value::from(2), Value::from(2)])
            .unwrap();
        q.sync_durability().unwrap();
        drop(q);
    }
    let _ = fs::remove_dir_all(&root);
}
