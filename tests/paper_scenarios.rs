//! End-to-end integration tests mirroring every demonstration scenario of
//! the paper's §4, across all workspace crates.

use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::wepic::{ops, rules, Conference, ConferenceConfig, Picture, PictureCorpus};

fn picture(id: i64, owner: &str) -> Picture {
    Picture {
        id,
        name: format!("img{id}.jpg"),
        owner: owner.into(),
        data: vec![id as u8; 32],
    }
}

/// §4 "Setup": three peers (Émilien, Jules, sigmod), photos stored locally,
/// both subscribed to the sigmod registry.
#[test]
fn setup_matches_figure_2() {
    let conf = Conference::new(&ConferenceConfig::demo()).unwrap();
    let names = conf.runtime.peer_names();
    let names: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    assert!(names.contains(&"Emilien"));
    assert!(names.contains(&"Jules"));
    assert!(names.contains(&"sigmod"));
    assert!(names.contains(&"SigmodFB"));
    assert_eq!(
        conf.peer("sigmod")
            .unwrap()
            .relation_facts("attendees")
            .len(),
        2
    );
}

/// §4 "Interaction via Facebook", full pipeline: upload at Émilien →
/// pictures@sigmod → (authorization by delegation) → pictures@SigmodFB →
/// the simulated group feed; and the converse import direction.
#[test]
fn facebook_interaction_both_directions() {
    let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::upload_picture(emilien, &picture(1, "Emilien")).unwrap();
    ops::upload_picture(emilien, &picture(2, "Emilien")).unwrap();
    ops::authorize(emilien, "Facebook", 1, "Emilien").unwrap();
    let r = conf.settle(64).unwrap();
    assert!(r.quiescent);

    // Both pictures published to sigmod, only the authorized one to FB.
    assert_eq!(
        conf.peer("sigmod")
            .unwrap()
            .relation_facts("pictures")
            .len(),
        2
    );
    assert_eq!(conf.fb.group_feed("Sigmod").len(), 1);

    // External post flows back to sigmod — "with their comments and tags".
    conf.fb.post_to_group(
        "Sigmod",
        webdamlog::wrappers::facebook::Post {
            id: 500,
            name: "ext.jpg".into(),
            owner: "fbuser".into(),
            data: vec![5],
        },
    );
    conf.fb.comment(
        "Sigmod",
        webdamlog::wrappers::facebook::Comment {
            pic_id: 500,
            author: "fbuser".into(),
            text: "from the banquet".into(),
        },
    );
    conf.fb.tag("Sigmod", 500, "Serge");
    let r = conf.settle(64).unwrap();
    assert!(r.quiescent);
    let sigmod = conf.peer("sigmod").unwrap();
    assert_eq!(sigmod.relation_facts("pictures").len(), 3);
    assert_eq!(sigmod.relation_facts("comments").len(), 1);
    assert_eq!(sigmod.relation_facts("tags").len(), 1);
}

/// §3 functions 2 + 5: select attendees, view their pictures, rank by
/// rating.
#[test]
fn view_and_rank_attendee_pictures() {
    let mut cfg = ConferenceConfig::demo();
    cfg.open_trust = true;
    let mut conf = Conference::new(&cfg).unwrap();

    let emilien = conf.peer_mut("Emilien").unwrap();
    for id in 1..=4 {
        ops::upload_picture(emilien, &picture(id, "Emilien")).unwrap();
    }
    let jules = conf.peer_mut("Jules").unwrap();
    ops::select_attendee(jules, "Emilien").unwrap();
    ops::rate(jules, 2, 5).unwrap();
    ops::rate(jules, 3, 4).unwrap();
    conf.settle(64).unwrap();

    let jules = conf.peer("Jules").unwrap();
    assert_eq!(jules.relation_facts("attendeePictures").len(), 4);
    let ranked = ops::top_rated(jules, 3);
    assert_eq!(ranked.len(), 3);
    assert_eq!(ranked[0].0, 2, "picture 2 (rated 5) ranks first");
    assert_eq!(ranked[1].0, 3, "picture 3 (rated 4) second");
    assert_eq!(ranked[2].2, 0, "third is unrated");
}

/// §3 "download the pictures of others": what the view shows can be copied
/// into the local collection, after which it persists even if the source
/// deselects.
#[test]
fn download_persists_after_deselection() {
    let mut cfg = ConferenceConfig::demo();
    cfg.open_trust = true;
    let mut conf = Conference::new(&cfg).unwrap();
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::upload_picture(emilien, &picture(77, "Emilien")).unwrap();
    let jules = conf.peer_mut("Jules").unwrap();
    ops::select_attendee(jules, "Emilien").unwrap();
    conf.settle(64).unwrap();

    let jules = conf.peer_mut("Jules").unwrap();
    assert!(ops::download(jules, 77).unwrap());
    assert!(!ops::download(jules, 99999).unwrap(), "absent id");
    ops::deselect_attendee(jules, "Emilien").unwrap();
    conf.settle(64).unwrap();

    let jules = conf.peer("Jules").unwrap();
    assert!(
        jules.relation_facts("attendeePictures").is_empty(),
        "view emptied"
    );
    assert!(
        ops::pictures(jules).iter().any(|p| p.id == 77),
        "downloaded copy persists"
    );
}

/// §3 function 3: transfer by each protocol — email and wepic inbox.
#[test]
fn transfer_respects_recipient_protocol() {
    let mut cfg = ConferenceConfig::demo();
    cfg.open_trust = true;
    cfg.attendees.push("Julia".into());
    let mut conf = Conference::new(&cfg).unwrap();

    // Émilien prefers email; Julia prefers her Wepic inbox.
    ops::set_protocol(conf.peer_mut("Emilien").unwrap(), "email").unwrap();
    ops::set_protocol(conf.peer_mut("Julia").unwrap(), "wepicInbox").unwrap();

    let jules = conf.peer_mut("Jules").unwrap();
    ops::select_attendee(jules, "Emilien").unwrap();
    ops::select_attendee(jules, "Julia").unwrap();
    ops::select_picture(jules, "banquet.jpg", 9, "Jules").unwrap();
    let r = conf.settle(64).unwrap();
    assert!(r.quiescent);

    assert_eq!(conf.email.mailbox("Emilien").len(), 1, "email delivery");
    assert!(conf.email.mailbox("Julia").is_empty());
    assert_eq!(
        conf.peer("Julia")
            .unwrap()
            .relation_facts("wepicInbox")
            .len(),
        1,
        "wepic inbox delivery"
    );
}

/// §4 "Customizing rules": the rating filter, then a further customization
/// (tagged person), as the demo invites the audience to do.
#[test]
fn successive_rule_customizations() {
    let mut cfg = ConferenceConfig::demo();
    cfg.open_trust = true;
    let mut conf = Conference::new(&cfg).unwrap();

    let emilien = conf.peer_mut("Emilien").unwrap();
    for id in 1..=3 {
        ops::upload_picture(emilien, &picture(id, "Emilien")).unwrap();
    }
    ops::rate(emilien, 1, 5).unwrap();
    ops::tag(emilien, 2, "Serge").unwrap();

    let jules = conf.peer_mut("Jules").unwrap();
    ops::select_attendee(jules, "Emilien").unwrap();
    conf.settle(64).unwrap();
    assert_eq!(
        conf.peer("Jules")
            .unwrap()
            .relation_facts("attendeePictures")
            .len(),
        3
    );

    // Customization 1: rating >= 5.
    let jules = conf.peer_mut("Jules").unwrap();
    let view_id = jules.rules()[0].id;
    jules
        .replace_rule(view_id, rules::rating_filter("Jules", 5).unwrap())
        .unwrap();
    conf.settle(64).unwrap();
    let view = conf
        .peer("Jules")
        .unwrap()
        .relation_facts("attendeePictures");
    assert_eq!(view.len(), 1);
    assert_eq!(view[0][0], webdamlog::datalog::Value::from(1));

    // Customization 2: pictures in which Serge appears.
    let jules = conf.peer_mut("Jules").unwrap();
    jules
        .replace_rule(
            view_id,
            rules::tagged_person_filter("Jules", "Serge").unwrap(),
        )
        .unwrap();
    conf.settle(64).unwrap();
    let view = conf
        .peer("Jules")
        .unwrap()
        .relation_facts("attendeePictures");
    assert_eq!(view.len(), 1);
    assert_eq!(view[0][0], webdamlog::datalog::Value::from(2));
}

/// §4 "Illustration of the control of delegation": Émilien installs a rule
/// at Jules' peer; the system requires Jules' approval; after approval the
/// program of Jules changes and the rule runs.
#[test]
fn delegation_control_scenario() {
    let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
    let jules = conf.peer_mut("Jules").unwrap();
    ops::upload_picture(jules, &picture(10, "Jules")).unwrap();

    // Émilien selects Jules — his view rule wants to install at Jules.
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::select_attendee(emilien, "Jules").unwrap();
    conf.settle(64).unwrap();

    let jules = conf.peer("Jules").unwrap();
    let before_rules = jules.installed_delegations().len();
    assert!(!jules.pending_delegations().is_empty(), "approval required");
    assert!(conf
        .peer("Emilien")
        .unwrap()
        .relation_facts("attendeePictures")
        .is_empty());

    let ids: Vec<_> = conf
        .peer("Jules")
        .unwrap()
        .pending_delegations()
        .iter()
        .map(|p| p.delegation.id)
        .collect();
    let jules = conf.peer_mut("Jules").unwrap();
    for id in ids {
        jules.approve_delegation(id).unwrap();
    }
    let r = conf.settle(64).unwrap();
    assert!(r.quiescent);

    let jules = conf.peer("Jules").unwrap();
    assert!(
        jules.installed_delegations().len() > before_rules,
        "program changed"
    );
    assert_eq!(
        conf.peer("Emilien")
            .unwrap()
            .relation_facts("attendeePictures")
            .len(),
        1
    );
}

/// Rejecting a pending delegation keeps the program unchanged.
#[test]
fn rejected_delegation_never_runs() {
    let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
    let jules = conf.peer_mut("Jules").unwrap();
    ops::upload_picture(jules, &picture(11, "Jules")).unwrap();
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::select_attendee(emilien, "Jules").unwrap();
    conf.settle(64).unwrap();

    let ids: Vec<_> = conf
        .peer("Jules")
        .unwrap()
        .pending_delegations()
        .iter()
        .map(|p| p.delegation.id)
        .collect();
    assert!(!ids.is_empty());
    let jules = conf.peer_mut("Jules").unwrap();
    for id in ids {
        jules.reject_delegation(id).unwrap();
    }
    conf.settle(64).unwrap();
    assert!(conf
        .peer("Emilien")
        .unwrap()
        .relation_facts("attendeePictures")
        .is_empty());
    assert!(conf.peer("Jules").unwrap().pending_delegations().is_empty());
}

/// A larger synthetic conference converges and every picture reaches the
/// sigmod peer (scalability smoke test for E1/E2 shapes).
#[test]
fn synthetic_conference_converges() {
    let mut conf = Conference::new(&ConferenceConfig::experiment(8)).unwrap();
    let mut corpus = PictureCorpus::new(7);
    let names: Vec<String> = conf
        .attendee_names()
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    let mut total = 0;
    for name in &names {
        for pic in corpus.pictures(name, 5, 16) {
            ops::upload_picture(conf.peer_mut(name.as_str()).unwrap(), &pic).unwrap();
            total += 1;
        }
    }
    let r = conf.settle(128).unwrap();
    assert!(r.quiescent);
    assert_eq!(
        conf.peer("sigmod")
            .unwrap()
            .relation_facts("pictures")
            .len(),
        total
    );
}

/// Untrusting a peer mid-run: new delegations queue, per the ACL model.
#[test]
fn trust_changes_apply_to_new_delegations() {
    let mut cfg = ConferenceConfig::demo();
    cfg.open_trust = false;
    let mut conf = Conference::new(&cfg).unwrap();

    // Jules trusts Émilien explicitly at first.
    conf.peer_mut("Jules").unwrap().acl_mut().trust("Emilien");
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::select_attendee(emilien, "Jules").unwrap();
    conf.settle(64).unwrap();
    assert!(conf.peer("Jules").unwrap().pending_delegations().is_empty());
    assert!(!conf
        .peer("Jules")
        .unwrap()
        .installed_delegations()
        .is_empty());

    // Withdraw trust; a *new* delegation (from a newly added rule, so its
    // content differs from anything already installed) must queue.
    conf.peer_mut("Jules").unwrap().acl_mut().untrust("Emilien");
    let emilien = conf.peer_mut("Emilien").unwrap();
    emilien
        .add_rule(rules::rating_filter("Emilien", 4).unwrap())
        .unwrap();
    conf.settle(64).unwrap();
    assert!(
        !conf.peer("Jules").unwrap().pending_delegations().is_empty(),
        "the new rule's delegation waits for approval now that trust is gone"
    );
}

/// Default untrusted policy can be switched to reject everything.
#[test]
fn reject_policy_drops_delegations() {
    let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
    conf.peer_mut("Jules")
        .unwrap()
        .acl_mut()
        .set_untrusted_policy(UntrustedPolicy::Reject);
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::select_attendee(emilien, "Jules").unwrap();
    conf.settle(64).unwrap();
    let jules = conf.peer("Jules").unwrap();
    assert!(jules.pending_delegations().is_empty());
    assert!(jules.installed_delegations().is_empty());
}
