//! Property tests for the static analyzer, over hand-rolled seeded
//! generators (no `proptest` in the offline environment):
//!
//! 1. the analyzer never panics on random (including unsafe/garbage)
//!    multi-peer programs, and is deterministic;
//! 2. **soundness vs the runtime**: a program the analyzer passes without
//!    `WDL004` never trips `NotStratifiable` at evaluation time — the
//!    analyzer's quotiented dependency graph is a conservative superset of
//!    each peer's local stratification graph.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webdamlog::analyze::{Analyzer, PeerModel};
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{DiagCode, NameTerm, Peer, RelationKind, WAtom, WBodyItem, WRule, WdlError};
use webdamlog::datalog::{DatalogError, Term, Value};

const CASES: u64 = 96;

/// Random atom over a small vocabulary; name positions are sometimes
/// variables (the WebdamLog novelty the analyzer must survive).
fn atom(rng: &mut StdRng, rels: &[&str], peers: &[&str], wild: bool) -> WAtom {
    let rel = if wild && rng.gen_bool(0.2) {
        NameTerm::var("R")
    } else {
        NameTerm::name(rels[rng.gen_range(0..rels.len())])
    };
    let peer = if wild && rng.gen_bool(0.2) {
        NameTerm::var("P")
    } else {
        NameTerm::name(peers[rng.gen_range(0..peers.len())])
    };
    let args = (0..rng.gen_range(0..3usize))
        .map(|i| {
            if rng.gen_bool(0.7) {
                Term::var(["x", "y", "z"][i])
            } else {
                Term::cst(Value::from(rng.gen_range(0..5i64)))
            }
        })
        .collect();
    WAtom::new(rel, peer, args)
}

/// Fully random multi-peer models: rules may be unsafe, ill-typed,
/// unstratifiable — anything the parser-level AST allows.
fn random_models(rng: &mut StdRng) -> Vec<PeerModel> {
    let rels = ["r0", "r1", "r2", "r3"];
    let peers = ["p0", "p1", "p2"];
    peers
        .iter()
        .map(|name| {
            let mut model = PeerModel::new(*name);
            for rel in rels.iter().take(rng.gen_range(0..=rels.len())) {
                let kind = if rng.gen_bool(0.5) {
                    RelationKind::Extensional
                } else {
                    RelationKind::Intensional
                };
                let _ = model
                    .schema
                    .declare((*rel).into(), rng.gen_range(0..3), kind);
            }
            for _ in 0..rng.gen_range(0..4usize) {
                let head = atom(rng, &rels, &peers, true);
                let body = (0..rng.gen_range(0..3usize))
                    .map(|_| {
                        let a = atom(rng, &rels, &peers, true);
                        if rng.gen_bool(0.3) {
                            WBodyItem::not_atom(a)
                        } else {
                            WBodyItem::atom(a)
                        }
                    })
                    .collect();
                model = model.with_rule(WRule::new(head, body));
            }
            model
        })
        .collect()
}

#[test]
fn analyzer_never_panics_and_is_deterministic() {
    for seed in 0..CASES {
        let models = random_models(&mut StdRng::seed_from_u64(seed));
        let again = random_models(&mut StdRng::seed_from_u64(seed));
        let a = Analyzer::new(models).analyze();
        let b = Analyzer::new(again).analyze();
        assert_eq!(
            a.diagnostics, b.diagnostics,
            "seed {seed} not deterministic"
        );
        assert_eq!(a.delegation_depth, b.delegation_depth, "seed {seed}");
    }
}

/// Safe-by-construction single-peer programs that may still be
/// unstratifiable: every rule is `hi@p($x) :- b@p($x) [, not hj@p($x)]`.
struct LocalProgram {
    exts: Vec<&'static str>,
    ints: Vec<&'static str>,
    rules: Vec<WRule>,
}

fn random_local_program(rng: &mut StdRng) -> LocalProgram {
    let exts = vec!["e0", "e1"];
    let ints = vec!["i0", "i1", "i2"];
    let all: Vec<&str> = exts.iter().chain(ints.iter()).copied().collect();
    let mut rules = Vec::new();
    for _ in 0..rng.gen_range(1..6usize) {
        let head = WAtom::at(
            ints[rng.gen_range(0..ints.len())],
            "p",
            vec![Term::var("x")],
        );
        let mut body = vec![WBodyItem::atom(WAtom::at(
            all[rng.gen_range(0..all.len())],
            "p",
            vec![Term::var("x")],
        ))];
        if rng.gen_bool(0.6) {
            let neg = WAtom::at(
                ints[rng.gen_range(0..ints.len())],
                "p",
                vec![Term::var("x")],
            );
            if rng.gen_bool(0.8) {
                body.push(WBodyItem::not_atom(neg));
            } else {
                body.push(WBodyItem::atom(neg));
            }
        }
        rules.push(WRule::new(head, body));
    }
    LocalProgram { exts, ints, rules }
}

#[test]
fn analyzer_clean_programs_never_trip_runtime_stratification() {
    let mut flagged = 0usize;
    let mut ran = 0usize;
    for seed in 0..CASES {
        let program = random_local_program(&mut StdRng::seed_from_u64(1000 + seed));

        let mut model = PeerModel::new("p");
        for rel in &program.exts {
            model
                .schema
                .declare((*rel).into(), 1, RelationKind::Extensional)
                .unwrap();
        }
        for rel in &program.ints {
            model
                .schema
                .declare((*rel).into(), 1, RelationKind::Intensional)
                .unwrap();
        }
        for rule in &program.rules {
            model = model.with_rule(rule.clone());
        }
        let report = Analyzer::new(vec![model]).analyze();
        let has_wdl004 = report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::UnstratifiableNegation);
        if has_wdl004 {
            flagged += 1;
            continue;
        }

        // Analyzer saw no negation-through-recursion: the runtime must
        // evaluate without NotStratifiable.
        ran += 1;
        let mut rt = LocalRuntime::new();
        let mut peer = Peer::new("p");
        for rel in &program.exts {
            peer.declare(*rel, 1, RelationKind::Extensional).unwrap();
        }
        for rel in &program.ints {
            peer.declare(*rel, 1, RelationKind::Intensional).unwrap();
        }
        for rule in &program.rules {
            peer.add_rule(rule.clone()).unwrap();
        }
        for (i, rel) in program.exts.iter().enumerate() {
            peer.insert_local(*rel, vec![Value::from(i as i64)])
                .unwrap();
        }
        rt.add_peer(peer).unwrap();
        if let Err(e) = rt.run_to_quiescence(32) {
            assert!(
                !matches!(e, WdlError::Datalog(DatalogError::NotStratifiable(_))),
                "seed {seed}: analyzer passed but runtime says: {e}"
            );
        }
    }
    // The generator must actually exercise both sides of the property.
    assert!(
        flagged > 0,
        "generator never produced an unstratifiable case"
    );
    assert!(ran > 0, "generator never produced an analyzer-clean case");
}
