//! Soak test: a randomized conference exercising every feature at once —
//! delegation with approvals, grants, rule churn, uploads/deletions,
//! wrappers, snapshots — asserting global invariants at every quiescent
//! point. Seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webdamlog::net::snapshot;
use webdamlog::wepic::{ops, Conference, ConferenceConfig, Picture, PictureCorpus};

#[test]
fn randomized_conference_soak() {
    let mut rng = StdRng::seed_from_u64(20130624); // SIGMOD'13 demo week
    let mut cfg = ConferenceConfig::experiment(5);
    cfg.open_trust = false; // the demo's real policy: approvals required
    let mut conf = Conference::new(&cfg).unwrap();
    let names: Vec<String> = conf
        .attendee_names()
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    let mut corpus = PictureCorpus::new(99);
    let mut uploaded = 0usize;

    for round in 0..30 {
        let actor = names[rng.gen_range(0..names.len())].clone();
        match rng.gen_range(0..6) {
            0 => {
                // upload
                let pic = corpus.pictures(&actor, 1, 8).pop().unwrap();
                ops::upload_picture(conf.peer_mut(actor.as_str()).unwrap(), &pic).unwrap();
                uploaded += 1;
            }
            1 => {
                // select someone
                let other = names[rng.gen_range(0..names.len())].clone();
                if other != actor {
                    ops::select_attendee(conf.peer_mut(actor.as_str()).unwrap(), &other).unwrap();
                }
            }
            2 => {
                // approve everything pending at the actor
                let ids: Vec<_> = conf
                    .peer(actor.as_str())
                    .unwrap()
                    .pending_delegations()
                    .iter()
                    .map(|p| p.delegation.id)
                    .collect();
                let p = conf.peer_mut(actor.as_str()).unwrap();
                for id in ids {
                    p.approve_delegation(id).unwrap();
                }
            }
            3 => {
                // reject everything pending at the actor
                let ids: Vec<_> = conf
                    .peer(actor.as_str())
                    .unwrap()
                    .pending_delegations()
                    .iter()
                    .map(|p| p.delegation.id)
                    .collect();
                let p = conf.peer_mut(actor.as_str()).unwrap();
                for id in ids {
                    p.reject_delegation(id).unwrap();
                }
            }
            4 => {
                // rate a random picture id
                ops::rate(
                    conf.peer_mut(actor.as_str()).unwrap(),
                    rng.gen_range(1..100),
                    rng.gen_range(1..=5),
                )
                .unwrap();
            }
            _ => {
                // restrict or open a relation's reads
                let p = conf.peer_mut(actor.as_str()).unwrap();
                if rng.gen_bool(0.5) {
                    p.grants_mut().restrict_read("pictures");
                } else {
                    for other in &names {
                        p.grants_mut().grant_read("pictures", other.as_str());
                    }
                }
            }
        }

        // The system must always quiesce within a bounded number of rounds.
        let r = conf.settle(256).unwrap();
        assert!(r.quiescent, "round {round}: no quiescence: {r:?}");

        // Invariant: the sigmod pool never exceeds uploads and never holds
        // phantom ids.
        let pool = conf.peer("sigmod").unwrap().relation_facts("pictures");
        assert!(pool.len() <= uploaded, "round {round}: phantom pictures");
    }

    // Finally: snapshot every attendee, restore, and re-settle — state
    // survives a full-fleet restart.
    let snaps: Vec<Vec<u8>> = names
        .iter()
        .map(|n| snapshot::save(conf.peer(n.as_str()).unwrap()).to_vec())
        .collect();
    for (n, bytes) in names.iter().zip(&snaps) {
        let before = conf
            .peer(n.as_str())
            .unwrap()
            .relation_facts("pictures")
            .len();
        conf.runtime.remove_peer(n.as_str()).unwrap();
        let restored = snapshot::load(bytes).unwrap();
        assert_eq!(restored.relation_facts("pictures").len(), before);
        conf.runtime.add_peer(restored).unwrap();
    }
    let r = conf.settle(256).unwrap();
    assert!(r.quiescent, "post-restart reconvergence failed: {r:?}");
}

/// A second soak with open trust and heavier volume: throughput sanity.
#[test]
fn open_trust_volume_soak() {
    let mut conf = Conference::new(&ConferenceConfig::experiment(6)).unwrap();
    let names: Vec<String> = conf
        .attendee_names()
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    let mut corpus = PictureCorpus::new(3);

    // Everyone uploads 20 pictures and selects everyone else.
    for name in &names {
        for pic in corpus.pictures(name, 20, 8) {
            ops::upload_picture(conf.peer_mut(name.as_str()).unwrap(), &pic).unwrap();
        }
    }
    for a in &names {
        for b in &names {
            if a != b {
                ops::select_attendee(conf.peer_mut(a.as_str()).unwrap(), b).unwrap();
            }
        }
    }
    let r = conf.settle(512).unwrap();
    assert!(r.quiescent);

    // Every peer sees everyone else's pictures: 5 × 20 = 100.
    for name in &names {
        assert_eq!(
            conf.peer(name.as_str())
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            (names.len() - 1) * 20,
            "{name} view incomplete"
        );
    }
    // And the sigmod pool holds all 120.
    assert_eq!(
        conf.peer("sigmod")
            .unwrap()
            .relation_facts("pictures")
            .len(),
        names.len() * 20
    );
}

/// Download after soak-scale sharing.
#[test]
fn everyone_downloads_one() {
    let mut conf = Conference::new(&ConferenceConfig::experiment(3)).unwrap();
    let names: Vec<String> = conf
        .attendee_names()
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    for (i, name) in names.iter().enumerate() {
        ops::upload_picture(
            conf.peer_mut(name.as_str()).unwrap(),
            &Picture {
                id: (i as i64) + 1,
                name: format!("{name}.jpg"),
                owner: name.clone(),
                data: vec![i as u8],
            },
        )
        .unwrap();
    }
    for a in &names {
        for b in &names {
            if a != b {
                ops::select_attendee(conf.peer_mut(a.as_str()).unwrap(), b).unwrap();
            }
        }
    }
    conf.settle(128).unwrap();
    // Peer 0 downloads picture 2 (owned by peer 1).
    assert!(ops::download(conf.peer_mut(names[0].as_str()).unwrap(), 2).unwrap());
    let own = ops::pictures(conf.peer(names[0].as_str()).unwrap());
    assert!(own.iter().any(|p| p.id == 2));
}
