//! The analyzer over real programs: every `.wdl` file in
//! `examples/programs/` and the wired Wepic conference must check clean of
//! errors — the gate CI enforces with `wdl-check --json`.

use webdamlog::analyze::{model_from_program, Analyzer};
use webdamlog::parser::parse_program_spanned;
use wepic::conference::{Conference, ConferenceConfig};

#[test]
fn example_programs_have_no_errors() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(dir).expect("examples/programs must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("wdl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let stmts =
            parse_program_spanned(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let (models, build_diags) = model_from_program(&stmts);
        let report = Analyzer::new(models).analyze();
        for d in build_diags.iter().chain(report.diagnostics.iter()) {
            assert!(
                !d.is_error(),
                "{}: unexpected analyzer error: {d}",
                path.display()
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected the example corpus, found {checked} files"
    );
}

#[test]
fn wired_conference_has_no_errors() {
    let conf = Conference::new(&ConferenceConfig::demo()).unwrap();
    let peers: Vec<_> = conf
        .runtime
        .peer_names()
        .iter()
        .filter_map(|&n| conf.runtime.peer(n))
        .collect();
    let report = Analyzer::from_peers(peers).analyze();
    let errors: Vec<String> = report.errors().map(|d| d.to_string()).collect();
    assert!(
        errors.is_empty(),
        "conference model should be clean, got: {errors:?}"
    );
}

#[test]
fn settled_conference_still_has_no_errors() {
    // After settling, delegations have been installed across peers; the
    // analyzer must accept the *runtime* state too (delegated rules are
    // attributed to their origin).
    let mut conf = Conference::new(&ConferenceConfig::demo()).unwrap();
    conf.settle(32).unwrap();
    let peers: Vec<_> = conf
        .runtime
        .peer_names()
        .iter()
        .filter_map(|&n| conf.runtime.peer(n))
        .collect();
    let report = Analyzer::from_peers(peers).analyze();
    let errors: Vec<String> = report.errors().map(|d| d.to_string()).collect();
    assert!(
        errors.is_empty(),
        "settled conference should be clean, got: {errors:?}"
    );
}
