//! Corruption fuzzing for the durable storage engine.
//!
//! Recovery must treat the disk as hostile: random bit flips, truncations,
//! cross-file splices, deleted files, and stale manifests must all produce
//! either a clean [`StoreError`] or a *sound* recovery (a subset of the
//! true facts after WAL-tail truncation) — never a panic, and never
//! silently invented state.
//!
//! Reproduce a failing seed with:
//!
//! ```text
//! WDL_STORE_SEED=1234 cargo test --test store_corruption <test-name>
//! ```

use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::store::{DurabilityConfig, DurableStore};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seed_range(default: Range<u64>) -> Range<u64> {
    if let Ok(v) = std::env::var("WDL_STORE_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n..n + 1;
        }
    }
    if let Ok(v) = std::env::var("WDL_STORE_SEEDS") {
        if let Some((lo, hi)) = v.trim().split_once("..") {
            if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                return lo..hi;
            }
        }
    }
    default
}

fn tmp_root(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wdl-corrupt-{tag}-{seed}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const PEER: &str = "fuzzp";

/// Builds a durable peer with a checkpoint, a WAL tail, and a known
/// fact universe (insert-only, so soundness is a subset check). Returns
/// the storage root and the true final fact count per relation.
fn build_durable_state(root: &Path) -> (usize, usize) {
    let mut store = DurableStore::new(
        DurabilityConfig::new(root)
            .checkpoint_records(10_000)
            .checkpoint_bytes(u64::MAX),
    );
    let mut p = Peer::new(PEER);
    p.declare("pictures", 2, RelationKind::Extensional).unwrap();
    p.declare("album", 2, RelationKind::Extensional).unwrap();
    for i in 0..8i64 {
        p.insert_local("pictures", vec![Value::from(i), Value::from("ck")])
            .unwrap();
    }
    store.attach(&mut p).unwrap(); // checkpoint: 8 facts in segments
    for i in 0..5i64 {
        p.insert_local("album", vec![Value::from(i), Value::from(i)])
            .unwrap();
        p.sync_durability().unwrap(); // one WAL record batch each
    }
    (8, 5)
}

/// Recovery outcome classifier: `Ok(counts)` or a clean error. A panic
/// escapes and fails the test.
fn try_recover(root: &Path) -> Result<(usize, usize), String> {
    let mut store = DurableStore::new(DurabilityConfig::new(root));
    match store.recover(PEER) {
        Ok(q) => Ok((
            q.relation_facts("pictures").len(),
            q.relation_facts("album").len(),
        )),
        Err(e) => Err(e.to_string()),
    }
}

fn storage_files(root: &Path) -> Vec<PathBuf> {
    let dir = root.join(PEER);
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

/// The soundness check shared by every fuzz case: recovery either fails
/// cleanly or yields a subset of the true insert-only universe, with the
/// WAL-derived relation a prefix of the acked batches.
fn assert_sound(outcome: Result<(usize, usize), String>, ctx: &str) {
    match outcome {
        Ok((pictures, album)) => {
            assert!(pictures <= 8, "{ctx}: invented pictures ({pictures})");
            assert!(album <= 5, "{ctx}: invented album rows ({album})");
        }
        Err(msg) => {
            assert!(
                msg.contains("corrupt") || msg.contains("storage") || msg.contains("rejected"),
                "{ctx}: error is not a clean StoreError: {msg}"
            );
        }
    }
}

#[test]
fn random_bit_flips_never_panic_or_invent() {
    for seed in seed_range(0..120) {
        let root = tmp_root("flip", seed);
        build_durable_state(&root);
        let mut rng = StdRng::seed_from_u64(seed);
        let files = storage_files(&root);
        let victim = &files[rng.gen_range(0..files.len())];
        let mut bytes = fs::read(victim).unwrap();
        if bytes.is_empty() {
            continue;
        }
        let flips = rng.gen_range(1..4usize);
        for _ in 0..flips {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1u8 << rng.gen_range(0..8u32);
        }
        fs::write(victim, &bytes).unwrap();
        let outcome = try_recover(&root);
        assert_sound(
            outcome,
            &format!("seed {seed}: {flips} flips in {}", victim.display()),
        );
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn random_truncations_never_panic_or_invent() {
    for seed in seed_range(0..120) {
        let root = tmp_root("cut", seed);
        build_durable_state(&root);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC07);
        let files = storage_files(&root);
        let victim = &files[rng.gen_range(0..files.len())];
        let bytes = fs::read(victim).unwrap();
        let cut = rng.gen_range(0..bytes.len().max(1));
        fs::write(victim, &bytes[..cut.min(bytes.len())]).unwrap();
        let outcome = try_recover(&root);
        assert_sound(
            outcome,
            &format!("seed {seed}: cut {cut} of {}", victim.display()),
        );
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn random_splices_never_panic_or_invent() {
    for seed in seed_range(0..80) {
        let root = tmp_root("splice", seed);
        build_durable_state(&root);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x59_11CE);
        let files = storage_files(&root);
        // Overwrite one file with (a prefix of) another — e.g. a segment
        // where the WAL should be, or vice versa.
        let a = rng.gen_range(0..files.len());
        let mut b = rng.gen_range(0..files.len());
        while b == a && files.len() > 1 {
            b = rng.gen_range(0..files.len());
        }
        let donor = fs::read(&files[b]).unwrap();
        let keep = rng.gen_range(0..=donor.len());
        fs::write(&files[a], &donor[..keep]).unwrap();
        let outcome = try_recover(&root);
        assert_sound(
            outcome,
            &format!(
                "seed {seed}: {} spliced into {}",
                files[b].display(),
                files[a].display()
            ),
        );
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn missing_files_error_cleanly() {
    for seed in seed_range(0..40) {
        let root = tmp_root("gone", seed);
        build_durable_state(&root);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x90_11E);
        let files = storage_files(&root);
        let victim = &files[rng.gen_range(0..files.len())];
        fs::remove_file(victim).unwrap();
        let outcome = try_recover(&root);
        assert_sound(
            outcome,
            &format!("seed {seed}: removed {}", victim.display()),
        );
        let _ = fs::remove_dir_all(&root);
    }
}

/// A manifest from an older epoch must not quietly revive: its files are
/// gone (superseded epochs are cleaned), so recovery reports corruption
/// instead of silently time-traveling.
#[test]
fn stale_manifest_is_rejected() {
    let root = tmp_root("stale", 0);
    let mut store = DurableStore::new(DurabilityConfig::new(&root));
    let mut p = Peer::new(PEER);
    p.declare("pictures", 1, RelationKind::Extensional).unwrap();
    store.attach(&mut p).unwrap(); // epoch 1
    let manifest_path = root.join(PEER).join("MANIFEST");
    let stale = fs::read(&manifest_path).unwrap();

    p.insert_local("pictures", vec![Value::from(1)]).unwrap();
    {
        let engine = store.engine(PEER).unwrap();
        let mut engine = engine.lock();
        engine.checkpoint(&p).unwrap(); // epoch 2, epoch-1 files removed
    }
    drop(p);
    fs::write(&manifest_path, &stale).unwrap(); // the stale splice

    let mut store2 = DurableStore::new(DurabilityConfig::new(&root));
    let err = store2.recover(PEER).expect_err("stale manifest accepted");
    assert!(
        err.is_corrupt(),
        "stale manifest produced a non-corruption error: {err}"
    );
    let _ = fs::remove_dir_all(&root);
}

/// A WAL copied in from another peer's directory decodes fine record by
/// record — only the header's peer binding catches it.
#[test]
fn cross_peer_wal_splice_is_rejected() {
    let root = tmp_root("xpeer", 0);
    let mut store = DurableStore::new(
        DurabilityConfig::new(&root)
            .checkpoint_records(10_000)
            .checkpoint_bytes(u64::MAX),
    );
    let mut build = |name: &str| {
        let mut p = Peer::new(name);
        p.declare("pictures", 1, RelationKind::Extensional).unwrap();
        store.attach(&mut p).unwrap();
        p.insert_local("pictures", vec![Value::from(7)]).unwrap();
        p.sync_durability().unwrap();
        p
    };
    let a = build("xpeerA");
    let b = build("xpeerB");

    // Same epoch, same relation names, valid records — swap the logs.
    let wal_a: Vec<PathBuf> = fs::read_dir(root.join("xpeerA"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("wal-"))
        .collect();
    let wal_b: Vec<PathBuf> = fs::read_dir(root.join("xpeerB"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("wal-"))
        .collect();
    assert_eq!((wal_a.len(), wal_b.len()), (1, 1));
    let stolen = fs::read(&wal_a[0]).unwrap();
    fs::write(&wal_b[0], &stolen).unwrap();
    drop(a);
    drop(b);

    let mut store2 = DurableStore::new(DurabilityConfig::new(&root));
    let err = store2.recover("xpeerB").expect_err("foreign WAL accepted");
    assert!(err.is_corrupt(), "unexpected error class: {err}");
    assert!(
        err.to_string().contains("belongs to"),
        "not the peer-binding check: {err}"
    );
    let _ = fs::remove_dir_all(&root);
}

/// MANIFEST swapped wholesale between two peers: caught by the meta
/// checkpoint's peer-name binding.
#[test]
fn cross_peer_manifest_splice_is_rejected() {
    let root = tmp_root("xman", 0);
    let mut store = DurableStore::new(DurabilityConfig::new(&root));
    for name in ["xmanA", "xmanB"] {
        let mut p = Peer::new(name);
        p.declare("pictures", 1, RelationKind::Extensional).unwrap();
        store.attach(&mut p).unwrap();
    }
    let m_a = fs::read(root.join("xmanA").join("MANIFEST")).unwrap();
    fs::write(root.join("xmanB").join("MANIFEST"), &m_a).unwrap();
    // xmanA's files referenced by the manifest are not in xmanB's dir —
    // same names though, so the meta decodes and names the wrong peer.
    for f in storage_files_for(&root, "xmanA") {
        let name = f.file_name().unwrap();
        let _ = fs::copy(&f, root.join("xmanB").join(name));
    }
    let mut store2 = DurableStore::new(DurabilityConfig::new(&root));
    let err = store2
        .recover("xmanB")
        .expect_err("foreign manifest accepted");
    assert!(err.is_corrupt(), "unexpected error class: {err}");
    let _ = fs::remove_dir_all(&root);
}

fn storage_files_for(root: &Path, peer: &str) -> Vec<PathBuf> {
    fs::read_dir(root.join(peer))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect()
}
