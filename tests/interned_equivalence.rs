//! Property tests for the interned data plane and compiled-rule engine
//! (ISSUE 4): the compiled register-file evaluator over interned ids must
//! be **semantically invisible** — identical relation sets and identical
//! `EvalStats` to the symbol-keyed substitution interpreter it replaced —
//! and interning must never leak `ValueId`s onto the wire or into saved
//! state.
//!
//! Seeded hand-rolled generators (no `proptest` offline); failures name
//! the case seed for replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::Peer;
use webdamlog::datalog::aggregate::{AggFunc, AggQuery};
use webdamlog::datalog::incremental::{Delta, MaterializedView};
use webdamlog::datalog::{
    Atom, BodyItem, CmpOp, Database, EvalConfig, EvalStrategy, Fact, Program, Rule, Subst, Term,
    Value,
};
use webdamlog::net::{codec, snapshot};

fn atom(pred: &str, vars: &[&str]) -> Atom {
    Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
}

/// A program mixing every body-item kind across three strata: recursion
/// (DRed territory), stratified negation, a comparison filter and an
/// arithmetic assignment — over string *and* integer columns so value
/// interning sees mixed types.
fn mixed_program() -> Program {
    Program::new(vec![
        Rule::new(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
        Rule::new(
            atom("reach", &["y"]),
            vec![
                atom("reach", &["x"]).into(),
                atom("edge", &["x", "y"]).into(),
            ],
        ),
        Rule::new(
            atom("unreach", &["x"]),
            vec![
                atom("node", &["x"]).into(),
                BodyItem::not_atom(atom("reach", &["x"])),
            ],
        ),
        // score(x, y+1) :- unreach(x), weight(x, y), y >= 2
        Rule::new(
            atom("score", &["x", "z"]),
            vec![
                atom("unreach", &["x"]).into(),
                atom("weight", &["x", "y"]).into(),
                BodyItem::cmp(CmpOp::Ge, Term::var("y"), Term::cst(2)),
                BodyItem::assign(
                    "z",
                    webdamlog::datalog::Expr::bin(
                        webdamlog::datalog::BinOp::Add,
                        webdamlog::datalog::Expr::term(Term::var("y")),
                        webdamlog::datalog::Expr::term(Term::cst(1)),
                    ),
                ),
            ],
        ),
        // label(x, n) :- score(x, s), tagname(s, n)  — string join on top
        Rule::new(
            atom("label", &["x", "n"]),
            vec![
                atom("score", &["x", "s"]).into(),
                atom("tagname", &["s", "n"]).into(),
            ],
        ),
    ])
    .unwrap()
}

fn random_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    let nodes = rng.gen_range(4..20i64);
    for n in 0..nodes {
        db.insert(Fact::new("node", vec![Value::from(n)])).unwrap();
        if rng.gen_bool(0.6) {
            db.insert(Fact::new(
                "weight",
                vec![Value::from(n), Value::from(rng.gen_range(0..6i64))],
            ))
            .unwrap();
        }
    }
    for _ in 0..rng.gen_range(3..40) {
        db.insert(Fact::new(
            "edge",
            vec![
                Value::from(rng.gen_range(0..nodes)),
                Value::from(rng.gen_range(0..nodes)),
            ],
        ))
        .unwrap();
    }
    db.insert(Fact::new("src", vec![Value::from(0)])).unwrap();
    for s in 0..7i64 {
        db.insert(Fact::new(
            "tagname",
            vec![Value::from(s), Value::from(format!("tag-{s}"))],
        ))
        .unwrap();
    }
    db
}

fn assert_dbs_equal(a: &Database, b: &Database, ctx: &str) {
    assert_eq!(a.fact_count(), b.fact_count(), "{ctx}: fact counts differ");
    for fact in a.facts() {
        assert!(b.contains(&fact), "{ctx}: {fact} missing");
    }
}

/// Compiled ≡ interpreted through the serial strategies (both seminaive
/// and naive) and through the sharded parallel path at 2–4 workers —
/// relation sets *and* `EvalStats`, over random mixed programs.
#[test]
fn compiled_equals_interpreted_serial_and_parallel() {
    for case in 0u64..15 {
        let mut rng = StdRng::seed_from_u64(0x12E_000 + case);
        let db = random_db(&mut rng);
        let program = mixed_program();
        let interp = program
            .clone()
            .with_eval_config(EvalConfig::default().with_compiled(false));

        for strategy in [EvalStrategy::Seminaive, EvalStrategy::Naive] {
            let (old, old_stats) = interp.eval_with(&db, strategy).unwrap();
            let (new, new_stats) = program.eval_with(&db, strategy).unwrap();
            let ctx = format!("case {case}, {strategy:?}");
            assert_dbs_equal(&new, &old, &ctx);
            assert_eq!(new_stats, old_stats, "{ctx}: stats differ");
        }

        let (old, old_stats) = interp.eval_with(&db, EvalStrategy::Seminaive).unwrap();
        for workers in 2..=4 {
            let par = program.clone().with_workers(workers);
            let (new, new_stats) = par.eval_with(&db, EvalStrategy::Seminaive).unwrap();
            let ctx = format!("case {case}, workers {workers}");
            assert_dbs_equal(&new, &old, &ctx);
            assert_eq!(new_stats, old_stats, "{ctx}: stats differ");
        }
    }
}

/// Compiled ≡ interpreted through the incremental engine: two
/// `MaterializedView`s absorb the same random interleaved insert/delete
/// batches; after every batch the materializations, the returned deltas
/// and the from-scratch recomputation must all agree.
#[test]
fn compiled_equals_interpreted_incremental() {
    for case in 0u64..10 {
        let mut rng = StdRng::seed_from_u64(0x12E_100 + case);
        let base = random_db(&mut rng);
        let compiled_view = Program::new(mixed_program().rules().to_vec()).unwrap();
        let interp_view = compiled_view
            .clone()
            .with_eval_config(EvalConfig::default().with_compiled(false));
        let mut vc = MaterializedView::new(compiled_view, base.clone()).unwrap();
        let mut vi = MaterializedView::new(interp_view, base.clone()).unwrap();
        assert_dbs_equal(vc.database(), vi.database(), &format!("case {case} init"));

        let nodes = 20i64;
        for batch in 0..5 {
            let mut delta = Delta::new();
            for _ in 0..rng.gen_range(1..6) {
                let fact = match rng.gen_range(0..4) {
                    0 => Fact::new(
                        "edge",
                        vec![
                            Value::from(rng.gen_range(0..nodes)),
                            Value::from(rng.gen_range(0..nodes)),
                        ],
                    ),
                    1 => Fact::new("node", vec![Value::from(rng.gen_range(0..nodes))]),
                    2 => Fact::new(
                        "weight",
                        vec![
                            Value::from(rng.gen_range(0..nodes)),
                            Value::from(rng.gen_range(0..6i64)),
                        ],
                    ),
                    _ => Fact::new("src", vec![Value::from(rng.gen_range(0..4i64))]),
                };
                if rng.gen_bool(0.5) {
                    delta.insert(fact);
                } else {
                    delta.delete(fact);
                }
            }
            let out_c = vc.apply(&delta).unwrap();
            let out_i = vi.apply(&delta).unwrap();
            let ctx = format!("case {case} batch {batch}");
            assert_dbs_equal(vc.database(), vi.database(), &ctx);
            let norm = |d: &Delta| {
                let mut ins: Vec<String> = d.inserts.iter().map(|f| f.to_string()).collect();
                let mut del: Vec<String> = d.deletes.iter().map(|f| f.to_string()).collect();
                ins.sort();
                del.sort();
                (ins, del)
            };
            assert_eq!(
                norm(&out_c),
                norm(&out_i),
                "{ctx}: observable deltas differ"
            );
            let scratch = vc.recompute().unwrap();
            assert_dbs_equal(vc.database(), &scratch, &format!("{ctx} vs recompute"));
        }
    }
}

/// Aggregates ride the boundary API (`evaluate_body` over values): the
/// same query over compiled- and interpreted-materialized databases must
/// produce identical rows.
#[test]
fn aggregates_agree_over_both_engines() {
    let mut rng = StdRng::seed_from_u64(0x12E_200);
    let db = random_db(&mut rng);
    let program = mixed_program();
    let compiled = program.eval(&db).unwrap();
    let interp = program
        .clone()
        .with_eval_config(EvalConfig::default().with_compiled(false))
        .eval(&db)
        .unwrap();
    let q = AggQuery {
        body: vec![atom("score", &["x", "s"]).into()],
        group_by: vec!["x".into()],
        func: AggFunc::Max,
        over: Some("s".into()),
    };
    assert_eq!(q.eval(&compiled).unwrap(), q.eval(&interp).unwrap());
}

/// Growing the interner between two encodings of the same message must not
/// change a single wire byte: `ValueId`s are process-local and the codec
/// serializes values, never ids. (The id type implements neither
/// `Serialize` nor `Deserialize`, so this is enforced at the type level
/// too — this test pins the observable behavior.)
#[test]
fn interning_is_invisible_on_the_wire() {
    use webdamlog::core::{FactKind, Message, Payload, WFact};

    let fact = |i: i64| {
        WFact::new(
            "pictures",
            "alice",
            vec![
                Value::from(i),
                Value::from(format!("wire-pic-{i}.jpg")),
                Value::bytes(&[1, 2, 3, (i % 250) as u8]),
            ],
        )
    };
    let msg = Message::new(
        "alice".into(),
        "bob".into(),
        Payload::Facts {
            kind: FactKind::Persistent,
            additions: (0..8).map(fact).collect(),
            retractions: (8..10).map(fact).collect(),
        },
    );
    let before = codec::encode(&msg);

    // Skew the interner: thousands of fresh values shift every id that
    // would be assigned from here on. A leaked id would change the bytes.
    let mut skew = Database::new();
    for i in 0..2000i64 {
        skew.insert(Fact::new(
            "skew",
            vec![Value::from(format!("interner-skew-{i}"))],
        ))
        .unwrap();
    }

    let after = codec::encode(&msg);
    assert_eq!(
        before.as_ref(),
        after.as_ref(),
        "wire bytes depend on interner state"
    );
    // And the payload round-trips by value.
    let decoded = codec::decode(&before).unwrap();
    match decoded.payload {
        Payload::Facts {
            additions,
            retractions,
            ..
        } => {
            assert_eq!(additions.len(), 8);
            assert_eq!(retractions.len(), 2);
            assert_eq!(additions[3].tuple[1], Value::from("wire-pic-3.jpg"));
        }
        other => panic!("wrong payload variant: {other:?}"),
    }
}

/// Snapshots store values, not ids: saving a peer, skewing the interner,
/// and saving again yields byte-identical state, and a loaded peer answers
/// queries with equal *values*.
#[test]
fn interning_is_invisible_in_snapshots() {
    let mut peer = Peer::new("snapper");
    peer.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    for i in 0..20i64 {
        peer.insert_local(
            "pictures",
            vec![
                Value::from(i),
                Value::from(format!("snap-{i}.jpg")),
                Value::from("snapper"),
                Value::bytes(&[9, 9, (i % 100) as u8]),
            ],
        )
        .unwrap();
    }
    let before = snapshot::save(&peer);

    let mut skew = Database::new();
    for i in 0..2000i64 {
        skew.insert(Fact::new(
            "skew2",
            vec![Value::from(format!("snapshot-skew-{i}"))],
        ))
        .unwrap();
    }

    let after = snapshot::save(&peer);
    assert_eq!(
        before.as_ref(),
        after.as_ref(),
        "snapshot bytes depend on interner state"
    );

    let restored = snapshot::load(&before).unwrap();
    let q = |p: &Peer| {
        let mut rows: Vec<String> = p
            .relation_facts("pictures")
            .into_iter()
            .map(|t| format!("{t:?}"))
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(q(&peer), q(&restored));
    let _ = Subst::new(); // keep the import exercised under all features
}

/// Storage segments are interner-portable: a segment written in one
/// process must load into a process whose interner assigned completely
/// different ids. Segments store the referenced values by content and
/// local column indexes, so a skewed global interner on the loading side
/// must change neither the decoded bytes' meaning nor the facts.
#[test]
fn segments_survive_a_skewed_interner() {
    use webdamlog::core::RelationKind;
    use webdamlog::store::{read_segment, write_segment_bytes};

    let mut writer = Peer::new("segwriter");
    writer
        .acl_mut()
        .set_untrusted_policy(UntrustedPolicy::Accept);
    for i in 0..32i64 {
        writer
            .insert_local(
                "pictures",
                vec![
                    Value::from(i),
                    Value::from(format!("seg-{i}.jpg")),
                    Value::bytes(&[7, (i % 120) as u8]),
                ],
            )
            .unwrap();
    }
    let dumps = writer.export_extensional();
    let (rel, dump) = dumps
        .iter()
        .find(|(r, _)| r.as_str() == "pictures")
        .expect("pictures exported");
    let bytes = write_segment_bytes(*rel, dump);

    // Skew the interner hard: every id assigned from here on differs
    // from the ids the writer's columns referenced.
    let mut skew = Database::new();
    for i in 0..3000i64 {
        skew.insert(Fact::new(
            "skew3",
            vec![Value::from(format!("segment-skew-{i}"))],
        ))
        .unwrap();
    }

    let (got_rel, got_dump) = read_segment(&bytes, "test.seg").unwrap();
    assert_eq!(got_rel, *rel);
    let mut reader = Peer::new("segwriter");
    reader
        .declare("pictures", 3, RelationKind::Extensional)
        .unwrap();
    reader.import_extensional(got_rel, &got_dump).unwrap();

    let rows = |p: &Peer| {
        let mut v: Vec<String> = p
            .relation_facts("pictures")
            .into_iter()
            .map(|t| format!("{t:?}"))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        rows(&writer),
        rows(&reader),
        "values changed across the skew"
    );
    assert_eq!(rows(&reader).len(), 32);
}
